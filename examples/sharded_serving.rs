//! Sharded serving: one wide CNN layer, many macro instances.
//!
//! The paper's macro is a fixed-width tile (`Ndec` decoder chains), so a
//! layer with more kernels than `Ndec` either takes `tiles_out` serial
//! passes through one macro — or one pass through `tiles_out` macros in
//! parallel. This example walks the second path end to end:
//!
//! 1. tile a wide convolution layer with `ConvMapping::sharded`,
//! 2. derive the matching (ragged) `ShardPlan`, build a `ShardedBackend`
//!    on it, and serve it through a `Session`,
//! 3. check the fleet's stitched outputs are bit-identical to one wide
//!    macro, and
//! 4. shard the event-driven netlist itself — via the
//!    `BackendKind::Sharded` even-split shortcut — to see the latency
//!    (max) and energy (sum) aggregation.
//!
//! Run with: `cargo run --example sharded_serving --release`

use maddpipe::prelude::*;

fn main() {
    // ── 1. A layer wider than the macro ────────────────────────────────
    // 37 kernels on a 16-chain macro: 3 output tiles, the last ragged.
    let macro_cfg = MacroConfig::paper_flagship(); // Ndec = 16, NS = 32
    let layer = ConvShape::new(32, 37, 8, 8);
    let single = ConvMapping::new(layer, &macro_cfg);
    println!("layer:        {layer}");
    println!("single macro: {single}");
    for (sub, m) in ConvMapping::sharded(layer, &macro_cfg) {
        println!("  shard {sub} -> {m}");
    }

    // ── 2. Serve the wide program on a macro fleet ─────────────────────
    // The configuration is the *wide* layer (37 chains); the layer plan
    // [16, 16, 5] keeps each shard within one physical macro's Ndec, and
    // `ShardedBackend::new` executes exactly that (ragged) partition.
    // (`BackendKind::Sharded { shards, .. }` is the builder shortcut for
    // an *even* `ShardPlan::even(cfg.ndec, shards)` split instead.)
    let plan = ShardPlan::for_layer(&layer, &macro_cfg);
    println!("\nshard plan:   {plan}");
    let wide_cfg = MacroConfig::new(layer.out_channels, 4); // 4 stages for brevity
    let program = MacroProgram::random(wide_cfg.ndec, wide_cfg.ns, 42);
    let kinds = vec![ShardKind::Functional { workers: 1 }; plan.shards()];
    let backend = ShardedBackend::new(&wide_cfg, &program, plan.clone(), &kinds)
        .expect("wide program fits the layer plan");
    let mut fleet = Session::from_backend(wide_cfg.clone(), Box::new(backend));
    let batch = TokenBatch::random(wide_cfg.ns, 256, 7);
    let result = fleet.run(&batch).expect("batch completes");
    println!(
        "fleet of {} macros served {} tokens: {}",
        plan.shards(),
        batch.len(),
        fleet.stats()
    );

    // ── 3. Bit-identical to one wide macro ─────────────────────────────
    let mut wide = Session::builder(wide_cfg)
        .program(program)
        .backend(BackendKind::Functional { workers: 1 })
        .build()
        .expect("same program, same configuration");
    let reference = wide.run(&batch).expect("batch completes");
    assert_eq!(
        result.outputs(),
        reference.outputs(),
        "stitched shard outputs must match the unsplit macro bit for bit"
    );
    println!(
        "sharded outputs match the single wide macro on all {} tokens",
        batch.len()
    );

    // ── 4. Sharding the netlist itself ─────────────────────────────────
    // Each shard worker owns its own event-driven netlist; per-token
    // latency is the max over shards, energy the sum.
    let rtl_cfg = MacroConfig::new(4, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let rtl_program = MacroProgram::random(rtl_cfg.ndec, rtl_cfg.ns, 9);
    let mut rtl_fleet = Session::builder(rtl_cfg)
        .program(rtl_program)
        .backend(BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
        })
        .build()
        .expect("program fits");
    let rtl_batch = TokenBatch::random(2, 8, 5);
    let rtl_result = rtl_fleet.run(&rtl_batch).expect("batch completes");
    println!(
        "\n2 RTL shards, 8 tokens: token 0 latency {} (max over shards), energy {} (sum)",
        rtl_result.tokens[0].latency.expect("RTL shards measure"),
        rtl_result.tokens[0].energy.expect("RTL shards measure"),
    );
    println!("session stats: {}", rtl_fleet.stats());
}
