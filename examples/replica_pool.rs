//! Replica-pool serving: N backend replicas, one deadline-aware queue.
//!
//! A single `ServeQueue` serialises every micro-batch through one
//! backend. When the host has cores to spare, a `ReplicaPool` builds N
//! replicas of the *same* macro — each on its own thread, from the same
//! `(program, backend)` recipe — and spreads pending micro-batches
//! across whichever replicas are idle. Outputs stay bit-identical to a
//! direct `Session::run`; only the scheduling changes. This example
//! walks the knobs:
//!
//! 1. build a flagship-shaped pool with `SessionBuilder::into_pool`
//!    and compare 1-replica vs 4-replica wall time under 8 clients,
//! 2. tag submissions with client keys (`SubmitOptions::with_client`)
//!    under round-robin fairness, so one greedy client cannot starve
//!    the others,
//! 3. attach a per-request deadline (`SubmitOptions::with_deadline`)
//!    that ships a partial micro-batch early instead of lingering, and
//! 4. read the per-replica dispatch/utilisation split off the shared
//!    `SessionStats` after shutdown.
//!
//! Run with: `cargo run --example replica_pool --release`

use maddpipe::prelude::*;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 24;
const TOKENS_PER_REQUEST: usize = 32;

/// Serve the standard multi-client workload through a pool with the
/// given replica count; returns (wall time, final stats).
fn drive(replicas: usize) -> (Duration, SessionStats) {
    let cfg = MacroConfig::paper_flagship();
    let ns = cfg.ns;
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
    let pool = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Functional { workers: 1 })
        .into_pool(
            ServePolicy::default()
                .with_replicas(replicas)
                .with_fairness(Fairness::RoundRobin)
                .with_queue(
                    QueuePolicy::default()
                        .with_max_batch(64)
                        .with_max_linger(Duration::from_micros(100))
                        .with_max_depth(4096),
                ),
        )
        .expect("pool comes up");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let pool = &pool;
            scope.spawn(move || {
                let opts = SubmitOptions::default().with_client(client as u64);
                let tickets: Vec<BatchTicket> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        let seed = (client * 1000 + r) as u64;
                        let batch = TokenBatch::random(ns, TOKENS_PER_REQUEST, seed);
                        pool.submit_with(batch, opts).expect("within the bounds")
                    })
                    .collect();
                for ticket in tickets {
                    let reply = ticket.wait().expect("served");
                    assert!(reply.replica < replicas);
                }
            });
        }
    });
    (t0.elapsed(), pool.shutdown())
}

fn main() {
    // ── 1. Data-parallel scaling: same workload, more replicas ─────────
    let (wall_r1, _) = drive(1);
    let (wall_r4, stats) = drive(4);
    let tokens = CLIENTS * REQUESTS_PER_CLIENT * TOKENS_PER_REQUEST;
    println!("{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests x {TOKENS_PER_REQUEST} tokens ({tokens} total):");
    println!("  1 replica : {:>8.1} ms wall", wall_r1.as_secs_f64() * 1e3);
    println!("  4 replicas: {:>8.1} ms wall", wall_r4.as_secs_f64() * 1e3);

    // ── 4. Per-replica accounting from the shared stats ────────────────
    // Every dispatch records which replica served it and for how long;
    // utilisation is busy-time over pool uptime, per replica.
    println!("  per-replica split of the 4-replica run:");
    let util = stats.replica_utilisation();
    for (replica, dispatches) in stats.replica_dispatches().iter().enumerate() {
        println!(
            "    replica {replica}: {dispatches:>3} micro-batches, {:>5.1}% busy",
            util[replica] * 100.0
        );
    }
    println!("  {stats}");

    // ── 2 & 3. Fairness and deadlines on a slow backend ────────────────
    // The event-driven netlist is slow enough to watch scheduling
    // decisions. Round-robin fairness interleaves client keys instead
    // of draining the hottest submitter; a zero deadline ships the
    // pending micro-batch immediately even though the policy would
    // happily linger for 10 ms.
    let rtl_cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let rtl_program = MacroProgram::random(rtl_cfg.ndec, rtl_cfg.ns, 9);
    let pool = Session::builder(rtl_cfg)
        .program(rtl_program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        })
        .into_pool(
            ServePolicy::default()
                .with_replicas(2)
                .with_fairness(Fairness::RoundRobin)
                .with_queue(
                    QueuePolicy::default()
                        .with_max_batch(16)
                        .with_max_linger(Duration::from_millis(10)),
                ),
        )
        .expect("pool comes up");
    let urgent = SubmitOptions::default()
        .with_client(7)
        .with_deadline(Duration::ZERO);
    let ticket = pool
        .submit_with(TokenBatch::random(2, 4, 123), urgent)
        .expect("within the bounds");
    let reply = ticket.wait().expect("served");
    println!(
        "\nurgent RTL request: waited {:.1} µs (policy linger is 10 ms), served by replica {}",
        reply.queue_wait.as_secs_f64() * 1e6,
        reply.replica
    );
    let final_stats = pool.shutdown();
    println!("RTL pool after shutdown: {final_stats}");
}
