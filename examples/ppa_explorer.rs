//! Design-space exploration: sweep the macro's two architectural knobs
//! (Ndec, NS) and the supply voltage, print the PPA landscape, and mark
//! the Pareto-efficient points in the (TOPS/W, TOPS/mm²) plane — the
//! trade-off the paper's Fig. 6 and Table I explore. The Pareto points
//! are then exercised with real tokens on the analytic backend of the
//! `Session` API, whose per-token latency follows each token's actual
//! comparator ripple depths.
//!
//! Run with: `cargo run --example ppa_explorer --release`

use maddpipe::prelude::*;

fn main() {
    let mut points = Vec::new();
    for &ndec in &[4usize, 8, 16, 32] {
        for &ns in &[8usize, 16, 32] {
            for &vdd in &[0.5, 0.8] {
                let cfg = MacroConfig::new(ndec, ns)
                    .with_op(OperatingPoint::new(Volts(vdd), Corner::Ttg));
                let r = MacroModel::new(cfg).evaluate();
                points.push((ndec, ns, vdd, r));
            }
        }
    }

    // Pareto front over (TOPS/W, TOPS/mm²): a point is dominated when
    // another strictly improves one metric without losing the other.
    let pareto: Vec<bool> = points
        .iter()
        .map(|(_, _, _, a)| {
            !points.iter().any(|(_, _, _, b)| {
                b.tops_per_watt >= a.tops_per_watt
                    && b.tops_per_mm2 >= a.tops_per_mm2
                    && (b.tops_per_watt > a.tops_per_watt || b.tops_per_mm2 > a.tops_per_mm2)
            })
        })
        .collect();

    println!(
        "{:>5} {:>4} {:>6} {:>10} {:>10} {:>11} {:>10} {:>8}",
        "Ndec", "NS", "VDD", "TOPS(avg)", "TOPS/W", "TOPS/mm²", "area mm²", "pareto"
    );
    for ((ndec, ns, vdd, r), is_pareto) in points.iter().zip(&pareto) {
        println!(
            "{ndec:>5} {ns:>4} {vdd:>5.1}V {:>10.3} {:>10.1} {:>11.2} {:>10.3} {:>8}",
            r.tops_avg(),
            r.tops_per_watt,
            r.tops_per_mm2,
            r.area.total().as_mm2(),
            if *is_pareto { "◆" } else { "" }
        );
    }

    println!(
        "\nthe paper's flagship (Ndec=16, NS=32) balances both axes; Ndec=32 adds\n\
         marginal efficiency but amplifies local-variation risk (Table I discussion).\n\
         energy efficiency is set by VDD; area efficiency by VDD and Ndec."
    );

    // ── Token-level view of the Pareto points ──────────────────────────
    // The sweep above is envelope arithmetic; an analytic `Session` runs
    // actual tokens, so the latency spread (p50 vs p99) reflects the
    // data-dependent DLC ripple of real inputs rather than best/worst
    // bounds.
    println!("\nPareto points under a 256-token batch (analytic backend):");
    for ((ndec, ns, vdd, _), is_pareto) in points.iter().zip(&pareto) {
        if !*is_pareto {
            continue;
        }
        let cfg =
            MacroConfig::new(*ndec, *ns).with_op(OperatingPoint::new(Volts(*vdd), Corner::Ttg));
        let program = MacroProgram::random(*ndec, *ns, 42);
        let mut session = Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Analytic)
            .build()
            .expect("random program fits its own shape");
        session
            .run(&TokenBatch::random(*ns, 256, 7))
            .expect("analytic batch completes");
        let stats = session.stats();
        println!(
            "  Ndec={ndec:<2} NS={ns:<2} {vdd:.1}V: token latency p50 {} / p99 {}, energy {}",
            stats.p50_token_latency().expect("analytic models latency"),
            stats.p99_token_latency().expect("analytic models latency"),
            stats.total_energy().expect("analytic models energy"),
        );
    }
}
