//! Quickstart: train a MADDNESS operator, program the accelerator, and run
//! the same token batch through two execution backends of the unified
//! `Session` API — the event-driven netlist and the threaded functional
//! evaluator — confirming the silicon-level result is bit-identical to
//! the algorithm.
//!
//! Run with: `cargo run --example quickstart --release`

use maddpipe::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ── 1. A matrix-multiplication workload ────────────────────────────
    // 2 subspaces × 9 dims = 18 input features, 4 output features. The
    // rows carry cluster structure (as real activations do) — product
    // quantisation exploits exactly that.
    let mut rng = StdRng::seed_from_u64(7);
    let centers: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..18).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let c = &centers[i % centers.len()];
            c.iter().map(|&v| v + rng.gen_range(-0.3f32..0.3)).collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 4);
    for r in 0..18 {
        for c in 0..4 {
            w[(r, c)] = ((r * 3 + c * 5) % 11) as f32 / 11.0 - 0.5;
        }
    }

    // ── 2. Train the MADDNESS operator (hash trees + INT8 LUTs) ────────
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("training");
    let exact = x.matmul(&w);
    let approx = op.matmul(&x);
    println!(
        "MADDNESS approximation: NMSE {:.4} over {} rows ({} subspaces × {} prototypes)",
        nmse(&exact, &approx),
        x.rows(),
        op.num_subspaces(),
        op.num_prototypes()
    );

    // ── 3. Program the accelerator and open an inference session ───────
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::from_maddness(&op);
    let mut rtl_session = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Pipelined,
        })
        .build()
        .expect("program fits the configuration");
    println!(
        "built macro: {} (cells: {}, nets: {})",
        cfg,
        rtl_session
            .rtl()
            .expect("rtl backend")
            .simulator()
            .circuit()
            .cell_count(),
        rtl_session
            .rtl()
            .expect("rtl backend")
            .simulator()
            .circuit()
            .net_count()
    );

    // Quantise ten calibration rows into one token batch and stream them
    // through the self-synchronous pipeline with overlap.
    let n_tokens = 10;
    let rows10: Vec<&[f32]> = (0..n_tokens).map(|t| x.row(t)).collect();
    let batch = TokenBatch::from_f32_rows(&rows10, op.num_subspaces(), op.input_scale())
        .expect("non-empty batch");
    let result = rtl_session.run(&batch).expect("batch completes");
    let mut exact_matches = 0;
    for (t, obs) in result.tokens.iter().enumerate() {
        let reference = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[x.row(t)])));
        if obs.outputs == reference[0] {
            exact_matches += 1;
        }
    }
    println!(
        "token 0: outputs {:?}, latency {}",
        result.tokens[0].outputs,
        result.tokens[0].latency.expect("RTL measures latency"),
    );
    println!(
        "pipelined batch: makespan {}, energy {}",
        result.makespan.expect("RTL measures time"),
        result.energy.expect("RTL measures energy"),
    );
    println!("{exact_matches}/{n_tokens} tokens bit-identical between netlist and algorithm");
    assert_eq!(exact_matches, n_tokens);

    // The same batch through the threaded functional backend — same API,
    // same bits, no netlist.
    let mut fun_session = Session::builder(cfg.clone())
        .program(program)
        .backend(BackendKind::Functional { workers: 2 })
        .build()
        .expect("program fits the configuration");
    let fun = fun_session.run(&batch).expect("batch completes");
    assert_eq!(
        fun.outputs(),
        result.outputs(),
        "backends agree bit for bit"
    );
    println!(
        "functional backend agrees on all {n_tokens} tokens; session stats: {}",
        rtl_session.stats()
    );

    // ── 4. The paper's flagship PPA ─────────────────────────────────────
    let report = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    println!("\nflagship macro at 0.5 V / TTG:\n{report}");
}
