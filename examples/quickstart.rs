//! Quickstart: train a MADDNESS operator, program the accelerator netlist,
//! run tokens through the self-synchronous pipeline, and confirm the
//! silicon-level result is bit-identical to the algorithm.
//!
//! Run with: `cargo run --example quickstart --release`

use maddpipe::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ── 1. A matrix-multiplication workload ────────────────────────────
    // 2 subspaces × 9 dims = 18 input features, 4 output features. The
    // rows carry cluster structure (as real activations do) — product
    // quantisation exploits exactly that.
    let mut rng = StdRng::seed_from_u64(7);
    let centers: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..18).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let c = &centers[i % centers.len()];
            c.iter().map(|&v| v + rng.gen_range(-0.3f32..0.3)).collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 4);
    for r in 0..18 {
        for c in 0..4 {
            w[(r, c)] = ((r * 3 + c * 5) % 11) as f32 / 11.0 - 0.5;
        }
    }

    // ── 2. Train the MADDNESS operator (hash trees + INT8 LUTs) ────────
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("training");
    let exact = x.matmul(&w);
    let approx = op.matmul(&x);
    println!(
        "MADDNESS approximation: NMSE {:.4} over {} rows ({} subspaces × {} prototypes)",
        nmse(&exact, &approx),
        x.rows(),
        op.num_subspaces(),
        op.num_prototypes()
    );

    // ── 3. Program the accelerator and run the pipeline ────────────────
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::from_maddness(&op);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    println!(
        "built macro: {} (cells: {}, nets: {})",
        cfg,
        rtl.simulator().circuit().cell_count(),
        rtl.simulator().circuit().net_count()
    );

    let scale = op.input_scale();
    let mut exact_matches = 0;
    let n_tokens = 10;
    for t in 0..n_tokens {
        let row = x.row(t);
        let mut token = vec![[0i8; SUBVECTOR_LEN]; op.num_subspaces()];
        for (s, chunk) in row.chunks(9).enumerate() {
            for (e, &v) in chunk.iter().enumerate() {
                token[s][e] = scale.quantize(v);
            }
        }
        let result = rtl.run_token(&token).expect("token completes");
        let reference = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        if result.outputs == reference[0] {
            exact_matches += 1;
        }
        if t == 0 {
            println!(
                "token 0: outputs {:?}, latency {}, energy {}",
                result.outputs, result.latency, result.energy
            );
        }
    }
    println!("{exact_matches}/{n_tokens} tokens bit-identical between netlist and algorithm");
    assert_eq!(exact_matches, n_tokens);

    // ── 4. The paper's flagship PPA ─────────────────────────────────────
    let report = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    println!("\nflagship macro at 0.5 V / TTG:\n{report}");
}
