//! Async serving: many clients, one queue, micro-batched execution.
//!
//! The paper's macro is completion-driven — a token finishes when the
//! DLC ripple settles, not on a clock edge — so the natural serving
//! model is asynchronous too: clients submit whenever they like, a
//! dispatcher coalesces whatever is pending into micro-batches, and
//! every request resolves through its own ticket. This example walks
//! that path end to end:
//!
//! 1. build a flagship-shaped `Session` and convert it into a
//!    `ServeQueue` with `Session::into_serving`,
//! 2. hammer it from several client threads and read the queue-side
//!    statistics (wait percentiles, coalesced micro-batch sizes, peak
//!    backlog) off the shared `SessionStats`,
//! 3. watch typed `QueueFull` backpressure on a depth-bounded queue in
//!    front of a slow event-driven netlist, and
//! 4. shut down cleanly: every accepted ticket resolves first.
//!
//! Run with: `cargo run --example async_serving --release`

use maddpipe::prelude::*;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 32;
const TOKENS_PER_REQUEST: usize = 16;

fn main() {
    // ── 1. A session builder becomes a serving queue ───────────────────
    // The queue's dispatcher thread builds the backend from the
    // builder's (program, kind) recipe, so even non-Send backends
    // (netlists) can serve. (A running `Session` converts too, with
    // `Session::into_serving`, carrying its stats along.) The policy
    // bounds micro-batches at 128 tokens, lingers up to 200 µs to let
    // them fill, and holds at most 256 unresolved requests before
    // pushing back.
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
    let policy = QueuePolicy::default()
        .with_max_batch(128)
        .with_max_linger(Duration::from_micros(200))
        .with_max_depth(256);
    let queue = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Functional { workers: 1 })
        .into_serving(policy)
        .expect("queue comes up");

    // ── 2. Concurrent clients share the backend ────────────────────────
    let ns = cfg.ns;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let queue = &queue;
            let program = &program;
            scope.spawn(move || {
                // Submit a burst, then wait on the tickets — requests
                // from all clients interleave in the dispatcher's FIFO.
                let tickets: Vec<BatchTicket> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        let seed = (client * 1000 + r) as u64;
                        let batch = TokenBatch::random(ns, TOKENS_PER_REQUEST, seed);
                        queue.submit(batch).expect("within the depth bound")
                    })
                    .collect();
                for (r, ticket) in tickets.into_iter().enumerate() {
                    let reply = ticket.wait().expect("served");
                    // Outputs are bit-identical to the LUT reference,
                    // however the request was coalesced.
                    let seed = (client * 1000 + r) as u64;
                    let batch = TokenBatch::random(ns, TOKENS_PER_REQUEST, seed);
                    assert_eq!(
                        reply.result.tokens[0].outputs,
                        program.reference_output(&batch.tokens()[0]),
                    );
                }
            });
        }
    });
    let stats = queue.stats();
    println!(
        "{} clients x {} requests x {} tokens through one queue:",
        CLIENTS, REQUESTS_PER_CLIENT, TOKENS_PER_REQUEST
    );
    println!("  {stats}");
    println!(
        "  {} micro-batches, mean {:.1} tokens each (max {}), peak backlog {} requests",
        stats.queued_batches(),
        stats.mean_coalesced_batch(),
        stats.max_coalesced_batch(),
        stats.max_queue_depth(),
    );

    // ── 3. Typed backpressure on a depth-bounded queue ─────────────────
    // A slow backend (the event-driven netlist) behind a depth-2 queue:
    // submissions beyond the bound answer BackendError::QueueFull
    // instead of buffering without limit.
    let rtl_cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let rtl_program = MacroProgram::random(rtl_cfg.ndec, rtl_cfg.ns, 9);
    let slow = Session::builder(rtl_cfg)
        .program(rtl_program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        })
        .into_serving(QueuePolicy::default().with_max_depth(2))
        .expect("queue comes up");
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for seed in 0..32u64 {
        match slow.submit(TokenBatch::random(2, 64, seed)) {
            Ok(ticket) => accepted.push(ticket),
            Err(BackendError::QueueFull { limit }) => {
                rejected += 1;
                assert_eq!(limit, QueueLimit::Requests { max_depth: 2 });
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    println!(
        "\ndepth-2 RTL queue: {} bursts accepted, {} rejected with QueueFull",
        accepted.len(),
        rejected
    );
    for ticket in accepted {
        ticket.wait().expect("accepted bursts still serve");
    }

    // ── 4. Clean shutdown ──────────────────────────────────────────────
    // shutdown() closes intake, drains every accepted ticket, joins the
    // dispatcher and hands back the final statistics.
    let final_stats = slow.shutdown();
    println!("RTL queue after shutdown: {final_stats}");
    let final_stats = queue.shutdown();
    println!("functional queue after shutdown: {final_stats}");
}
