//! Waveform capture: runs one token through a small macro with tracing
//! enabled on the handshake and completion nets, prints the event
//! sequence (the reproduction of the paper's Fig. 5 B timing chart), and
//! writes a GTKWave-compatible VCD to `results/waveform.vcd`.
//!
//! Run with: `cargo run --example waveform --release`

use maddpipe::prelude::*;
use maddpipe::sim::{Logic, NetId};

fn main() {
    let cfg = MacroConfig::new(1, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 3);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);

    // Trace the self-synchronous control signals plus the per-decoder
    // completion/strobe chain of block 0 (the Fig. 5 B cast).
    let mut interesting: Vec<(String, NetId)> = Vec::new();
    {
        let circuit = rtl.simulator().circuit();
        for name in [
            "req[0]",
            "ack[0]",
            "req[1]",
            "ack[1]",
            "req[2]",
            "blk0.pche",
            "blk0.calce",
            "blk0.ibe",
        ] {
            if let Some(id) = circuit.find_net(name) {
                interesting.push((name.to_string(), id));
            }
        }
    }
    interesting.push(("blk0 RCD_LUT".into(), rtl.blocks()[0].decoders[0].rcd_lut));
    interesting.push(("blk0 GE strobe".into(), rtl.blocks()[0].decoders[0].ge));
    interesting.push(("blk0 block-RCD".into(), rtl.blocks()[0].rcd));
    interesting.push(("output strobe".into(), rtl.output_strobe()));
    for (_, id) in &interesting {
        rtl.simulator_mut().trace_net(*id);
    }

    let token = vec![[42i8; SUBVECTOR_LEN]; cfg.ns];
    let result = rtl.run_token(&token).expect("token completes");
    println!(
        "token outputs {:?} in {} using {}",
        result.outputs, result.latency, result.energy
    );

    // Console replay: the Fig. 5 B ordering — wordline select, bitline
    // split, RCD_col rise, GE pulse, latch — appears as the rising-edge
    // order of the traced nets.
    let names: std::collections::HashMap<NetId, String> =
        interesting.iter().map(|(n, id)| (*id, n.clone())).collect();
    println!("\nfirst 24 traced edges:");
    for e in rtl.simulator().trace_entries().iter().take(24) {
        if let Some(name) = names.get(&e.net) {
            println!(
                "  {:>14}  {:<14} → {}",
                e.time.to_string(),
                name,
                if e.value == Logic::High { "1" } else { "0" }
            );
        }
    }

    // Full dump for GTKWave.
    let vcd = rtl.simulator().write_vcd();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("waveform.vcd");
    if std::fs::create_dir_all(path.parent().expect("has parent")).is_ok()
        && std::fs::write(&path, &vcd).is_ok()
    {
        println!("\nVCD written to {}", path.display());
    }
}
