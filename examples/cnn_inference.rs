//! CNN inference end to end: train a ResNet9 on the synthetic CIFAR task,
//! convert it to the accelerator's MADDNESS arithmetic, check accuracy,
//! and map one convolution layer onto the macro — including running real
//! patches through the event-driven netlist.
//!
//! Run with: `cargo run --example cnn_inference --release`

use maddpipe::core::mapping::{ConvMapping, ConvShape};
use maddpipe::nn::layers::ConvExec;
use maddpipe::prelude::*;

fn main() {
    // ── 1. Train the float network ──────────────────────────────────────
    let (train_set, test_set) = synthetic_cifar(24, 12, 16, 99);
    let mut net = ResNet9::new(8, 16, 10, 11);
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 40,
        lr: 0.08,
        momentum: 0.9,
    };
    println!(
        "training ResNet9 (width 8) on {} synthetic images…",
        train_set.len()
    );
    let stats = train(&mut net, &train_set, &cfg);
    println!("{stats}");
    let float_acc = evaluate(&mut net, &test_set, 40);
    println!("float accuracy: {:.1}%", float_acc * 100.0);

    // ── 2. Substitute MADDNESS (the accelerator's arithmetic) ──────────
    let (calib, _) = train_set.batch(0, 120);
    let mut amm_net = net.clone();
    let replaced = substitute_digital(&mut amm_net, &calib, true).expect("substitution");
    let amm_acc = evaluate(&mut amm_net, &test_set, 40);
    println!(
        "digital MADDNESS accuracy: {:.1}% ({replaced} conv layers on LUTs)",
        amm_acc * 100.0
    );

    // ── 3. Map one layer onto the macro and run real patches ───────────
    // layer1 of the width-8 net: 8 → 16 channels on a 16×16 map.
    let shape = ConvShape::new(8, 16, 16, 16);
    let macro_cfg = MacroConfig::new(16, 8).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let mapping = ConvMapping::new(shape, &macro_cfg);
    let model = MacroModel::new(macro_cfg.clone());
    println!("\nmapping {shape} onto {macro_cfg}:");
    println!("  {mapping}");
    println!(
        "  per image: {} tokens, ≈{} at the average beat",
        mapping.tokens,
        mapping.image_latency(&model)
    );

    // Extract the trained layer-1 operator and open an RTL session on it.
    let op = {
        let conv = &mut amm_net.layer1.conv;
        match &conv.exec {
            ConvExec::Digital(op) => op.clone(),
            _ => unreachable!("layer1 was substituted"),
        }
    };
    let program = MacroProgram::from_maddness(&op);
    let rtl_cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let mut session = Session::builder(rtl_cfg)
        .program(program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        })
        .build()
        .expect("layer program fits the macro");
    // A few output pixels of one test image = one token batch.
    let (img, _) = test_set.batch(0, 1);
    let patches = maddpipe::nn::layers::im2col3x3(&{
        // layer1 input = prep block output.
        let mut prep = net.prep.clone();
        prep.forward(&img, false)
    });
    let pixel_rows: Vec<&[f32]> = (0..4).map(|p| patches.row(p * 64)).collect();
    let batch = TokenBatch::from_f32_rows(&pixel_rows, op.num_subspaces(), op.input_scale())
        .expect("non-empty batch");
    let result = session.run(&batch).expect("batch completes");
    for (p, (obs, row)) in result.tokens.iter().zip(&pixel_rows).enumerate() {
        let reference = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(obs.outputs, reference[0], "pixel {p}: netlist ≡ algorithm");
    }
    println!(
        "\n{} output pixels through the netlist: {} kernels each, {} \
         (bit-identical to the algorithm; p50 token latency {})",
        result.tokens.len(),
        result.tokens[0].outputs.len(),
        result.energy.expect("RTL measures energy"),
        session
            .stats()
            .p50_token_latency()
            .expect("RTL measures latency"),
    );
    let report = model.evaluate();
    println!(
        "macro PPA at this configuration: {:.1} TOPS/W, {:.2} TOPS/mm²",
        report.tops_per_watt, report.tops_per_mm2
    );
}
