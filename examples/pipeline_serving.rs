//! Pipeline serving: a whole CNN as one streaming deployment.
//!
//! Earlier examples serve a *single* macro — one program behind a queue
//! or a replica pool. Real inference is a chain: conv → ReLU → pool →
//! conv → … → logits. `PipelineGraph` deploys that whole chain as one
//! dataflow: every layer becomes a stage on its own thread (macro conv
//! stages behind their own replica pools, host layers as closures),
//! bounded queues connect the stages, and `submit(image)` returns a
//! ticket that resolves with the logits. This example walks:
//!
//! 1. lowering a multi-layer `Network` into a `PipelineSpec` and
//!    deploying it with `PipelineGraph::build`,
//! 2. streaming a batch of images through while verifying every reply
//!    is bit-identical to the host-side `Network::forward`,
//! 3. the stage-position probe: what a timed-out wait can say about
//!    *where* a request currently is,
//! 4. end-to-end backpressure: a tiny intake capacity answering typed
//!    `QueueFull` while in-flight work stays bounded, and
//! 5. the per-stage profile in `SessionStats` — items, occupancy,
//!    residence percentiles — after shutdown.
//!
//! Run with: `cargo run --example pipeline_serving --release`

use maddpipe::prelude::*;
use std::time::Duration;

const IMAGES: usize = 48;

fn main() {
    // ── 1. Lower a network and deploy it ───────────────────────────────
    // `Network::demo` is a deterministic two-conv CNN: (2, 8, 8) images
    // through conv(2→4) → ReLU → pool → conv(4→8) → ReLU → pool →
    // affine → linear to 10 logits. Each conv lowers to a macro stage
    // with 2 functional replicas; host math stays on the host.
    let net = Network::demo(42);
    let spec = net
        .to_pipeline_spec(
            BackendKind::Functional { workers: 1 },
            &StagePolicy::default().with_replicas(2),
        )
        .expect("the demo network lowers");
    println!("stages: {}", spec.stage_names().join(" -> "));
    let graph = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(16))
        .expect("graph deploys");

    // ── 2. Stream images through, checking bit-identicality ────────────
    let images: Vec<Vec<f32>> = (0..IMAGES)
        .map(|i| Network::demo_image(i as u64, net.input_len()))
        .collect();
    let tickets: Vec<PipelineTicket> = images
        .iter()
        .map(|img| loop {
            match graph.submit(img.clone()) {
                Ok(ticket) => break ticket,
                // Intake backpressure: a full queue is a retry signal.
                Err(BackendError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        })
        .collect();
    let mut worst = Duration::ZERO;
    for (img, ticket) in images.iter().zip(tickets) {
        let reply = ticket.wait().expect("served");
        assert_eq!(
            reply.outputs,
            net.forward(img).expect("host forward"),
            "the streaming deployment is bit-identical to Network::forward"
        );
        worst = worst.max(reply.latency);
    }
    println!(
        "{IMAGES} images served bit-identical to the host forward (worst e2e {:.1} ms)",
        worst.as_secs_f64() * 1e3
    );

    // ── 3. The stage-position probe ────────────────────────────────────
    // A wait that times out can name the stage the request is stuck at
    // instead of failing opaquely.
    let ticket = graph.submit(images[0].clone()).expect("accepted");
    match ticket.wait_timeout(Duration::ZERO) {
        Ok(reply) => {
            let reply = reply.expect("served");
            println!("probe: already done ({} logits)", reply.outputs.len());
        }
        Err(ticket) => {
            if let Some(stage) = ticket.state().stage() {
                println!(
                    "probe: currently at stage {stage} ({})",
                    graph.stage_names()[stage]
                );
            }
            ticket.wait().expect("served after the probe");
        }
    }

    // ── 4. Backpressure under a deliberately slow stage ────────────────
    // A 3-stage host pipeline whose middle stage sleeps: with capacity
    // 2, intake refuses beyond the bounded queues — typed flow control,
    // not unbounded buffering.
    let slow_spec = PipelineSpec::new()
        .host("scale", |x: Vec<f32>| {
            Ok(x.iter().map(|v| v * 2.0).collect())
        })
        .host("slow", |x: Vec<f32>| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(x)
        })
        .host("bias", |x: Vec<f32>| {
            Ok(x.iter().map(|v| v + 1.0).collect())
        });
    let slow = PipelineGraph::build(slow_spec, PipelinePolicy::default().with_capacity(2))
        .expect("graph deploys");
    let mut accepted = Vec::new();
    let mut refused = 0u32;
    for i in 0..32 {
        match slow.submit(vec![i as f32]) {
            Ok(t) => accepted.push(t),
            Err(BackendError::QueueFull { .. }) => refused += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    println!(
        "\nbackpressure: {} admitted, {refused} refused with QueueFull, depth {} (bounded)",
        accepted.len(),
        slow.depth()
    );
    for ticket in accepted {
        // Flow control is not loss: everything admitted is served.
        ticket.wait().expect("admitted work drains");
    }
    slow.shutdown();

    // ── 5. Per-stage accounting after shutdown ─────────────────────────
    let stats = graph.shutdown();
    println!(
        "\npipeline: {} images, {:.0} images/s, e2e p99 {:.1} ms",
        stats.images(),
        stats.images_per_sec().unwrap_or(0.0),
        stats
            .p99_image_latency()
            .map_or(0.0, |d| d.as_secs_f64() * 1e3)
    );
    let occupancy = stats.stage_occupancy();
    for (profile, occ) in stats.stage_profiles().iter().zip(occupancy) {
        println!(
            "  [{:>9}] {:>3} items, {:>5.1}% occupied, p99 residence {:>7.1} us",
            profile.name(),
            profile.items(),
            occ * 100.0,
            profile
                .p99_residence()
                .map_or(0.0, |d| d.as_secs_f64() * 1e6)
        );
    }
}
