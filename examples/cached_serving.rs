//! Result caching: a content-addressed cache tier over any backend.
//!
//! CNN inference over real images is full of repeated work — flat image
//! regions emit the *same* im2col window again and again, so the macro
//! keeps being asked for outputs it has already computed. A
//! `CachedBackend` sits in front of any inner backend and answers those
//! repeats from a bounded content-addressed store, keyed on the
//! program's fingerprint plus the exact quantised token bytes. The
//! purity contract makes this safe: a `MacroProgram` is a pure function
//! of its token, so equal bytes in means equal bytes out, forever. This
//! example walks the tier end to end:
//!
//! 1. run a repeated-patch workload cold (uncached functional backend)
//!    and through a `BackendKind::Cached` session, comparing wall time,
//! 2. replay the same workload warm — near-100% hit-rate — and read
//!    hits, misses, intra-batch dedup and residency off `SessionStats`,
//! 3. serve the same cached recipe from a `ReplicaPool` (each replica
//!    fills its own private store), and
//! 4. bound the store (`CacheConfig::with_max_entries`) so eviction
//!    churn shows up in the counters while outputs stay bit-identical.
//!
//! Run with: `cargo run --example cached_serving --release`

use maddpipe::prelude::*;
use std::time::Instant;

const ALPHABET: usize = 24;
const TOKENS_PER_BATCH: usize = 512;

/// The repeated-patch workload: a long batch drawn from a small token
/// alphabet, like im2col windows off an image with large flat regions.
fn repeated_patch_batch(ns: usize) -> TokenBatch {
    let alphabet = TokenBatch::random(ns, ALPHABET, 11).into_tokens();
    let tokens: Vec<Token> = (0..TOKENS_PER_BATCH)
        .map(|i| alphabet[(i * 7) % alphabet.len()].clone())
        .collect();
    TokenBatch::new(tokens).expect("non-empty")
}

fn main() {
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
    let batch = repeated_patch_batch(cfg.ns);

    // 1. Cold baseline: every token recomputes, duplicates included.
    let mut uncached = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Functional { workers: 1 })
        .build()
        .expect("program fits");
    let t0 = Instant::now();
    let cold = uncached.run(&batch).expect("batch completes");
    let cold_wall = t0.elapsed();
    println!("uncached: {} tokens in {cold_wall:?}", cold.tokens.len());

    // The same session, fronted by a cache: the first pass computes each
    // *unique* token once (misses + intra-batch dedup fan-out), …
    let mut cached = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        })
        .build()
        .expect("program fits");
    let t0 = Instant::now();
    let fill = cached.run(&batch).expect("batch completes");
    let fill_wall = t0.elapsed();
    assert_eq!(
        fill.tokens.iter().map(|t| &t.outputs).collect::<Vec<_>>(),
        cold.tokens.iter().map(|t| &t.outputs).collect::<Vec<_>>(),
        "the cache tier is invisible in the outputs"
    );

    // 2. …and the warm replay answers almost everything from the store.
    let t0 = Instant::now();
    let warm = cached.run(&batch).expect("batch completes");
    let warm_wall = t0.elapsed();
    assert_eq!(warm.tokens.len(), batch.len());
    let stats = cached.stats();
    println!(
        "cached:   fill {fill_wall:?}, warm replay {warm_wall:?} \
         (hit-rate {:.1}%, {} deduped, {} entries / {} bytes resident)",
        stats.cache_hit_rate().unwrap_or(0.0) * 100.0,
        stats.cache_dedup(),
        stats.cache_resident_entries(),
        stats.cache_resident_bytes(),
    );

    // 3. The same recipe serves from a pool: `BackendKind::Cached` is
    // Copy, so every replica deploys its own private store from it and
    // the pool's stats aggregate all of them.
    let pool = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        })
        .into_pool(ServePolicy::default().with_replicas(2))
        .expect("pool comes up");
    for _ in 0..4 {
        pool.submit(batch.clone())
            .expect("accepted")
            .wait()
            .expect("served");
    }
    let pool_stats = pool.shutdown();
    println!(
        "pool:     {} tokens, {} hits / {} misses across 2 replica stores",
        pool_stats.tokens(),
        pool_stats.cache_hits(),
        pool_stats.cache_misses(),
    );

    // 4. Bound the store hard and the cache degrades gracefully:
    // eviction churn in the counters, identical bytes in the replies.
    let mut tiny = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Cached {
            cache: CacheConfig::default().with_max_entries(4),
            inner: CachedKind::Functional { workers: 1 },
        })
        .build()
        .expect("program fits");
    let churned = tiny.run(&batch).expect("batch completes");
    assert_eq!(
        churned
            .tokens
            .iter()
            .map(|t| &t.outputs)
            .collect::<Vec<_>>(),
        cold.tokens.iter().map(|t| &t.outputs).collect::<Vec<_>>(),
        "eviction churn never changes outputs"
    );
    let tiny_stats = tiny.stats();
    println!(
        "tiny:     max 4 entries -> {} evictions, {} resident, still bit-identical",
        tiny_stats.cache_evictions(),
        tiny_stats.cache_resident_entries(),
    );
}
