//! Stress and scheduling-contract tests for the replica pool.
//!
//! The serving contract: any number of concurrent submitters pushing
//! through a `ReplicaPool` receive outputs **bit-identical** to running
//! their batches directly through `run_batch` on the same backend kind —
//! replica spreading, coalescing and fairness reordering must be
//! invisible in each request's own results. On top of that the
//! scheduling policies are exercised deterministically with a gated
//! backend: round-robin interleaves clients instead of serving a hot
//! client's backlog first, and a per-request deadline ships a partial
//! micro-batch instead of waiting out the policy linger.

use maddpipe::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 10;
const TOKENS_PER_REQUEST: usize = 4;

/// The deterministic batch client `c` submits as its `r`-th request.
fn client_batch(ns: usize, c: usize, r: usize) -> TokenBatch {
    TokenBatch::random(ns, TOKENS_PER_REQUEST, 1 + (c as u64) * 1000 + r as u64)
}

/// Runs the multi-client stress against a two-replica pool of one
/// backend kind: 8 submitter threads × 10 requests × 4 tokens, every
/// reply pinned bit-identical to a direct `Session::run` of the same
/// batch, under round-robin fairness and per-request deadlines.
fn stress_bit_identical(kind: BackendKind, ndec: usize, ns: usize) {
    let cfg = MacroConfig::new(ndec, ns).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(ndec, ns, 77);

    // Golden: one direct session, batches run one at a time.
    let mut direct = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(kind)
        .build()
        .expect("program fits");
    let mut expected: Vec<Vec<Vec<Vec<i16>>>> = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let mut per_client = Vec::with_capacity(REQUESTS_PER_CLIENT);
        for r in 0..REQUESTS_PER_CLIENT {
            let result = direct.run(&client_batch(ns, c, r)).expect("direct run");
            per_client.push(result.tokens.into_iter().map(|t| t.outputs).collect());
        }
        expected.push(per_client);
    }

    // Pool: same program, same kind, two replicas, 8 concurrent
    // submitters with distinct client keys (odd clients also carry a
    // latency target, so the deadline path is exercised under load).
    let replicas = 2;
    let pool = Session::builder(cfg)
        .program(program)
        .backend(kind)
        .into_pool(
            ServePolicy::default()
                .with_replicas(replicas)
                .with_fairness(Fairness::RoundRobin)
                .with_queue(
                    QueuePolicy::default()
                        .with_max_batch(32)
                        .with_max_linger(Duration::from_micros(500))
                        .with_max_depth(4096),
                ),
        )
        .expect("pool comes up");
    std::thread::scope(|scope| {
        for (c, expected) in expected.iter().enumerate() {
            let pool = &pool;
            scope.spawn(move || {
                let opts = if c % 2 == 1 {
                    SubmitOptions::default()
                        .with_client(c as u64)
                        .with_deadline(Duration::from_micros(100))
                } else {
                    SubmitOptions::default().with_client(c as u64)
                };
                // Submit everything first, then wait — so requests from
                // all clients really are in flight together.
                let tickets: Vec<BatchTicket> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        pool.submit_with(client_batch(ns, c, r), opts)
                            .expect("accepted")
                    })
                    .collect();
                for (r, ticket) in tickets.into_iter().enumerate() {
                    let reply = ticket.wait().expect("served");
                    let got: Vec<Vec<i16>> =
                        reply.result.tokens.into_iter().map(|t| t.outputs).collect();
                    assert_eq!(got, expected[r], "client {c} request {r}");
                    assert!(reply.replica < replicas, "replica index in range");
                    assert!(reply.coalesced_tokens >= TOKENS_PER_REQUEST);
                    assert!(reply.service > Duration::ZERO);
                }
            });
        }
    });

    let total = (CLIENTS * REQUESTS_PER_CLIENT * TOKENS_PER_REQUEST) as u64;
    let stats = pool.shutdown();
    assert_eq!(stats.tokens(), total, "every token served exactly once");
    assert_eq!(
        stats.queued_requests(),
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    assert!(stats.p50_queue_wait().is_some() && stats.p99_queue_wait().is_some());
    // Per-replica accounting: one entry per replica, dispatches summing
    // to the micro-batch count, busy time only where dispatches landed.
    assert_eq!(stats.replica_dispatches().len(), replicas);
    assert_eq!(stats.replica_busy().len(), replicas);
    assert_eq!(
        stats.replica_dispatches().iter().sum::<u64>(),
        stats.queued_batches(),
        "every micro-batch is attributed to exactly one replica"
    );
    for r in 0..replicas {
        assert_eq!(
            stats.replica_dispatches()[r] > 0,
            stats.replica_busy()[r] > Duration::ZERO,
            "busy time and dispatch counts must agree for replica {r}"
        );
    }
    assert!(stats.pool_uptime() > Duration::ZERO);
    assert_eq!(stats.replica_utilisation().len(), replicas);
}

#[test]
fn eight_clients_match_direct_runs_on_functional_replicas() {
    stress_bit_identical(BackendKind::Functional { workers: 2 }, 3, 2);
}

#[test]
fn eight_clients_match_direct_runs_on_rtl_replicas() {
    stress_bit_identical(
        BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
        2,
        2,
    );
}

#[test]
fn eight_clients_match_direct_runs_on_sharded_replicas() {
    stress_bit_identical(
        BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Functional { workers: 1 },
        },
        4,
        2,
    );
}

/// A backend gated on a channel: each `run_batch` announces its token
/// count on `started`, then waits for one release token — the pool
/// scheduling tests' determinism lever (no assertion below depends on
/// winning a race against the replica thread).
struct GatedBackend {
    inner: FunctionalBackend,
    started: mpsc::Sender<usize>,
    gate: mpsc::Receiver<()>,
}

impl MacroBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        let _ = self.started.send(batch.len());
        // A closed gate (sender dropped) releases immediately so pool
        // shutdown can always drain.
        let _ = self.gate.recv();
        self.inner.run_batch(batch)
    }
}

/// A single-replica gated pool plus its control channels.
fn gated_pool(
    ns: usize,
    policy: ServePolicy,
) -> (ReplicaPool, mpsc::Receiver<usize>, mpsc::Sender<()>) {
    let program = MacroProgram::random(2, ns, 5);
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let factory: BackendFactory = Box::new(move || {
        Ok(Box::new(GatedBackend {
            inner: FunctionalBackend::new(program),
            started: started_tx,
            gate: gate_rx,
        }))
    });
    let pool = ReplicaPool::from_factories(policy, ns, vec![factory]).expect("pool comes up");
    (pool, started_rx, gate_tx)
}

#[test]
fn round_robin_interleaves_clients_instead_of_draining_the_hot_one() {
    // One replica, 4-token micro-batches, zero linger: micro-batch
    // composition is fully determined by the fairness discipline.
    let policy = ServePolicy::default()
        .with_fairness(Fairness::RoundRobin)
        .with_queue(
            QueuePolicy::default()
                .with_max_batch(4)
                .with_max_linger(Duration::ZERO),
        );
    let (pool, started, gate) = gated_pool(2, policy);

    // Park the replica on a warm-up so the backlog below queues whole.
    let warmup = pool
        .submit_with(
            TokenBatch::random(2, 1, 9),
            SubmitOptions::default().with_client(9),
        )
        .expect("accepted");
    assert_eq!(started.recv().expect("replica alive"), 1);

    // Hot client A queues three requests before B and C queue one each.
    let submit = |client: u64, seed: u64| {
        pool.submit_with(
            TokenBatch::random(2, 2, seed),
            SubmitOptions::default().with_client(client),
        )
        .expect("accepted")
    };
    let a1 = submit(0, 100);
    let a2 = submit(0, 101);
    let a3 = submit(0, 102);
    let b1 = submit(1, 200);
    let c1 = submit(2, 300);

    gate.send(()).expect("release warm-up");
    warmup.wait().expect("served");

    // Micro-batch 1: A's oldest + B's — NOT A's first two. Under FIFO
    // the hot client would fill the whole batch.
    assert_eq!(started.recv().expect("replica alive"), 4);
    gate.send(()).expect("release");
    let reply = a1.wait().expect("served");
    assert_eq!(reply.coalesced_tokens, 4);
    assert_eq!(reply.replica, 0);
    b1.wait().expect("B rides the first coalition");
    assert!(
        !a2.is_ready(),
        "A's backlog must not displace other clients"
    );
    assert!(!c1.is_ready(), "C waits for the next cycle");

    // Micro-batch 2: the cycle resumes past B — A's next + C's.
    assert_eq!(started.recv().expect("replica alive"), 4);
    gate.send(()).expect("release");
    a2.wait().expect("served");
    c1.wait().expect("C rides the second coalition");
    assert!(!a3.is_ready(), "A's tail is still queued");

    // Micro-batch 3: only A's tail is left; it ships partial.
    assert_eq!(started.recv().expect("replica alive"), 2);
    gate.send(()).expect("release");
    a3.wait().expect("served");
    pool.shutdown();
}

#[test]
fn a_deadline_ships_a_partial_micro_batch_before_the_policy_linger() {
    // A 10 s linger and a huge batch bound: without a deadline nothing
    // below would dispatch inside this test's lifetime.
    let policy = ServePolicy::default().with_queue(
        QueuePolicy::default()
            .with_max_batch(1024)
            .with_max_linger(Duration::from_secs(10)),
    );
    let (pool, started, gate) = gated_pool(2, policy);

    // A deadline-less request lingers (robust check: nothing dispatches
    // within a window far shorter than the linger)...
    let patient = pool.submit(TokenBatch::random(2, 1, 1)).expect("accepted");
    assert!(
        started.recv_timeout(Duration::from_millis(300)).is_err(),
        "a lone request below max_batch must linger, not dispatch"
    );

    // ...until a deadline-zero request arrives: its dispatch deadline is
    // already due, so the replica ships a partial micro-batch at once —
    // carrying the patient rider along.
    let urgent = pool
        .submit_with(
            TokenBatch::random(2, 1, 2),
            SubmitOptions::default().with_deadline(Duration::ZERO),
        )
        .expect("accepted");
    assert_eq!(
        started
            .recv_timeout(Duration::from_secs(30))
            .expect("the deadline must cut the linger short"),
        2,
        "both pending requests ride the deadline-triggered micro-batch"
    );
    gate.send(()).expect("release");
    assert_eq!(patient.wait().expect("served").coalesced_tokens, 2);
    assert_eq!(urgent.wait().expect("served").coalesced_tokens, 2);
    pool.shutdown();
}

#[test]
fn a_pool_whose_every_replica_panics_closes_with_typed_errors() {
    struct PanickingBackend;
    impl MacroBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn run_batch(&mut self, _batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            panic!("backend bug");
        }
    }
    let factories: Vec<BackendFactory> = (0..2)
        .map(|_| {
            let f: BackendFactory = Box::new(|| Ok(Box::new(PanickingBackend)));
            f
        })
        .collect();
    let pool = ReplicaPool::from_factories(ServePolicy::default().with_replicas(2), 2, factories)
        .expect("comes up");
    let ticket = pool.submit(TokenBatch::random(2, 2, 1)).expect("accepted");
    // Factory-built replicas have no rebuild recipe, so each panic
    // quarantines for good; when *both* replicas are gone the pool
    // closes and every unresolved ticket answers typed — never hangs.
    // (A single panic among healthy siblings no longer closes anything;
    // that path is pinned in tests/serving_faults.rs.)
    assert_eq!(ticket.wait().unwrap_err(), BackendError::QueueClosed);
    let err = loop {
        match pool.submit(TokenBatch::random(2, 2, 2)) {
            Err(e) => break e,
            // A ticket accepted before the close propagates still
            // resolves to QueueClosed.
            Ok(ticket) => assert_eq!(ticket.wait().unwrap_err(), BackendError::QueueClosed),
        }
    };
    assert_eq!(err, BackendError::QueueClosed);
}

#[test]
fn into_pool_carries_session_stats_and_rejects_foreign_backends() {
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(2, 2, 4);
    // A session that already ran batches directly...
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .build()
        .expect("program fits");
    session.run(&TokenBatch::random(2, 5, 1)).expect("runs");
    // ...keeps those measurements when it becomes a pool.
    let pool = session
        .into_pool(ServePolicy::default().with_replicas(2))
        .expect("pool comes up");
    assert_eq!(pool.stats().tokens(), 5);
    assert_eq!(pool.policy().replicas, 2);
    pool.submit(TokenBatch::random(2, 3, 2))
        .expect("accepted")
        .wait()
        .expect("served");
    let stats = pool.shutdown();
    assert_eq!(stats.tokens(), 8, "direct + pooled batches accumulate");
    assert_eq!(stats.queued_requests(), 1);

    // A session wrapping a caller-constructed backend has no recipe to
    // rebuild on replica threads: typed error, not a panic.
    let foreign = Session::from_backend(cfg, Box::new(FunctionalBackend::new(program)));
    match foreign.into_pool(ServePolicy::default()) {
        Err(BackendError::QueueUnavailable { reason }) => {
            assert!(reason.contains("from_factories"), "{reason}");
        }
        other => panic!("expected QueueUnavailable, got {other:?}"),
    }
}
