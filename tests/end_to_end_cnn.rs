//! End-to-end CNN flow: train → substitute → map onto the macro → run
//! patches through the netlist — the full deployment path of Fig. 3.

use maddpipe::core::mapping::{ConvMapping, ConvShape};
use maddpipe::nn::layers::{im2col3x3, ConvExec};
use maddpipe::prelude::*;

#[test]
fn trained_cnn_layer_runs_on_the_netlist() {
    // Tiny but real: train, substitute, then push an actual activation
    // patch through the silicon model.
    let (train_set, _) = synthetic_cifar(8, 2, 16, 5);
    let mut net = ResNet9::new(4, 16, 10, 2);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.9,
    };
    let _ = train(&mut net, &train_set, &cfg);
    let (calib, _) = train_set.batch(0, 40);
    let replaced = substitute_digital(&mut net, &calib, false).expect("substitution");
    assert!(replaced >= 7);

    // The layer1 operator (4 → 8 channels).
    let op = match &net.layer1.conv.exec {
        ConvExec::Digital(op) => op.clone(),
        _ => unreachable!("layer1 substituted"),
    };
    assert_eq!(op.num_subspaces(), 4);
    assert_eq!(op.out_features(), 8);

    // Map the layer geometrically.
    let shape = ConvShape::new(4, 8, 16, 16);
    let mapping = ConvMapping::new(shape, &MacroConfig::new(8, 4));
    assert_eq!(mapping.tiles_in, 1);
    assert_eq!(mapping.tiles_out, 1);
    assert_eq!(mapping.tokens, 256);
    assert!((mapping.utilization - 1.0).abs() < 1e-12);

    // Run three real patches through the netlist — one pipelined batch on
    // the session API, with per-token outputs captured at the strobe.
    let program = MacroProgram::from_maddness(&op);
    let rtl_cfg = MacroConfig::new(8, 4).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let mut session = Session::builder(rtl_cfg)
        .program(program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Pipelined,
        })
        .build()
        .expect("layer program fits the macro");
    let (img, _) = train_set.batch(0, 1);
    let prep_out = {
        let mut prep = net.prep.clone();
        prep.forward(&img, false)
    };
    let patches = im2col3x3(&prep_out);
    let pixels = [0usize, 100, 255];
    let rows: Vec<&[f32]> = pixels.iter().map(|&r| patches.row(r)).collect();
    let batch = TokenBatch::from_f32_rows(&rows, op.num_subspaces(), op.input_scale())
        .expect("non-empty batch");
    let result = session.run(&batch).expect("batch completes");
    for ((obs, &row_idx), row) in result.tokens.iter().zip(&pixels).zip(&rows) {
        let expected = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(obs.outputs, expected[0], "pixel {row_idx}");
    }
    assert!(
        session
            .rtl()
            .expect("rtl backend")
            .simulator()
            .violations()
            .is_empty(),
        "pipelined streaming must not violate timing"
    );
}

#[test]
fn analog_noise_ordering_survives_the_full_network() {
    let (train_set, test_set) = synthetic_cifar(8, 4, 16, 6);
    let mut net = ResNet9::new(4, 16, 10, 4);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.9,
    };
    let _ = train(&mut net, &train_set, &cfg);
    let (calib, _) = train_set.batch(0, 40);
    // Digital vs very-noisy analog: digital must not be worse.
    let mut digital = net.clone();
    substitute_digital(&mut digital, &calib, false).expect("substitution");
    let digital_acc = evaluate(&mut digital, &test_set, 20);
    let mut analog = net.clone();
    substitute_analog(&mut analog, &calib, 15.0, 3);
    let analog_acc = evaluate(&mut analog, &test_set, 20);
    assert!(
        digital_acc + 1e-9 >= analog_acc,
        "digital {digital_acc} must be ≥ heavily-noisy analog {analog_acc}"
    );
}
