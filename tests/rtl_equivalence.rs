//! Cross-crate integration: the event-driven netlist must be functionally
//! identical to the MADDNESS algorithm — for arbitrary programs, arbitrary
//! inputs, and operators trained on real data. All flows drive the macro
//! through the unified `Session` API.

use maddpipe::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// For random macro shapes, programs and token streams, the netlist
    /// output equals the algorithmic reference bit for bit.
    #[test]
    fn netlist_equals_algorithm(
        ndec in 1usize..=2,
        ns in 1usize..=3,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(ndec, ns, program_seed);
        let mut session = Session::builder(cfg)
            .program(program.clone())
            .backend(BackendKind::Rtl { fidelity: Fidelity::Sequential })
            .build()
            .expect("program fits");
        let batch = TokenBatch::random(ns, 3, token_seed);
        let result = session.run(&batch).expect("batch completes");
        for (t, token) in batch.tokens().iter().enumerate() {
            prop_assert_eq!(&result.tokens[t].outputs, &program.reference_output(token));
        }
        let rtl = session.rtl().expect("rtl backend");
        prop_assert!(rtl.simulator().violations().is_empty(),
            "violations: {:?}", rtl.simulator().violations());
    }
}

/// An operator trained on structured data drives the netlist to the exact
/// integer results of its deployed (INT8, wrapping-i16) decode path.
#[test]
fn trained_operator_matches_netlist_on_real_rows() {
    let mut rng = StdRng::seed_from_u64(31);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..18).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            centers[i % centers.len()]
                .iter()
                .map(|&v| v + rng.gen_range(-0.2f32..0.2))
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 3);
    for r in 0..18 {
        for c in 0..3 {
            w[(r, c)] = ((r + c * 7) % 13) as f32 / 13.0 - 0.5;
        }
    }
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("train");
    let program = MacroProgram::from_maddness(&op);
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let mut session = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        })
        .build()
        .expect("trained program fits");
    let picked: Vec<usize> = (0..x.rows()).step_by(37).collect();
    let picked_rows: Vec<&[f32]> = picked.iter().map(|&r| x.row(r)).collect();
    let batch = TokenBatch::from_f32_rows(&picked_rows, op.num_subspaces(), op.input_scale())
        .expect("non-empty batch");
    let result = session.run(&batch).expect("batch completes");
    for ((obs, &r), row) in result.tokens.iter().zip(&picked).zip(&picked_rows) {
        let expected = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(obs.outputs, expected[0], "row {r}");
    }
}

/// Accumulation saturates the architectural corner: LUTs full of +127
/// through several stages still match (wrap-around semantics end to end).
#[test]
fn extreme_lut_values_wrap_identically() {
    let cfg = MacroConfig::new(1, 3).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("tree")
        .quantize(QuantScale::UNIT);
    for fill in [127i8, -128, -1] {
        let program = MacroProgram {
            trees: vec![tree.clone(); 3],
            luts: vec![vec![[fill; 16]]; 3],
        };
        let mut session = Session::builder(cfg.clone())
            .program(program.clone())
            .backend(BackendKind::Rtl {
                fidelity: Fidelity::Sequential,
            })
            .build()
            .expect("program fits");
        let batch = TokenBatch::random(3, 1, 5);
        let result = session.run(&batch).expect("batch completes");
        assert_eq!(
            result.tokens[0].outputs,
            program.reference_output(&batch.tokens()[0]),
            "fill {fill}"
        );
        assert_eq!(result.tokens[0].outputs[0], (fill as i16).wrapping_mul(3));
    }
}
