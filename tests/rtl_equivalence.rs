//! Cross-crate integration: the event-driven netlist must be functionally
//! identical to the MADDNESS algorithm — for arbitrary programs, arbitrary
//! inputs, and operators trained on real data.

use maddpipe::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_token(ns: usize, seed: u64) -> Vec<[i8; SUBVECTOR_LEN]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() {
                *v = rng.gen_range(-128i32..=127) as i8;
            }
            x
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// For random macro shapes, programs and token streams, the netlist
    /// output equals the algorithmic reference bit for bit.
    #[test]
    fn netlist_equals_algorithm(
        ndec in 1usize..=2,
        ns in 1usize..=3,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(ndec, ns, program_seed);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        for t in 0..3u64 {
            let token = random_token(ns, token_seed.wrapping_add(t));
            let result = rtl.run_token(&token).expect("token completes");
            prop_assert_eq!(&result.outputs, &program.reference_output(&token));
        }
        prop_assert!(rtl.simulator().violations().is_empty(),
            "violations: {:?}", rtl.simulator().violations());
    }
}

/// An operator trained on structured data drives the netlist to the exact
/// integer results of its deployed (INT8, wrapping-i16) decode path.
#[test]
fn trained_operator_matches_netlist_on_real_rows() {
    let mut rng = StdRng::seed_from_u64(31);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..18).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            centers[i % centers.len()]
                .iter()
                .map(|&v| v + rng.gen_range(-0.2f32..0.2))
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 3);
    for r in 0..18 {
        for c in 0..3 {
            w[(r, c)] = ((r + c * 7) % 13) as f32 / 13.0 - 0.5;
        }
    }
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("train");
    let program = MacroProgram::from_maddness(&op);
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    let scale = op.input_scale();
    for r in (0..x.rows()).step_by(37) {
        let row = x.row(r);
        let mut token = vec![[0i8; SUBVECTOR_LEN]; op.num_subspaces()];
        for (s, chunk) in row.chunks(9).enumerate() {
            for (e, &v) in chunk.iter().enumerate() {
                token[s][e] = scale.quantize(v);
            }
        }
        let result = rtl.run_token(&token).expect("token completes");
        let expected = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(result.outputs, expected[0], "row {r}");
    }
}

/// Accumulation saturates the architectural corner: LUTs full of +127
/// through several stages still match (wrap-around semantics end to end).
#[test]
fn extreme_lut_values_wrap_identically() {
    let cfg = MacroConfig::new(1, 3).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("tree")
        .quantize(QuantScale::UNIT);
    for fill in [127i8, -128, -1] {
        let program = MacroProgram {
            trees: vec![tree.clone(); 3],
            luts: vec![vec![[fill; 16]]; 3],
        };
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let token = random_token(3, 5);
        let result = rtl.run_token(&token).expect("token completes");
        assert_eq!(
            result.outputs,
            program.reference_output(&token),
            "fill {fill}"
        );
        assert_eq!(result.outputs[0], (fill as i16).wrapping_mul(3));
    }
}
