//! Fault-injection tests for the self-healing serving stack.
//!
//! The recovery contract under test: with a `ChaosBackend` injecting
//! seeded transient failures and a forced replica crash, a multi-client
//! workload through a `ReplicaPool` still completes **bit-identical** to
//! direct `run_batch` — retries, requeues and respawns must be invisible
//! in every request's own results. No ticket is ever leaked, the pool
//! never closes while at least one replica is healthy, and `PoolHealth`
//! accounts for every crash (respawned or quarantined).
//!
//! The chaos seed is `MADDPIPE_CHAOS_SEED` when set (CI sweeps several),
//! 7 otherwise; every fault schedule is a pure function of it.

use maddpipe::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;
const TOKENS_PER_REQUEST: usize = 4;

/// The chaos seed under test: `MADDPIPE_CHAOS_SEED` when set (the CI
/// stress job sweeps a few), 7 otherwise.
fn chaos_seed() -> u64 {
    std::env::var("MADDPIPE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The deterministic batch client `c` submits as its `r`-th request.
fn client_batch(ns: usize, c: usize, r: usize) -> TokenBatch {
    TokenBatch::random(ns, TOKENS_PER_REQUEST, 1 + (c as u64) * 1000 + r as u64)
}

/// A rebuildable functional-replica recipe for `program` — what a
/// respawning pool rebuilds crashed replicas from.
fn functional_recipe(cfg: &MacroConfig, program: &MacroProgram) -> ReplicaFactory {
    let cfg = cfg.clone();
    let program = program.clone();
    Arc::new(move || BackendKind::Functional { workers: 1 }.build(&cfg, program.clone()))
}

#[test]
fn an_eight_client_workload_survives_faults_bit_identical() {
    let cfg = MacroConfig::new(3, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 77);
    let ns = cfg.ns;

    // Golden: one direct session, batches run one at a time.
    let mut direct = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Functional { workers: 1 })
        .build()
        .expect("program fits");
    let mut expected: Vec<Vec<Vec<Vec<i16>>>> = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let mut per_client = Vec::with_capacity(REQUESTS_PER_CLIENT);
        for r in 0..REQUESTS_PER_CLIENT {
            let result = direct.run(&client_batch(ns, c, r)).expect("direct run");
            per_client.push(result.tokens.into_iter().map(|t| t.outputs).collect());
        }
        expected.push(per_client);
    }

    // Chaos pool: three respawnable replicas drawing ≥10% transient
    // failures and one forced crash from a single seeded schedule.
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_transient_rate(0.15)
        .with_panic_on_call(6);
    let recipes = (0..3)
        .map(|_| wrap_recipe(functional_recipe(&cfg, &program), chaos, Arc::clone(&state)))
        .collect();
    let pool = ReplicaPool::from_recipes(
        ServePolicy::default()
            .with_fairness(Fairness::RoundRobin)
            .with_queue(
                QueuePolicy::default()
                    .with_max_batch(32)
                    .with_max_linger(Duration::from_micros(200))
                    .with_max_depth(4096),
            )
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(8)
                    .with_backoff(Duration::from_micros(50))
                    .with_respawn(2),
            ),
        ns,
        recipes,
    )
    .expect("pool comes up");

    std::thread::scope(|scope| {
        for (c, expected) in expected.iter().enumerate() {
            let pool = &pool;
            scope.spawn(move || {
                let opts = SubmitOptions::default().with_client(c as u64);
                // Submit everything first, then wait — all clients'
                // requests really are in flight while faults land.
                let tickets: Vec<BatchTicket> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| {
                        pool.submit_with(client_batch(ns, c, r), opts)
                            .expect("accepted")
                    })
                    .collect();
                // Zero leaked tickets: every single one resolves, and
                // with results — the recovery machinery absorbed every
                // injected fault before any client saw it.
                for (r, ticket) in tickets.into_iter().enumerate() {
                    let reply = ticket.wait().expect("served through faults");
                    let got: Vec<Vec<i16>> =
                        reply.result.tokens.into_iter().map(|t| t.outputs).collect();
                    assert_eq!(got, expected[r], "client {c} request {r}");
                }
            });
        }
    });

    // The workload outran the chaos: faults actually fired (the 15%
    // rate over dozens of calls cannot silently round to zero) and the
    // forced crash was respawned, not quarantined.
    let health = pool.health();
    assert_eq!(health.healthy, 3, "the crashed replica is back");
    assert_eq!(health.quarantined, 0);
    assert!(
        health.restarts >= 1,
        "the forced crash respawned: {health:?}"
    );

    // The pool never closed: it still serves after the storm.
    let after = pool
        .submit(client_batch(ns, 0, 0))
        .expect("a healthy pool keeps accepting")
        .wait()
        .expect("and keeps serving");
    assert_eq!(
        after.result.tokens[0].outputs,
        program.reference_output(&client_batch(ns, 0, 0).tokens()[0]),
    );

    let total = (CLIENTS * REQUESTS_PER_CLIENT * TOKENS_PER_REQUEST + TOKENS_PER_REQUEST) as u64;
    let stats = pool.shutdown();
    assert_eq!(stats.tokens(), total, "every token served exactly once");
    assert!(stats.retries() >= 1, "transient faults were retried");
    assert_eq!(stats.pool_health().quarantined, 0);
    assert!(stats.pool_health().restarts >= 1);
}

#[test]
fn a_mid_service_panic_leaves_survivors_draining_the_backlog() {
    // Satellite: a replica crashes *mid-service* while other riders are
    // queued behind it. The crash must cost nothing but a retry — the
    // surviving replica drains the whole backlog, the dead one is
    // quarantined (factory pools cannot respawn), and the pool stays
    // open on the survivor.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 31);
    let ns = cfg.ns;
    let state = ChaosState::new();
    // The very first backend call panics — deterministically exactly
    // one crash, on whichever replica dispatches first.
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_panic_on_call(0);
    let factories = (0..2)
        .map(|_| {
            let program = program.clone();
            let inner: BackendFactory = Box::new(move || {
                BackendKind::Functional { workers: 1 }.build(&MacroConfig::new(2, 2), program)
            });
            wrap_factory(inner, chaos, Arc::clone(&state))
        })
        .collect();
    let pool = ReplicaPool::from_factories(
        ServePolicy::default()
            .with_replicas(2)
            .with_queue(
                QueuePolicy::default()
                    .with_max_batch(8)
                    .with_max_linger(Duration::from_micros(100))
                    .with_max_depth(1024),
            )
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(3)
                    .with_backoff(Duration::from_micros(50)),
            ),
        ns,
        factories,
    )
    .expect("pool comes up");

    // A backlog of 12 requests, submitted before any wait: the panicked
    // micro-batch's riders requeue and everything behind them drains.
    let batches: Vec<TokenBatch> = (0..12).map(|r| client_batch(ns, 1, r)).collect();
    let tickets: Vec<BatchTicket> = batches
        .iter()
        .map(|b| pool.submit(b.clone()).expect("accepted"))
        .collect();
    for (ticket, batch) in tickets.into_iter().zip(&batches) {
        let reply = ticket.wait().expect("the survivor drains the backlog");
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(
                reply.result.tokens[t].outputs,
                program.reference_output(token),
                "bit-identical through the crash"
            );
        }
    }

    // Exactly one replica died and was quarantined; the pool degrades
    // to the survivor instead of closing.
    let health = pool.health();
    assert_eq!(health.healthy, 1, "{health:?}");
    assert_eq!(health.quarantined, 1, "{health:?}");
    assert_eq!(health.restarts, 0, "factory replicas cannot respawn");
    pool.submit(client_batch(ns, 1, 99))
        .expect("one healthy replica keeps the pool open")
        .wait()
        .expect("and serving");
    let stats = pool.shutdown();
    assert!(stats.retries() >= 1, "the crashed micro-batch was retried");
    assert_eq!(stats.pool_health().quarantined, 1);
}

#[test]
fn wrong_width_outputs_are_a_typed_fatal_error_not_corruption() {
    // A chaos fault that breaks the one-observation-per-token contract
    // must surface as a typed fatal error to exactly the riders of the
    // broken micro-batch — never as silently mis-sliced outputs, and
    // never as a retry loop (the fault is in the payload, not timing).
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 13);
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_wrong_width_rate(1.0);
    let recipes = vec![wrap_recipe(
        functional_recipe(&cfg, &program),
        chaos,
        Arc::clone(&state),
    )];
    let pool = ReplicaPool::from_recipes(
        ServePolicy::default().with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO)),
        cfg.ns,
        recipes,
    )
    .expect("pool comes up");
    let err = pool
        .submit(TokenBatch::random(2, 3, 1))
        .expect("accepted")
        .wait()
        .expect_err("a truncated result is an error, not data");
    assert!(
        matches!(err, BackendError::MalformedProgram { .. }),
        "{err:?}"
    );
    assert!(!err.is_transient(), "payload corruption must not retry");
    // The replica survives its backend's bad answer: the pool is still
    // open and healthy (the next batch fails the same way — the rate is
    // 1.0 — but it is *served* and typed, not dropped).
    assert_eq!(pool.health().healthy, 1);
    let again = pool
        .submit(TokenBatch::random(2, 2, 2))
        .expect("still accepting")
        .wait();
    assert!(again.is_err());
    pool.shutdown();
}

#[test]
fn transient_inner_faults_never_poison_the_cached_tier() {
    // Cache *outside* chaos: the cached tier watches its own inner
    // backend fail transiently mid-miss. The pinned purity semantic: a
    // failed micro-batch inserts nothing (no negative caching), the
    // pool's retry re-executes the misses, and once a token is finally
    // computed the cached bytes are the true ones — every later hit is
    // bit-identical, under every CI chaos seed.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 53);
    let ns = cfg.ns;
    let alphabet: Vec<Token> = TokenBatch::random(ns, 6, 4242).into_tokens();
    // max_entries = 3 against a 6-token alphabet: constant churn keeps
    // the flaky inner in play instead of everything hitting warm.
    let store: SharedCacheStore = Arc::new(Mutex::new(CacheStore::new(
        CacheConfig::default().with_max_entries(3),
    )));
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_transient_rate(0.3);
    let recipe: ReplicaFactory = {
        let cfg = cfg.clone();
        let program = program.clone();
        let store = Arc::clone(&store);
        let state = Arc::clone(&state);
        Arc::new(move || {
            let inner = BackendKind::Functional { workers: 1 }.build(&cfg, program.clone())?;
            let flaky = Box::new(ChaosBackend::with_state(inner, chaos, Arc::clone(&state)));
            Ok(Box::new(CachedBackend::with_store(
                flaky,
                &program,
                Arc::clone(&store),
            )) as Box<dyn MacroBackend>)
        })
    };
    let pool = ReplicaPool::from_recipes(
        ServePolicy::default()
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO))
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(8)
                    .with_backoff(Duration::from_micros(50)),
            ),
        ns,
        vec![recipe],
    )
    .expect("pool comes up");

    // Sequential submit/wait: each request is its own micro-batch, and
    // each holds 4 distinct tokens against a 3-entry store — every
    // single one reaches the flaky inner, so the 30% rate draws dozens
    // of times under every CI seed.
    for r in 0..24 {
        let tokens: Vec<Token> = (0..TOKENS_PER_REQUEST)
            .map(|t| alphabet[(r * 5 + t) % alphabet.len()].clone())
            .collect();
        let batch = TokenBatch::new(tokens).expect("non-empty");
        let reply = pool
            .submit(batch.clone())
            .expect("accepted")
            .wait()
            .expect("served through the flaky inner");
        for (obs, token) in reply.result.tokens.iter().zip(batch.tokens()) {
            assert_eq!(
                obs.outputs,
                program.reference_output(token),
                "a retried miss must land the true bytes"
            );
        }
    }
    let stats = pool.shutdown();
    assert!(stats.retries() >= 1, "the 30% transient rate fired");
    assert!(
        stats.cache_misses() > 0 && stats.cache_hits() > 0,
        "{stats}"
    );

    // The store itself stayed coherent through every aborted insert.
    {
        let guard = store.lock().expect("no poisoned lock");
        let s = guard.stats();
        assert_eq!(
            s.insertions,
            s.evictions + s.resident_entries as u64,
            "aborted micro-batches never leaked a phantom entry"
        );
        assert!(s.resident_entries <= 3);
    }

    // Scrub pass with a *clean* inner over the whole alphabet: whatever
    // survived the storm resident must serve the true bytes.
    let mut scrub = CachedBackend::with_store(
        BackendKind::Functional { workers: 1 }
            .build(&cfg, program.clone())
            .expect("clean inner builds"),
        &program,
        Arc::clone(&store),
    );
    let sweep = TokenBatch::new(alphabet.clone()).expect("non-empty");
    let result = scrub.run_batch(&sweep).expect("clean inner never fails");
    for (obs, token) in result.tokens.iter().zip(&alphabet) {
        assert_eq!(
            obs.outputs,
            program.reference_output(token),
            "no poisoned entry survived the storm"
        );
    }
}

#[test]
fn a_forced_crash_respawns_onto_the_same_warm_store() {
    // Chaos *outside* the cache this time: a seeded panic kills a
    // replica mid-service, and the respawned replica re-attaches to the
    // same shared store. The crash must cost a retry, never the cache —
    // post-recovery replies stay bit-identical, the warm entries keep
    // hitting, and the store's accounting balances.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 61);
    let ns = cfg.ns;
    let alphabet: Vec<Token> = TokenBatch::random(ns, 5, 777).into_tokens();
    let store: SharedCacheStore = Arc::new(Mutex::new(CacheStore::new(CacheConfig::default())));
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_panic_on_call(5);
    let cached_recipe: ReplicaFactory = {
        let cfg = cfg.clone();
        let program = program.clone();
        let store = Arc::clone(&store);
        Arc::new(move || {
            let inner = BackendKind::Functional { workers: 1 }.build(&cfg, program.clone())?;
            Ok(Box::new(CachedBackend::with_store(
                inner,
                &program,
                Arc::clone(&store),
            )) as Box<dyn MacroBackend>)
        })
    };
    let recipes = (0..2)
        .map(|_| wrap_recipe(Arc::clone(&cached_recipe), chaos, Arc::clone(&state)))
        .collect();
    let pool = ReplicaPool::from_recipes(
        ServePolicy::default()
            .with_fairness(Fairness::RoundRobin)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO))
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(8)
                    .with_backoff(Duration::from_micros(50))
                    .with_respawn(2),
            ),
        ns,
        recipes,
    )
    .expect("pool comes up");

    // Sequential submit/wait: every request is its own micro-batch, so
    // the shared call counter deterministically reaches the seeded
    // crash at call 5 — mid-stream, with warm entries already resident.
    for r in 0..20 {
        let tokens: Vec<Token> = (0..TOKENS_PER_REQUEST)
            .map(|t| alphabet[(r * 3 + t) % alphabet.len()].clone())
            .collect();
        let batch = TokenBatch::new(tokens).expect("non-empty");
        let reply = pool
            .submit(batch.clone())
            .expect("accepted")
            .wait()
            .expect("served through the crash");
        for (obs, token) in reply.result.tokens.iter().zip(batch.tokens()) {
            assert_eq!(
                obs.outputs,
                program.reference_output(token),
                "bit-identical across the respawn"
            );
        }
    }

    // The crashed replica's riders were already re-served, but the
    // respawn itself may still be in flight — give it a bounded moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut health = pool.health();
    while (health.healthy < 2 || health.restarts < 1) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
        health = pool.health();
    }
    assert_eq!(health.healthy, 2, "the crashed replica is back: {health:?}");
    assert_eq!(health.quarantined, 0);
    assert!(health.restarts >= 1, "the forced crash respawned");

    let stats = pool.shutdown();
    assert!(stats.pool_health().restarts >= 1);
    assert!(
        stats.cache_hits() > 0 && stats.cache_misses() > 0,
        "the store stayed warm across the respawn: {stats}"
    );
    // With 5 distinct tokens ever submitted, the store computed each at
    // most once per racing micro-batch — it never ballooned past the
    // alphabet, crash or not.
    let guard = store.lock().expect("no poisoned lock");
    let s = guard.stats();
    assert!(s.resident_entries <= alphabet.len(), "{s:?}");
    assert_eq!(s.insertions, s.evictions + s.resident_entries as u64);
}

#[test]
fn latency_spikes_delay_but_never_change_results() {
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 5);
    let spike = Duration::from_millis(2);
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_latency_spikes(1.0, spike);
    let recipes = vec![wrap_recipe(
        functional_recipe(&cfg, &program),
        chaos,
        Arc::clone(&state),
    )];
    let pool = ReplicaPool::from_recipes(
        ServePolicy::default().with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO)),
        cfg.ns,
        recipes,
    )
    .expect("pool comes up");
    let batch = TokenBatch::random(2, 4, 9);
    let reply = pool
        .submit(batch.clone())
        .expect("accepted")
        .wait()
        .expect("served, just late");
    assert!(
        reply.service >= spike,
        "the spike shows up in the measured service time: {:?}",
        reply.service
    );
    for (t, token) in batch.tokens().iter().enumerate() {
        assert_eq!(
            reply.result.tokens[t].outputs,
            program.reference_output(token)
        );
    }
    let stats = pool.shutdown();
    assert_eq!(stats.retries(), 0, "latency is not an error");
    assert_eq!(
        stats.pool_health(),
        PoolHealth {
            healthy: 0, // snapshotted after shutdown drained the replica
            quarantined: 0,
            restarts: 0,
        }
    );
}
