//! Correctness contract of the content-addressed result cache tier.
//!
//! The contract under test: a `CachedBackend` in front of **any** inner
//! backend kind serves outputs **bit-identical** to the uncached
//! backend, per token, whatever the store's capacity — hits, intra-batch
//! deduplication and constant eviction churn must all be invisible in
//! the results. The sweep covers functional, RTL and sharded inner
//! kinds (the acceptance criterion's ≥3), each under 8 concurrent
//! submitters through a `ReplicaPool`, a high-duplication stream that
//! forces the dedup path, and a capacity-1 store that evicts on
//! essentially every insert.

use maddpipe::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

const CLIENTS: usize = 8;
const TOKENS_PER_REQUEST: usize = 4;
/// Distinct tokens in the repeated-patch workload — small enough that
/// every client resubmits the same handful, like flat image regions
/// emitting identical im2col windows.
const ALPHABET: usize = 6;

/// The shared token alphabet all clients draw from.
fn alphabet(ns: usize) -> Vec<Token> {
    TokenBatch::random(ns, ALPHABET, 4242).into_tokens()
}

/// The deterministic, duplication-heavy batch client `c` submits as its
/// `r`-th request: tokens picked from the alphabet by a fixed stride.
fn client_batch(alphabet: &[Token], c: usize, r: usize) -> TokenBatch {
    let tokens: Vec<Token> = (0..TOKENS_PER_REQUEST)
        .map(|t| alphabet[(c * 31 + r * 7 + t * 3) % alphabet.len()].clone())
        .collect();
    TokenBatch::new(tokens).expect("non-empty")
}

/// Runs the repeated-patch workload through a cached 2-replica pool and
/// pins every reply bit-identical to the pure LUT reference. Returns
/// the pool's final stats for counter assertions.
fn stress_cached_pool(
    kind: BackendKind,
    requests_per_client: usize,
    ndec: usize,
    ns: usize,
) -> SessionStats {
    let cfg = MacroConfig::new(ndec, ns);
    let program = MacroProgram::random(ndec, ns, 77);
    let tokens = alphabet(ns);
    let pool = Session::builder(cfg)
        .program(program.clone())
        .backend(kind)
        .into_pool(
            ServePolicy::default().with_replicas(2).with_queue(
                QueuePolicy::default()
                    .with_max_batch(32)
                    .with_max_linger(Duration::from_micros(500))
                    .with_max_depth(4096),
            ),
        )
        .expect("pool comes up");
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (pool, tokens, program) = (&pool, &tokens, &program);
            scope.spawn(move || {
                let tickets: Vec<(usize, BatchTicket)> = (0..requests_per_client)
                    .map(|r| {
                        (
                            r,
                            pool.submit(client_batch(tokens, c, r)).expect("accepted"),
                        )
                    })
                    .collect();
                for (r, ticket) in tickets {
                    let reply = ticket.wait().expect("served");
                    let batch = client_batch(tokens, c, r);
                    for (obs, token) in reply.result.tokens.iter().zip(batch.tokens()) {
                        assert_eq!(
                            obs.outputs,
                            program.reference_output(token),
                            "client {c} request {r}: cached tier must be bit-identical"
                        );
                    }
                }
            });
        }
    });
    let stats = pool.shutdown();
    assert_eq!(
        stats.tokens(),
        (CLIENTS * requests_per_client * TOKENS_PER_REQUEST) as u64,
        "every token served exactly once"
    );
    stats
}

#[test]
fn cached_functional_pool_is_bit_identical_with_real_hits() {
    let stats = stress_cached_pool(
        BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        },
        10,
        2,
        2,
    );
    // 320 token instances over a 6-token alphabet: the stores must be
    // doing real work, whichever way the micro-batches coalesced.
    assert!(stats.cache_misses() > 0, "cold start computes");
    assert!(
        stats.cache_hits() + stats.cache_dedup() > 0,
        "repeats must be elided: {stats}"
    );
    assert!(stats.cache_hit_rate().is_some());
    assert!(stats.cache_resident_entries() > 0 && stats.cache_resident_bytes() > 0);
}

#[test]
fn cached_rtl_pool_is_bit_identical() {
    let stats = stress_cached_pool(
        BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
        },
        4,
        2,
        2,
    );
    assert!(stats.cache_misses() > 0 && stats.cache_hits() + stats.cache_dedup() > 0);
}

#[test]
fn cached_sharded_pool_is_bit_identical() {
    // Cache over the whole sharded composition…
    let stats = stress_cached_pool(
        BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Sharded {
                shards: 2,
                inner: ShardKind::Functional { workers: 1 },
            },
        },
        8,
        4,
        2,
    );
    assert!(stats.cache_misses() > 0 && stats.cache_hits() + stats.cache_dedup() > 0);
}

#[test]
fn per_shard_cached_pool_is_bit_identical() {
    // …and caches *inside* the shards: each shard keys on its own
    // sub-program fingerprint, and the sharded backend aggregates the
    // counters into the pool stats.
    let stats = stress_cached_pool(
        BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Cached {
                cache: CacheConfig::default(),
                inner: LeafKind::Functional { workers: 1 },
            },
        },
        8,
        4,
        2,
    );
    assert!(stats.cache_misses() > 0 && stats.cache_hits() + stats.cache_dedup() > 0);
}

#[test]
fn high_duplication_stream_forces_dedup() {
    // A request of identical tokens is one micro-batch (requests are
    // never split), so the inner backend must see the token exactly
    // once and the dedup counter must account for the other seven.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(2, 2, 99);
    let token = TokenBatch::random(2, 1, 5)
        .into_tokens()
        .pop()
        .expect("one token");
    let pool = Session::builder(cfg)
        .program(program.clone())
        .backend(BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        })
        .into_pool(ServePolicy::default())
        .expect("pool comes up");
    let batch = TokenBatch::new(vec![token.clone(); 8]).expect("non-empty");
    let reply = pool
        .submit(batch)
        .expect("accepted")
        .wait()
        .expect("served");
    for obs in &reply.result.tokens {
        assert_eq!(obs.outputs, program.reference_output(&token));
    }
    let stats = pool.shutdown();
    assert_eq!(stats.cache_misses(), 1, "computed exactly once");
    assert_eq!(stats.cache_dedup(), 7, "seven duplicates fanned out");
}

#[test]
fn capacity_one_store_churns_but_stays_bit_identical() {
    // max_entries = 1 with a 6-token alphabet: essentially every insert
    // evicts the previous entry. Outputs must not care.
    let stats = stress_cached_pool(
        BackendKind::Cached {
            cache: CacheConfig::default().with_max_entries(1),
            inner: CachedKind::Functional { workers: 1 },
        },
        10,
        2,
        2,
    );
    assert!(
        stats.cache_evictions() > 0,
        "eviction churn expected: {stats}"
    );
    assert!(
        stats.cache_resident_entries() <= 2,
        "one entry per replica store"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The golden property over arbitrary duplication patterns: for a
    /// random program and a random pick sequence over the alphabet,
    /// running the same stream through cached functional, cached RTL
    /// and cached sharded sessions (tiny stores included) yields
    /// per-token outputs bit-identical to the pure LUT reference.
    #[test]
    fn cached_equals_uncached_across_inner_kinds(
        seed in 0u64..1024,
        picks in proptest::collection::vec(0usize..ALPHABET, 1..16),
        max_entries in 1usize..8,
    ) {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, seed);
        let tokens = alphabet(2);
        let stream: Vec<Token> = picks.iter().map(|&p| tokens[p].clone()).collect();
        let batch = TokenBatch::new(stream.clone()).expect("non-empty");
        let cache = CacheConfig::default().with_max_entries(max_entries);
        let kinds = [
            CachedKind::Functional { workers: 1 },
            CachedKind::Rtl { fidelity: Fidelity::Sequential },
            CachedKind::Sharded { shards: 2, inner: ShardKind::Functional { workers: 1 } },
        ];
        for inner in kinds {
            let mut session = Session::builder(cfg.clone())
                .program(program.clone())
                .backend(BackendKind::Cached { cache, inner })
                .build()
                .expect("program fits");
            // Twice: the first pass exercises misses + dedup, the
            // second replays from a warm (or churning) store.
            for pass in 0..2 {
                let result = session.run(&batch).expect("runs");
                prop_assert_eq!(result.tokens.len(), stream.len());
                for (obs, token) in result.tokens.iter().zip(&stream) {
                    prop_assert_eq!(
                        &obs.outputs,
                        &program.reference_output(token),
                        "kind {:?} pass {}", inner, pass
                    );
                }
            }
            let stats = session.stats().cache();
            prop_assert!(stats.hits + stats.misses > 0);
            prop_assert!(stats.resident_entries <= max_entries);
        }
    }
}
