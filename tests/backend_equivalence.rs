//! Cross-backend golden tests: whatever executes a batch — pure math on
//! one thread or many, the event-driven netlist driven sequentially or
//! with pipelined overlap, or the analytic model — the outputs must be
//! bit-identical for arbitrary programs and tokens. This is the contract
//! that makes the backends interchangeable inside a `Session`.

use maddpipe::prelude::*;
use proptest::prelude::*;

/// Runs `batch` through one backend kind and returns the per-token output
/// vectors.
fn outputs_of(
    cfg: &MacroConfig,
    program: &MacroProgram,
    kind: BackendKind,
    batch: &TokenBatch,
) -> Vec<Vec<i16>> {
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(kind)
        .build()
        .expect("program fits the configuration");
    let result = session.run(batch).expect("batch completes");
    assert_eq!(
        result.tokens.len(),
        batch.len(),
        "one observation per token"
    );
    result.tokens.into_iter().map(|t| t.outputs).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// The golden equivalence: random programs + token batches produce
    /// identical outputs from every backend, including per-token outputs
    /// of the pipelined RTL stream (not just the final token).
    #[test]
    fn all_backends_agree_bit_for_bit(
        ndec in 1usize..=2,
        ns in 1usize..=3,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(ndec, ns, program_seed);
        let batch = TokenBatch::random(ns, 4, token_seed);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| program.reference_output(t))
            .collect();
        for kind in [
            BackendKind::Functional { workers: 1 },
            BackendKind::Functional { workers: 3 },
            BackendKind::Rtl { fidelity: Fidelity::Sequential },
            BackendKind::Rtl { fidelity: Fidelity::Pipelined },
            BackendKind::Analytic,
            // One macro per decoder chain, RTL netlists on the workers —
            // the finest partition still matches the wide reference.
            BackendKind::Sharded {
                shards: ndec,
                inner: ShardKind::Rtl { fidelity: Fidelity::Sequential },
            },
        ] {
            let got = outputs_of(&cfg, &program, kind, &batch);
            prop_assert_eq!(&got, &golden, "{:?}", kind);
        }
    }

    /// The sharded serving contract: a wide program split across ≥2 macro
    /// shards (including widths that do not divide evenly) is pinned
    /// bit-identical, token by token, to the single-macro functional
    /// backend running the unsplit program on the same batch.
    #[test]
    fn sharded_serving_matches_the_single_macro(
        ndec in 2usize..=9,
        ns in 1usize..=3,
        shards in 2usize..=4,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let shards = shards.min(ndec); // never an empty shard; stays ≥ 2
        let cfg = MacroConfig::new(ndec, ns);
        let program = MacroProgram::random(ndec, ns, program_seed);
        let batch = TokenBatch::random(ns, 5, token_seed);
        let single = outputs_of(
            &cfg,
            &program,
            BackendKind::Functional { workers: 1 },
            &batch,
        );
        let sharded = outputs_of(
            &cfg,
            &program,
            BackendKind::Sharded {
                shards,
                inner: ShardKind::Functional { workers: 1 },
            },
            &batch,
        );
        prop_assert_eq!(&sharded, &single, "{} shards over {} chains", shards, ndec);
    }
}

/// Latency observations are backend-appropriate: absent on functional,
/// measured on RTL (pipelined included), modelled on analytic — and the
/// pipelined stream reports a shorter makespan than the sequential one.
#[test]
fn observation_coverage_matches_backend_capabilities() {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 2, 9);
    let batch = TokenBatch::random(2, 5, 4);
    let run = |kind| {
        let mut s = Session::builder(cfg.clone())
            .program(program.clone())
            .backend(kind)
            .build()
            .expect("program fits");
        s.run(&batch).expect("batch completes")
    };
    let fun = run(BackendKind::Functional { workers: 2 });
    assert!(fun
        .tokens
        .iter()
        .all(|t| t.latency.is_none() && t.energy.is_none()));
    assert!(fun.makespan.is_none() && fun.energy.is_none());

    let seq = run(BackendKind::Rtl {
        fidelity: Fidelity::Sequential,
    });
    assert!(seq
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));

    let pip = run(BackendKind::Rtl {
        fidelity: Fidelity::Pipelined,
    });
    assert!(pip.tokens.iter().all(|t| t.latency.is_some()));
    assert!(pip.energy.expect("batch energy").value() > 0.0);
    assert!(
        pip.makespan.expect("measured") < seq.makespan.expect("measured"),
        "pipelining must overlap stages"
    );

    let ana = run(BackendKind::Analytic);
    assert!(ana
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));

    // Sharded over measuring shards: per-token latency is the max over
    // shard slices, energy the sum — both present, like its inners.
    let shd = run(BackendKind::Sharded {
        shards: 2,
        inner: ShardKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
    });
    assert!(shd
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));
    assert!(shd.makespan.is_some());
    assert!(shd.energy.expect("summed over shards").value() > 0.0);
    // The modelled forward latency tracks the measured token latency
    // within the model-vs-RTL contract's tolerance band.
    for (a, m) in ana.tokens.iter().zip(&seq.tokens) {
        let ratio = m.latency.expect("measured") / a.latency.expect("modelled");
        assert!(
            (0.5..=2.0).contains(&ratio),
            "analytic vs RTL token latency ratio {ratio:.2}"
        );
    }
}

/// Malformed batches surface as typed errors through the whole stack — the
/// session API, every backend, and the low-level testbench — instead of
/// the historical `assert!` panics.
#[test]
fn shape_errors_are_typed_everywhere() {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 2, 1);
    let wrong = TokenBatch::random(3, 2, 2); // 3 stages offered, 2 built
    for kind in [
        BackendKind::Functional { workers: 2 },
        BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
        BackendKind::Rtl {
            fidelity: Fidelity::Pipelined,
        },
        BackendKind::Analytic,
        BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Functional { workers: 1 },
        },
    ] {
        let mut session = Session::builder(cfg.clone())
            .program(program.clone())
            .backend(kind)
            .build()
            .expect("program fits");
        assert_eq!(
            session.run(&wrong).unwrap_err(),
            BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            },
            "{kind:?}"
        );
        // The session survives the rejection and still runs good batches.
        let good = TokenBatch::random(2, 1, 3);
        let result = session.run(&good).expect("recovers");
        assert_eq!(
            result.tokens[0].outputs,
            program.reference_output(&good.tokens()[0])
        );
    }
    // Empty batches cannot even be constructed.
    assert_eq!(TokenBatch::new(vec![]), Err(BackendError::EmptyBatch));
}
