//! Cross-backend golden tests: whatever executes a batch — pure math on
//! one thread or many, the event-driven netlist driven sequentially or
//! with pipelined overlap, or the analytic model — the outputs must be
//! bit-identical for arbitrary programs and tokens. This is the contract
//! that makes the backends interchangeable inside a `Session`.

use maddpipe::prelude::*;
use proptest::prelude::*;

/// Runs `batch` through one backend kind and returns the per-token output
/// vectors.
fn outputs_of(
    cfg: &MacroConfig,
    program: &MacroProgram,
    kind: BackendKind,
    batch: &TokenBatch,
) -> Vec<Vec<i16>> {
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(kind)
        .build()
        .expect("program fits the configuration");
    let result = session.run(batch).expect("batch completes");
    assert_eq!(
        result.tokens.len(),
        batch.len(),
        "one observation per token"
    );
    result.tokens.into_iter().map(|t| t.outputs).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// The golden equivalence: random programs + token batches produce
    /// identical outputs from every backend, including per-token outputs
    /// of the pipelined RTL stream (not just the final token).
    #[test]
    fn all_backends_agree_bit_for_bit(
        ndec in 1usize..=2,
        ns in 1usize..=3,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(ndec, ns, program_seed);
        let batch = TokenBatch::random(ns, 4, token_seed);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| program.reference_output(t))
            .collect();
        for kind in [
            BackendKind::Functional { workers: 1 },
            BackendKind::Functional { workers: 3 },
            BackendKind::Rtl { fidelity: Fidelity::Sequential },
            BackendKind::Rtl { fidelity: Fidelity::Pipelined },
            BackendKind::Analytic,
            // One macro per decoder chain, RTL netlists on the workers —
            // the finest partition still matches the wide reference.
            BackendKind::Sharded {
                shards: ndec,
                inner: ShardKind::Rtl { fidelity: Fidelity::Sequential },
            },
        ] {
            let got = outputs_of(&cfg, &program, kind, &batch);
            prop_assert_eq!(&got, &golden, "{:?}", kind);
        }
    }

    /// The sharded serving contract: a wide program split across ≥2 macro
    /// shards (including widths that do not divide evenly) is pinned
    /// bit-identical, token by token, to the single-macro functional
    /// backend running the unsplit program on the same batch.
    #[test]
    fn sharded_serving_matches_the_single_macro(
        ndec in 2usize..=9,
        ns in 1usize..=3,
        shards in 2usize..=4,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let shards = shards.min(ndec); // never an empty shard; stays ≥ 2
        let cfg = MacroConfig::new(ndec, ns);
        let program = MacroProgram::random(ndec, ns, program_seed);
        let batch = TokenBatch::random(ns, 5, token_seed);
        let single = outputs_of(
            &cfg,
            &program,
            BackendKind::Functional { workers: 1 },
            &batch,
        );
        let sharded = outputs_of(
            &cfg,
            &program,
            BackendKind::Sharded {
                shards,
                inner: ShardKind::Functional { workers: 1 },
            },
            &batch,
        );
        prop_assert_eq!(&sharded, &single, "{} shards over {} chains", shards, ndec);
    }

    /// The batched-kernel contract: both lane kernels (portable and
    /// bit-sliced), at every worker count, are bit-identical to the scalar
    /// executable spec — across token counts that are not a multiple of
    /// the 64-token lane width, single tokens, and full-range `i8` inputs
    /// whose accumulations wrap the `i16` extremes.
    #[test]
    fn batched_kernels_match_the_scalar_spec(
        ndec in 1usize..=17,
        ns in 1usize..=4,
        count in 1usize..=130,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        let program = MacroProgram::random(ndec, ns, program_seed);
        let batch = TokenBatch::random(ns, count, token_seed);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| program.reference_output(t))
            .collect();
        // Straight through the struct-of-arrays view…
        let view = program.batched();
        for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
            prop_assert_eq!(
                &view.evaluate_with(batch.tokens(), kernel),
                &golden,
                "core {:?} with {} tokens",
                kernel,
                count
            );
        }
        prop_assert_eq!(&program.reference_output_batch(batch.tokens()), &golden);
        // …and through the threaded backend, which shards lane blocks.
        for kernel in [
            FunctionalKernel::Scalar,
            FunctionalKernel::Portable,
            FunctionalKernel::BitSliced,
        ] {
            for workers in [1usize, 3] {
                let mut backend =
                    FunctionalBackend::with_kernel(program.clone(), workers, kernel);
                let got = backend.run_batch(&batch).expect("batch completes");
                let got: Vec<Vec<i16>> = got.tokens.into_iter().map(|t| t.outputs).collect();
                prop_assert_eq!(
                    &got,
                    &golden,
                    "backend {:?} with {} workers, {} tokens",
                    kernel,
                    workers,
                    count
                );
            }
        }
    }
}

/// Batched evaluation handles the degenerate shapes the serving stack can
/// produce: an empty token list (a `TokenBatch` cannot even be built
/// empty, but the core view must not mind), a single token, and wrapping
/// past both `i16` extremes on a deep hand-built program.
#[test]
fn batched_edge_cases_match_the_scalar_spec() {
    let program = MacroProgram::random(3, 2, 5);
    let view = program.batched();
    // Empty input: no outputs, no panic, on both kernels.
    let empty: Vec<Token> = Vec::new();
    assert!(view.evaluate(&empty).is_empty());
    for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
        assert!(view.evaluate_with(&empty, kernel).is_empty());
    }
    // One token is a 1-wide lane.
    let one = TokenBatch::random(2, 1, 8);
    let golden = program.reference_output(&one.tokens()[0]);
    for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
        assert_eq!(
            view.evaluate_with(one.tokens(), kernel),
            vec![golden.clone()]
        );
    }
    // Max-magnitude accumulation: 600 stages of ±extreme LUT bytes wrap
    // the 16-bit accumulators several times over; the batched kernels
    // must wrap identically to the scalar walk.
    let ns = 600;
    let tree = maddpipe::amm::bdt::BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("valid tree shape")
        .quantize(maddpipe::amm::quant::QuantScale::UNIT);
    let deep = MacroProgram {
        trees: vec![tree; ns],
        luts: vec![vec![[-128i8; K], [127i8; K]]; ns],
    };
    let batch = TokenBatch::random(ns, 70, 21);
    let golden: Vec<Vec<i16>> = batch
        .tokens()
        .iter()
        .map(|t| deep.reference_output(t))
        .collect();
    assert_eq!(golden[0][0], (-128i32 * ns as i32) as i16); // wrapped
    let deep_view = deep.batched();
    for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
        assert_eq!(
            deep_view.evaluate_with(batch.tokens(), kernel),
            golden,
            "{kernel:?}"
        );
    }
}

/// Latency observations are backend-appropriate: absent on functional,
/// measured on RTL (pipelined included), modelled on analytic — and the
/// pipelined stream reports a shorter makespan than the sequential one.
#[test]
fn observation_coverage_matches_backend_capabilities() {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 2, 9);
    let batch = TokenBatch::random(2, 5, 4);
    let run = |kind| {
        let mut s = Session::builder(cfg.clone())
            .program(program.clone())
            .backend(kind)
            .build()
            .expect("program fits");
        s.run(&batch).expect("batch completes")
    };
    let fun = run(BackendKind::Functional { workers: 2 });
    assert!(fun
        .tokens
        .iter()
        .all(|t| t.latency.is_none() && t.energy.is_none()));
    assert!(fun.makespan.is_none() && fun.energy.is_none());

    let seq = run(BackendKind::Rtl {
        fidelity: Fidelity::Sequential,
    });
    assert!(seq
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));

    let pip = run(BackendKind::Rtl {
        fidelity: Fidelity::Pipelined,
    });
    assert!(pip.tokens.iter().all(|t| t.latency.is_some()));
    assert!(pip.energy.expect("batch energy").value() > 0.0);
    assert!(
        pip.makespan.expect("measured") < seq.makespan.expect("measured"),
        "pipelining must overlap stages"
    );

    let ana = run(BackendKind::Analytic);
    assert!(ana
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));

    // Sharded over measuring shards: per-token latency is the max over
    // shard slices, energy the sum — both present, like its inners.
    let shd = run(BackendKind::Sharded {
        shards: 2,
        inner: ShardKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
    });
    assert!(shd
        .tokens
        .iter()
        .all(|t| t.latency.is_some() && t.energy.is_some()));
    assert!(shd.makespan.is_some());
    assert!(shd.energy.expect("summed over shards").value() > 0.0);
    // The modelled forward latency tracks the measured token latency
    // within the model-vs-RTL contract's tolerance band.
    for (a, m) in ana.tokens.iter().zip(&seq.tokens) {
        let ratio = m.latency.expect("measured") / a.latency.expect("modelled");
        assert!(
            (0.5..=2.0).contains(&ratio),
            "analytic vs RTL token latency ratio {ratio:.2}"
        );
    }
}

/// Malformed batches surface as typed errors through the whole stack — the
/// session API, every backend, and the low-level testbench — instead of
/// the historical `assert!` panics.
#[test]
fn shape_errors_are_typed_everywhere() {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 2, 1);
    let wrong = TokenBatch::random(3, 2, 2); // 3 stages offered, 2 built
    for kind in [
        BackendKind::Functional { workers: 2 },
        BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
        BackendKind::Rtl {
            fidelity: Fidelity::Pipelined,
        },
        BackendKind::Analytic,
        BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Functional { workers: 1 },
        },
    ] {
        let mut session = Session::builder(cfg.clone())
            .program(program.clone())
            .backend(kind)
            .build()
            .expect("program fits");
        assert_eq!(
            session.run(&wrong).unwrap_err(),
            BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            },
            "{kind:?}"
        );
        // The session survives the rejection and still runs good batches.
        let good = TokenBatch::random(2, 1, 3);
        let result = session.run(&good).expect("recovers");
        assert_eq!(
            result.tokens[0].outputs,
            program.reference_output(&good.tokens()[0])
        );
    }
    // Empty batches cannot even be constructed.
    assert_eq!(TokenBatch::new(vec![]), Err(BackendError::EmptyBatch));
}
