//! Consistency between the two views of the machine: the closed-form PPA
//! model (which regenerates the paper's tables) and the event-driven
//! netlist (which actually computes). They share the same calibration
//! constants, so their timing must agree — this is the guard that keeps
//! the fast model honest.

use maddpipe::prelude::*;

/// Single-block latency: analytic vs measured on the netlist, across
/// supplies and corners. The RTL carries extra gate stages (inter-level
/// inverters, strobe margins) the analytic model folds into its control
/// constant, so agreement within 25 % is the contract.
#[test]
fn block_latency_agreement_across_operating_points() {
    for (vdd, corner) in [
        (0.8, Corner::Ttg),
        (0.5, Corner::Ttg),
        (0.8, Corner::Ssg),
        (0.8, Corner::Ffg),
    ] {
        let cfg = MacroConfig::new(2, 1).with_op(OperatingPoint::new(Volts(vdd), corner));
        let model = MacroModel::new(cfg.clone());
        // Worst case: every comparator walks all 8 bits (x == thresholds).
        let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
            .expect("tree")
            .quantize(QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[9i8; 16], [-9i8; 16]]],
        };
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let worst = rtl
            .run_token(&[[0i8; SUBVECTOR_LEN]])
            .expect("token completes");
        // The RTL token latency includes the output-register strobe and
        // the full return-to-idle; compare against the model's block
        // forward latency plus its RCA settle allowance.
        let predicted = model.block_latency_worst().total()
            + cfg.calibration.rca_settle
                * maddpipe::tech::Technology::n22()
                    .delay_scale(cfg.op, maddpipe::tech::DriveKind::Complementary);
        let measured = worst.latency.to_seconds();
        let ratio = measured / predicted;
        assert!(
            (0.75..=1.60).contains(&ratio),
            "{vdd} V {corner}: RTL {} vs model {} (ratio {ratio:.2})",
            worst.latency,
            predicted
        );
    }
}

/// Data dependence: the RTL latency spread between decisive and boundary
/// inputs must match the model's best/worst encoder delta within 30 %.
#[test]
fn data_dependent_spread_agreement() {
    let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let model = MacroModel::new(cfg.clone());
    let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("tree")
        .quantize(QuantScale::UNIT);
    let program = MacroProgram {
        trees: vec![tree],
        luts: vec![vec![[1i8; 16]]],
    };
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    let fast = rtl.run_token(&[[100i8; SUBVECTOR_LEN]]).expect("token");
    let slow = rtl.run_token(&[[0i8; SUBVECTOR_LEN]]).expect("token");
    let measured_delta = slow.latency.to_seconds() - fast.latency.to_seconds();
    let predicted_delta = model.block_latency_worst().encoder - model.block_latency_best().encoder;
    let ratio = measured_delta / predicted_delta;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "spread: RTL {:.2} ns vs model {:.2} ns",
        measured_delta.as_nanos(),
        predicted_delta.as_nanos()
    );
}

/// Both views agree that the decoder dominates energy (Fig. 7 A).
#[test]
fn decoder_energy_dominance_in_both_views() {
    let cfg = MacroConfig::new(4, 2).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let analytic = MacroModel::new(cfg.clone()).block_energy();
    assert!(analytic.decoder_fraction() > 0.9);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 12);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    rtl.simulator_mut().reset_energy();
    for seed in 0..4u64 {
        let token: Vec<[i8; SUBVECTOR_LEN]> = {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..cfg.ns)
                .map(|_| {
                    let mut x = [0i8; SUBVECTOR_LEN];
                    for v in x.iter_mut() {
                        *v = rng.gen_range(-128i32..=127) as i8;
                    }
                    x
                })
                .collect()
        };
        rtl.run_token(&token).expect("token completes");
    }
    let report = rtl.simulator().energy_report();
    let decoder = report.fraction("decoder");
    let encoder = report.fraction("encoder");
    assert!(
        decoder > 0.5 && decoder > 5.0 * encoder,
        "RTL decoder {decoder:.2} vs encoder {encoder:.2}\n{report}"
    );
}

/// The model's corner behaviour matches the RTL's: slow silicon slows the
/// measured token, fast silicon speeds it up, in the predicted direction.
#[test]
fn corner_ordering_agreement() {
    let mut latencies = Vec::new();
    for corner in [Corner::Ssg, Corner::Ttg, Corner::Ffg] {
        let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.8), corner));
        let program = MacroProgram::random(1, 1, 3);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let r = rtl.run_token(&[[5i8; SUBVECTOR_LEN]]).expect("token");
        latencies.push(r.latency);
    }
    assert!(
        latencies[0] > latencies[1] && latencies[1] > latencies[2],
        "SSG {} > TTG {} > FFG {}",
        latencies[0],
        latencies[1],
        latencies[2]
    );
}
