//! Consistency between the views of the machine: the closed-form PPA
//! model (which regenerates the paper's tables) and the event-driven
//! netlist (which actually computes). They share the same calibration
//! constants, so their timing must agree — this is the guard that keeps
//! the fast model honest. Both sides are driven through the unified
//! `Session` API, which also lets the analytic backend's data-dependent
//! token latencies be checked against RTL measurements directly.

use maddpipe::prelude::*;

/// A one-token batch session on the given backend.
fn run_one(
    cfg: &MacroConfig,
    program: &MacroProgram,
    kind: BackendKind,
    token: Token,
) -> TokenObservation {
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(kind)
        .build()
        .expect("program fits");
    let result = session
        .run(&TokenBatch::single(token))
        .expect("batch completes");
    result.tokens.into_iter().next().expect("one token")
}

/// Single-block latency: analytic vs measured on the netlist, across
/// supplies and corners. The RTL carries extra gate stages (inter-level
/// inverters, strobe margins) the analytic model folds into its control
/// constant, so agreement within 25 % is the contract.
#[test]
fn block_latency_agreement_across_operating_points() {
    for (vdd, corner) in [
        (0.8, Corner::Ttg),
        (0.5, Corner::Ttg),
        (0.8, Corner::Ssg),
        (0.8, Corner::Ffg),
    ] {
        let cfg = MacroConfig::new(2, 1).with_op(OperatingPoint::new(Volts(vdd), corner));
        let model = MacroModel::new(cfg.clone());
        // Worst case: every comparator walks all 8 bits (x == thresholds).
        let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
            .expect("tree")
            .quantize(QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[9i8; 16], [-9i8; 16]]],
        };
        let worst = run_one(
            &cfg,
            &program,
            BackendKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
            vec![[0i8; SUBVECTOR_LEN]],
        );
        // The RTL token latency includes the output-register strobe and
        // the full return-to-idle; compare against the model's block
        // forward latency plus its RCA settle allowance.
        let predicted = model.block_latency_worst().total()
            + cfg.calibration.rca_settle
                * maddpipe::tech::Technology::n22()
                    .delay_scale(cfg.op, maddpipe::tech::DriveKind::Complementary);
        let measured = worst.latency.expect("RTL measures latency");
        let ratio = measured / predicted;
        assert!(
            (0.75..=1.60).contains(&ratio),
            "{vdd} V {corner}: RTL {measured} vs model {predicted} (ratio {ratio:.2})"
        );
    }
}

/// Data dependence: the RTL latency spread between decisive and boundary
/// inputs must match the model's best/worst encoder delta within 30 % —
/// and the analytic *backend*, which derives per-token ripple depths from
/// the same inputs, must land its spread in the same window.
#[test]
fn data_dependent_spread_agreement() {
    let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let model = MacroModel::new(cfg.clone());
    let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("tree")
        .quantize(QuantScale::UNIT);
    let program = MacroProgram {
        trees: vec![tree],
        luts: vec![vec![[1i8; 16]]],
    };
    let rtl_kind = BackendKind::Rtl {
        fidelity: Fidelity::Sequential,
    };
    let fast_tok: Token = vec![[100i8; SUBVECTOR_LEN]];
    let slow_tok: Token = vec![[0i8; SUBVECTOR_LEN]];
    let fast = run_one(&cfg, &program, rtl_kind, fast_tok);
    let slow = run_one(&cfg, &program, rtl_kind, slow_tok.clone());
    let measured_delta = slow.latency.expect("measured") - fast.latency.expect("measured");
    let predicted_delta = model.block_latency_worst().encoder - model.block_latency_best().encoder;
    let ratio = measured_delta / predicted_delta;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "spread: RTL {:.2} ns vs model {:.2} ns",
        measured_delta.as_nanos(),
        predicted_delta.as_nanos()
    );
    // The analytic backend reproduces the envelope exactly: its per-token
    // latencies are built from each token's actual ripple depths. A
    // negative input differs from the zero thresholds at the offset-binary
    // MSB, so every comparator decides at depth 1 (the true best case);
    // the boundary input walks all 8 bits.
    let a_fast = run_one(
        &cfg,
        &program,
        BackendKind::Analytic,
        vec![[-100i8; SUBVECTOR_LEN]],
    );
    let a_slow = run_one(&cfg, &program, BackendKind::Analytic, slow_tok);
    let analytic_delta = a_slow.latency.expect("modelled") - a_fast.latency.expect("modelled");
    assert_eq!(
        analytic_delta, predicted_delta,
        "decisive vs boundary inputs span the full encoder envelope"
    );
}

/// Both views agree that the decoder dominates energy (Fig. 7 A).
#[test]
fn decoder_energy_dominance_in_both_views() {
    let cfg = MacroConfig::new(4, 2).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let analytic = MacroModel::new(cfg.clone()).block_energy();
    assert!(analytic.decoder_fraction() > 0.9);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 12);
    let mut session = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        })
        .build()
        .expect("program fits");
    // Meter the tokens alone, not the power-up transient.
    session
        .rtl_mut()
        .expect("rtl backend")
        .simulator_mut()
        .reset_energy();
    session
        .run(&TokenBatch::random(2, 4, 0))
        .expect("batch completes");
    let report = session
        .rtl()
        .expect("rtl backend")
        .simulator()
        .energy_report();
    let decoder = report.fraction("decoder");
    let encoder = report.fraction("encoder");
    assert!(
        decoder > 0.5 && decoder > 5.0 * encoder,
        "RTL decoder {decoder:.2} vs encoder {encoder:.2}\n{report}"
    );
}

/// The model's corner behaviour matches the RTL's: slow silicon slows the
/// measured token, fast silicon speeds it up, in the predicted direction.
#[test]
fn corner_ordering_agreement() {
    let mut latencies = Vec::new();
    for corner in [Corner::Ssg, Corner::Ttg, Corner::Ffg] {
        let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.8), corner));
        let program = MacroProgram::random(1, 1, 3);
        let obs = run_one(
            &cfg,
            &program,
            BackendKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
            vec![[5i8; SUBVECTOR_LEN]],
        );
        latencies.push(obs.latency.expect("RTL measures latency"));
    }
    assert!(
        latencies[0] > latencies[1] && latencies[1] > latencies[2],
        "SSG {} > TTG {} > FFG {}",
        latencies[0],
        latencies[1],
        latencies[2]
    );
}
