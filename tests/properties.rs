//! Workspace-wide property tests: invariants that must hold for arbitrary
//! inputs, spanning crate boundaries.

use maddpipe::core::adder::accumulate_wrapping;
use maddpipe::core::dlc::{ripple_depth, to_offset_binary};
use maddpipe::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Offset-binary encoding is the unique order-preserving bijection the
    /// DLC relies on: signed comparison ⇔ unsigned comparison of codes.
    #[test]
    fn offset_binary_order_isomorphism(a in any::<i8>(), b in any::<i8>()) {
        prop_assert_eq!(a >= b, to_offset_binary(a) >= to_offset_binary(b));
        prop_assert_eq!(a == b, to_offset_binary(a) == to_offset_binary(b));
    }

    /// The ripple depth is symmetric, bounded, and exactly 8 for equal
    /// operands (Fig. 4 E).
    #[test]
    fn ripple_depth_properties(x in any::<u8>(), t in any::<u8>()) {
        let d = ripple_depth(x, t);
        prop_assert!((1..=8).contains(&d));
        prop_assert_eq!(d, ripple_depth(t, x));
        if x == t {
            prop_assert_eq!(d, 8);
        } else {
            // The depth identifies the first differing bit: flipping the
            // MSB of *both* operands leaves it unchanged whenever the
            // decision is made below the MSB.
            if d > 1 {
                prop_assert_eq!(d, ripple_depth(x ^ 0x80, t ^ 0x80));
            }
        }
    }

    /// Wrapping byte accumulation is order-independent (the hardware sums
    /// across pipeline stages in a fixed order, the reference in another —
    /// they must agree regardless).
    #[test]
    fn accumulation_is_commutative(mut bytes in proptest::collection::vec(any::<i8>(), 0..64)) {
        let forward = accumulate_wrapping(&bytes);
        bytes.reverse();
        prop_assert_eq!(forward, accumulate_wrapping(&bytes));
    }

    /// Quantisation is monotone and bounded; threshold (ceiling)
    /// quantisation preserves decisions for on-lattice values.
    #[test]
    fn quantization_properties(scale in 0.001f32..10.0, t in -100.0f32..100.0, k in -127i32..=127) {
        let q = QuantScale::new(scale);
        let tq = q.quantize_threshold(t);
        // The defining lattice property: k·scale ≥ t  ⇔  k ≥ ⌈t/scale⌉
        // (when the true ceiling is representable in i8).
        let true_ceil = (t / scale).ceil();
        if (-127.0..=127.0).contains(&true_ceil) {
            let lattice_value = k as f32 * scale;
            prop_assert_eq!(
                lattice_value >= t,
                k >= tq as i32,
                "scale {} t {} k {}", scale, t, k
            );
        }
    }

    /// BDT encoding always lands in range and is stable under re-encoding.
    #[test]
    fn bdt_encode_in_range(
        seed in 0u64..5000,
        x in proptest::collection::vec(-100.0f32..100.0, 9),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dims: Vec<usize> = (0..4).map(|_| rng.gen_range(0..9)).collect();
        let thresholds: Vec<f32> = (0..15).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let enc = BdtEncoder::from_parts(dims, thresholds).expect("valid");
        let c1 = enc.encode_one(&x);
        prop_assert!(c1 < 16);
        prop_assert_eq!(c1, enc.encode_one(&x));
        // The quantised tree agrees off quantisation boundaries and always
        // stays in range.
        let q = enc.quantize(QuantScale::new(1.0));
        let xq: Vec<i8> = x.iter().map(|&v| QuantScale::new(1.0).quantize(v)).collect();
        prop_assert!(q.encode_one(&xq) < 16);
    }

    /// The analytic model is physically sane everywhere in the design
    /// space: positive latency/energy/area, monotone in VDD.
    #[test]
    fn ppa_model_sanity(
        ndec in 1usize..=32,
        ns in 1usize..=32,
        vdd_centi in 50u32..=100,
    ) {
        let vdd = vdd_centi as f64 / 100.0;
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(vdd), Corner::Ttg));
        let r = MacroModel::new(cfg).evaluate();
        prop_assert!(r.latency_best.total().value() > 0.0);
        prop_assert!(r.latency_worst.total() > r.latency_best.total());
        prop_assert!(r.energy_per_op.value() > 0.0);
        prop_assert!(r.area.total().value() > 0.0);
        prop_assert!(r.tops_min > 0.0 && r.tops_max >= r.tops_min);
        prop_assert!(r.block_energy.decoder_fraction() > 0.5,
            "decoder must dominate at ndec {}", ndec);
    }

    /// INT8 quantisation round-trips within half a step, clamps at the
    /// rails, and is monotone — for arbitrary scales and inputs.
    #[test]
    fn quant_round_trip_and_monotonicity(
        scale in 0.01f32..5.0,
        a in -500.0f32..500.0,
        b in -500.0f32..500.0,
    ) {
        let s = QuantScale::new(scale);
        for &x in &[a, b] {
            let q = s.quantize(x);
            prop_assert!((-127..=127).contains(&i32::from(q)));
            // Round trip lands within half a step of the rail-clamped input.
            let clamped = x.clamp(-127.0 * scale, 127.0 * scale);
            let err = (s.dequantize(q) - clamped).abs();
            prop_assert!(
                err <= scale / 2.0 + scale * 1e-3,
                "x {} scale {} err {}", x, scale, err
            );
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.quantize(lo) <= s.quantize(hi), "quantisation is monotone");
        // A fitted scale round-trips every one of its own samples.
        let xs = [a, b, 0.5 * a, -b];
        let f = QuantScale::fit(&xs);
        for &x in &xs {
            let err = (f.dequantize(f.quantize(x)) - x).abs();
            prop_assert!(err <= f.scale() / 2.0 + 1e-3, "fit: x {} err {}", x, err);
        }
    }

    /// BDT bucket indices stay inside the LUT address space for arbitrary
    /// trees and inputs — float tree and quantised (hardware-form) tree.
    #[test]
    fn bdt_bucket_indices_in_bounds(
        levels in 1usize..=4,
        seed in 0u64..10_000,
        x in proptest::collection::vec(-100.0f32..100.0, 9),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dims: Vec<usize> = (0..levels).map(|_| rng.gen_range(0..9)).collect();
        let thresholds: Vec<f32> = (0..(1usize << levels) - 1)
            .map(|_| rng.gen_range(-80.0..80.0))
            .collect();
        let enc = BdtEncoder::from_parts(dims, thresholds).expect("valid parts");
        let leaves = enc.num_leaves();
        prop_assert_eq!(leaves, 1usize << levels);
        prop_assert!(enc.encode_one(&x) < leaves);
        // The deployed integer tree obeys the same bound, and its decision
        // path visits exactly one comparator per level.
        let qscale = QuantScale::new(0.75);
        let q = enc.quantize(qscale);
        let xq: Vec<i8> = x.iter().map(|&v| qscale.quantize(v)).collect();
        prop_assert!(q.encode_one(&xq) < leaves);
        prop_assert_eq!(q.decision_path(&xq).len(), levels);
    }

    /// Every tree of a random `MacroProgram` addresses the 16-entry
    /// decoder LUT in bounds for arbitrary INT8 tokens — the amm ↔ core
    /// boundary where a stray bucket index would read outside the SRAM.
    #[test]
    fn macro_program_codes_address_the_lut(
        ndec in 1usize..=4,
        ns in 1usize..=4,
        program_seed in 0u64..1000,
        token_seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let program = MacroProgram::random(ndec, ns, program_seed);
        prop_assert_eq!(program.trees.len(), ns);
        prop_assert_eq!(program.luts.len(), ns);
        let mut rng = StdRng::seed_from_u64(token_seed);
        for _ in 0..4 {
            let token: Vec<[i8; SUBVECTOR_LEN]> = (0..ns)
                .map(|_| {
                    let mut x = [0i8; SUBVECTOR_LEN];
                    for v in x.iter_mut() {
                        *v = rng.gen_range(-128i32..=127) as i8;
                    }
                    x
                })
                .collect();
            for (s, tree) in program.trees.iter().enumerate() {
                prop_assert_eq!(program.luts[s].len(), ndec);
                let code = tree.encode_one(&token[s]);
                prop_assert!(code < 16, "subspace {} code {}", s, code);
            }
            prop_assert_eq!(program.reference_output(&token).len(), ndec);
        }
    }

    /// Conv mapping conserves operations exactly: issued × utilisation =
    /// useful, for arbitrary layer and macro shapes.
    #[test]
    fn conv_mapping_conserves_ops(
        c_in in 1usize..128,
        c_out in 1usize..128,
        hw in 1usize..16,
        ndec in 1usize..=32,
        ns in 1usize..=32,
    ) {
        use maddpipe::core::mapping::{ConvMapping, ConvShape};
        let shape = ConvShape::new(c_in, c_out, hw, hw);
        let cfg = MacroConfig::new(ndec, ns);
        let m = ConvMapping::new(shape, &cfg);
        prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-12);
        let issued = (m.tokens * cfg.ops_per_token()) as f64;
        let useful = issued * m.utilization;
        prop_assert!((useful - shape.ops() as f64).abs() < 1e-6 * issued.max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The deployed integer decode path never disagrees with the wrapping
    /// i16 semantics whatever the LUT contents (including saturating
    /// values), for small but complete macros.
    #[test]
    fn int_decode_paths_agree(seed in 0u64..10_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let program = MacroProgram::random(2, 2, seed);
        let token: Vec<[i8; SUBVECTOR_LEN]> = (0..2).map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() { *v = rng.gen_range(-128i32..=127) as i8; }
            x
        }).collect();
        // Reference semantics vs explicit per-chain accumulation.
        let reference = program.reference_output(&token);
        for (j, &r) in reference.iter().enumerate() {
            let bytes: Vec<i8> = token.iter().enumerate().map(|(s, x)| {
                program.luts[s][j][program.trees[s].encode_one(x)]
            }).collect();
            prop_assert_eq!(r, accumulate_wrapping(&bytes));
        }
    }
}
