//! Workspace-wide property tests: invariants that must hold for arbitrary
//! inputs, spanning crate boundaries.

use maddpipe::core::adder::accumulate_wrapping;
use maddpipe::core::dlc::{ripple_depth, to_offset_binary};
use maddpipe::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Offset-binary encoding is the unique order-preserving bijection the
    /// DLC relies on: signed comparison ⇔ unsigned comparison of codes.
    #[test]
    fn offset_binary_order_isomorphism(a in any::<i8>(), b in any::<i8>()) {
        prop_assert_eq!(a >= b, to_offset_binary(a) >= to_offset_binary(b));
        prop_assert_eq!(a == b, to_offset_binary(a) == to_offset_binary(b));
    }

    /// The ripple depth is symmetric, bounded, and exactly 8 for equal
    /// operands (Fig. 4 E).
    #[test]
    fn ripple_depth_properties(x in any::<u8>(), t in any::<u8>()) {
        let d = ripple_depth(x, t);
        prop_assert!((1..=8).contains(&d));
        prop_assert_eq!(d, ripple_depth(t, x));
        if x == t {
            prop_assert_eq!(d, 8);
        } else {
            // The depth identifies the first differing bit: flipping the
            // MSB of *both* operands leaves it unchanged whenever the
            // decision is made below the MSB.
            if d > 1 {
                prop_assert_eq!(d, ripple_depth(x ^ 0x80, t ^ 0x80));
            }
        }
    }

    /// Wrapping byte accumulation is order-independent (the hardware sums
    /// across pipeline stages in a fixed order, the reference in another —
    /// they must agree regardless).
    #[test]
    fn accumulation_is_commutative(mut bytes in proptest::collection::vec(any::<i8>(), 0..64)) {
        let forward = accumulate_wrapping(&bytes);
        bytes.reverse();
        prop_assert_eq!(forward, accumulate_wrapping(&bytes));
    }

    /// Quantisation is monotone and bounded; threshold (ceiling)
    /// quantisation preserves decisions for on-lattice values.
    #[test]
    fn quantization_properties(scale in 0.001f32..10.0, t in -100.0f32..100.0, k in -127i32..=127) {
        let q = QuantScale::new(scale);
        let tq = q.quantize_threshold(t);
        // The defining lattice property: k·scale ≥ t  ⇔  k ≥ ⌈t/scale⌉
        // (when the true ceiling is representable in i8).
        let true_ceil = (t / scale).ceil();
        if (-127.0..=127.0).contains(&true_ceil) {
            let lattice_value = k as f32 * scale;
            prop_assert_eq!(
                lattice_value >= t,
                k >= tq as i32,
                "scale {} t {} k {}", scale, t, k
            );
        }
    }

    /// BDT encoding always lands in range and is stable under re-encoding.
    #[test]
    fn bdt_encode_in_range(
        seed in 0u64..5000,
        x in proptest::collection::vec(-100.0f32..100.0, 9),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dims: Vec<usize> = (0..4).map(|_| rng.gen_range(0..9)).collect();
        let thresholds: Vec<f32> = (0..15).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let enc = BdtEncoder::from_parts(dims, thresholds).expect("valid");
        let c1 = enc.encode_one(&x);
        prop_assert!(c1 < 16);
        prop_assert_eq!(c1, enc.encode_one(&x));
        // The quantised tree agrees off quantisation boundaries and always
        // stays in range.
        let q = enc.quantize(QuantScale::new(1.0));
        let xq: Vec<i8> = x.iter().map(|&v| QuantScale::new(1.0).quantize(v)).collect();
        prop_assert!(q.encode_one(&xq) < 16);
    }

    /// The analytic model is physically sane everywhere in the design
    /// space: positive latency/energy/area, monotone in VDD.
    #[test]
    fn ppa_model_sanity(
        ndec in 1usize..=32,
        ns in 1usize..=32,
        vdd_centi in 50u32..=100,
    ) {
        let vdd = vdd_centi as f64 / 100.0;
        let cfg = MacroConfig::new(ndec, ns)
            .with_op(OperatingPoint::new(Volts(vdd), Corner::Ttg));
        let r = MacroModel::new(cfg).evaluate();
        prop_assert!(r.latency_best.total().value() > 0.0);
        prop_assert!(r.latency_worst.total() > r.latency_best.total());
        prop_assert!(r.energy_per_op.value() > 0.0);
        prop_assert!(r.area.total().value() > 0.0);
        prop_assert!(r.tops_min > 0.0 && r.tops_max >= r.tops_min);
        prop_assert!(r.block_energy.decoder_fraction() > 0.5,
            "decoder must dominate at ndec {}", ndec);
    }

    /// Conv mapping conserves operations exactly: issued × utilisation =
    /// useful, for arbitrary layer and macro shapes.
    #[test]
    fn conv_mapping_conserves_ops(
        c_in in 1usize..128,
        c_out in 1usize..128,
        hw in 1usize..16,
        ndec in 1usize..=32,
        ns in 1usize..=32,
    ) {
        use maddpipe::core::mapping::{ConvMapping, ConvShape};
        let shape = ConvShape::new(c_in, c_out, hw, hw);
        let cfg = MacroConfig::new(ndec, ns);
        let m = ConvMapping::new(shape, &cfg);
        prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-12);
        let issued = (m.tokens * cfg.ops_per_token()) as f64;
        let useful = issued * m.utilization;
        prop_assert!((useful - shape.ops() as f64).abs() < 1e-6 * issued.max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The deployed integer decode path never disagrees with the wrapping
    /// i16 semantics whatever the LUT contents (including saturating
    /// values), for small but complete macros.
    #[test]
    fn int_decode_paths_agree(seed in 0u64..10_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let program = MacroProgram::random(2, 2, seed);
        let token: Vec<[i8; SUBVECTOR_LEN]> = (0..2).map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() { *v = rng.gen_range(-128i32..=127) as i8; }
            x
        }).collect();
        // Reference semantics vs explicit per-chain accumulation.
        let reference = program.reference_output(&token);
        for (j, &r) in reference.iter().enumerate() {
            let bytes: Vec<i8> = token.iter().enumerate().map(|(s, x)| {
                program.luts[s][j][program.trees[s].encode_one(x)]
            }).collect();
            prop_assert_eq!(r, accumulate_wrapping(&bytes));
        }
    }
}
