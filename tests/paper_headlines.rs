//! The paper's headline claims, asserted end to end through the public
//! facade — the tests a reviewer would run first.

use maddpipe::prelude::*;

/// Abstract: "2.5× higher energy efficiency (174 TOPS/W) and 5× higher
/// area efficiency (2.01 TOPS/mm²) ... compared to the conventional
/// accelerator [21]".
#[test]
fn abstract_headline_ratios() {
    let proposed = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    let analog = AnalogDtcPpa::published();

    assert!(
        (proposed.tops_per_watt - 174.0).abs() < 8.0,
        "headline energy efficiency: {}",
        proposed.tops_per_watt
    );
    assert!(
        (proposed.tops_per_mm2 - 2.01).abs() < 0.15,
        "headline area efficiency: {}",
        proposed.tops_per_mm2
    );
    let energy_ratio = proposed.tops_per_watt / analog.tops_per_watt();
    assert!(
        (energy_ratio - 2.5).abs() < 0.2,
        "energy ratio vs [21]: {energy_ratio}"
    );
    let area_ratio = proposed.tops_per_mm2 / analog.area_efficiency_scaled_to(22.0);
    assert!(
        (area_ratio - 5.0).abs() < 0.5,
        "area ratio vs [21]: {area_ratio}"
    );
}

/// §IV: "Compared to [22], the proposed circuit achieves 4.0× the energy
/// efficiency" at 0.5 V, and beats it on both axes at 0.8 V.
#[test]
fn stella_nera_comparison() {
    let stella = StellaNeraPpa::published();
    let p05 = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    let ratio = p05.tops_per_watt / stella.tops_per_watt();
    assert!((ratio - 4.0).abs() < 0.4, "energy ratio vs [22]: {ratio}");
    // At 0.5 V the paper concedes ~25 % lower area efficiency than [22].
    assert!(p05.tops_per_mm2 < stella.area_efficiency_scaled_to(22.0));
    let p08 = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg)),
    )
    .evaluate();
    assert!(p08.tops_per_watt > stella.tops_per_watt());
    assert!(p08.tops_per_mm2 > stella.area_efficiency_scaled_to(22.0));
}

/// §IV: the macro is "0.20 mm² including 64 kb SRAM" and runs at
/// "31.2–56.2 MHz" at 0.5 V / "144–353 MHz" at 0.8 V.
#[test]
fn physical_parameters() {
    let cfg = MacroConfig::paper_flagship();
    assert_eq!(cfg.sram_bits(), 64 * 1024);
    let r05 = MacroModel::new(
        cfg.clone()
            .with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    assert!((r05.area.total().as_mm2() - 0.20).abs() < 0.01);
    assert!((r05.freq_min.as_mega_hertz() - 31.2).abs() < 2.0);
    assert!((r05.freq_max.as_mega_hertz() - 56.2).abs() < 3.0);
    let r08 = MacroModel::new(cfg.with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg))).evaluate();
    // The paper's 0.8 V spread (144–353 MHz) is wider than pure
    // alpha-power scaling predicts; the model lands inside it.
    assert!(r08.freq_min.as_mega_hertz() > 144.0 - 10.0);
    assert!(r08.freq_max.as_mega_hertz() < 353.0 + 10.0);
}

/// §III-C / §IV: per-column RCD prevents setup violations across PVT
/// where a replica scheme degrades — asserted on both the Monte-Carlo
/// study and the actual netlist's violation log.
#[test]
fn pvt_robustness_claims() {
    // Monte-Carlo: replica fails under variability, RCD never does.
    let study = ReplicaStudy::new(0.08, 1.1, 128).run(5_000, 3);
    assert!(study.replica_failure_rate > 0.05);
    assert_eq!(study.rcd_failure_rate, 0.0);
    // Netlist: worst and best corners with heavy local mismatch — zero
    // violations, outputs still exact.
    for (vdd, corner) in [(0.5, Corner::Ssg), (1.0, Corner::Ffg)] {
        let cfg = MacroConfig::new(2, 2)
            .with_op(OperatingPoint::new(Volts(vdd), corner))
            .with_mismatch(Mismatch::new(0.05, 77));
        let program = MacroProgram::random(2, 2, 8);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let token = vec![[17i8; SUBVECTOR_LEN]; 2];
        let result = rtl.run_token(&token).expect("token completes");
        assert_eq!(result.outputs, program.reference_output(&token));
        assert!(
            rtl.simulator().violations().is_empty(),
            "{vdd} V {corner}: {:?}",
            rtl.simulator().violations()
        );
    }
}

/// Table I's recommendation: Ndec = 16 is the knee — efficiency gains
/// past it are marginal.
#[test]
fn ndec_16_is_the_knee() {
    let eff = |ndec: usize| {
        MacroModel::new(
            MacroConfig::new(ndec, 32).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
        )
        .evaluate()
        .tops_per_watt
    };
    let gain_8_16 = eff(16) / eff(8);
    let gain_16_32 = eff(32) / eff(16);
    assert!(gain_16_32 < gain_8_16);
    assert!(gain_16_32 < 1.02, "past the knee the gain is ≤2%");
}
