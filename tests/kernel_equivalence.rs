//! Golden equivalence of the optimized event kernel against the naive
//! reference kernel.
//!
//! The production `Simulator` earns its throughput with a bucketed event
//! queue, delta batching with an epoch-stamped dirty set, compiled fanout
//! tables and an allocation-free evaluation path. The
//! `ReferenceSimulator` implements the same delta-cycle semantics with
//! none of those tricks. For random netlists and random stimulus, the two
//! must agree on every final net value, the quiescence time, and the
//! total switching energy — bit for bit.

use maddpipe::sim::cells::{CElement, PulseGen};
use maddpipe::sim::prelude::*;
use maddpipe::sim::reference::ReferenceSimulator;
use proptest::prelude::*;

/// One step of the netlist-growing recipe. Indices are taken modulo the
/// current net-pool size, so any `usize` is valid.
#[derive(Debug, Clone)]
enum GateOp {
    Inv(usize),
    Buf(usize),
    Nand2(usize, usize),
    Nor2(usize, usize),
    And2(usize, usize),
    Or2(usize, usize),
    Xor2(usize, usize),
    Nand3(usize, usize, usize),
    Mux2(usize, usize, usize),
    FullAdder(usize, usize, usize),
    Latch(usize, usize),
    CElement(usize, usize),
    DelayLine(usize, u16),
    PulseGen(usize, u16, u16),
}

fn gate_op() -> impl Strategy<Value = GateOp> {
    prop_oneof![
        any::<usize>().prop_map(GateOp::Inv),
        any::<usize>().prop_map(GateOp::Buf),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::Nand2(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::Nor2(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::And2(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::Or2(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::Xor2(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| GateOp::Nand3(a, b, c)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| GateOp::Mux2(a, b, c)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| GateOp::FullAdder(a, b, c)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::Latch(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateOp::CElement(a, b)),
        (any::<usize>(), 1u16..2000).prop_map(|(a, d)| GateOp::DelayLine(a, d)),
        (any::<usize>(), 1u16..500, 1u16..500).prop_map(|(a, d, w)| GateOp::PulseGen(a, d, w)),
    ]
}

/// Builds the same netlist twice (cells are stateful, so each kernel
/// needs its own instance) and returns the primary inputs plus every net
/// created by the recipe (inputs and gate outputs alike).
fn build(n_inputs: usize, ops: &[GateOp]) -> (Circuit, Vec<NetId>, Vec<NetId>) {
    let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
    let mut b = CircuitBuilder::new(lib);
    let inputs: Vec<NetId> = (0..n_inputs).map(|i| b.input(format!("in{i}"))).collect();
    let mut pool = inputs.clone();
    let pick = |pool: &[NetId], i: usize| pool[i % pool.len()];
    for (k, op) in ops.iter().enumerate() {
        let out = match *op {
            GateOp::Inv(a) => b.inv(&format!("g{k}"), pick(&pool, a)),
            GateOp::Buf(a) => b.buf_gate(&format!("g{k}"), [pick(&pool, a)]),
            GateOp::Nand2(a, c) => b.nand2(&format!("g{k}"), [pick(&pool, a), pick(&pool, c)]),
            GateOp::Nor2(a, c) => b.nor2(&format!("g{k}"), [pick(&pool, a), pick(&pool, c)]),
            GateOp::And2(a, c) => b.and2(&format!("g{k}"), [pick(&pool, a), pick(&pool, c)]),
            GateOp::Or2(a, c) => b.or2(&format!("g{k}"), [pick(&pool, a), pick(&pool, c)]),
            GateOp::Xor2(a, c) => b.xor2(&format!("g{k}"), [pick(&pool, a), pick(&pool, c)]),
            GateOp::Nand3(a, c, d) => b.nand3(
                &format!("g{k}"),
                [pick(&pool, a), pick(&pool, c), pick(&pool, d)],
            ),
            GateOp::Mux2(a, c, s) => b.mux2(
                &format!("g{k}"),
                pick(&pool, a),
                pick(&pool, c),
                pick(&pool, s),
            ),
            GateOp::FullAdder(a, c, d) => {
                let (s, _carry) = b.full_adder(
                    &format!("g{k}"),
                    pick(&pool, a),
                    pick(&pool, c),
                    pick(&pool, d),
                );
                s
            }
            GateOp::Latch(d, g) => b.latch(&format!("g{k}"), pick(&pool, d), pick(&pool, g)),
            GateOp::CElement(a, c) => {
                let t = b.library_mut().timing(CellClass::CElement);
                let q = b.net(format!("g{k}.q"));
                let (a, c) = (pick(&pool, a), pick(&pool, c));
                b.add_cell_kind(format!("g{k}"), CElement::new(t, Logic::Low), &[a, c], &[q]);
                q
            }
            GateOp::DelayLine(a, d) => b.delay_line(
                &format!("g{k}"),
                pick(&pool, a),
                SimTime::from_femtos(d as u64 * 10),
            ),
            GateOp::PulseGen(a, d, w) => {
                let p = b.net(format!("g{k}.p"));
                let trigger = pick(&pool, a);
                b.add_cell_kind(
                    format!("g{k}"),
                    PulseGen::new(
                        SimTime::from_femtos(d as u64 * 10),
                        SimTime::from_femtos(w as u64 * 10),
                    ),
                    &[trigger],
                    &[p],
                );
                p
            }
        };
        pool.push(out);
    }
    (b.build(), inputs, pool)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// For random DAG-ish netlists (mixing stateless gates, stateful
    /// latches/C-elements, transport delay lines and multi-edge pulse
    /// generators) and random multi-phase stimulus, the optimized kernel
    /// and the naive reference agree on final net values, quiescence time
    /// and cumulative switching energy.
    #[test]
    fn optimized_kernel_matches_naive_reference(
        n_inputs in 1usize..5,
        ops in proptest::collection::vec(gate_op(), 1..24),
        stimulus in proptest::collection::vec(
            proptest::collection::vec((any::<usize>(), any::<bool>()), 1..6),
            1..5,
        ),
    ) {
        let (circuit_a, inputs, nets) = build(n_inputs, &ops);
        let (circuit_b, _, _) = build(n_inputs, &ops);
        let mut fast = Simulator::new(circuit_a);
        let mut naive = ReferenceSimulator::new(circuit_b);
        // Bound runaway oscillators identically on both kernels.
        fast.set_event_cap(200_000);
        naive.set_event_cap(200_000);
        let mut oscillated = false;
        for phase in &stimulus {
            for &(which, high) in phase {
                let net = inputs[which % inputs.len()];
                let v = Logic::from_bool(high);
                fast.poke(net, v);
                naive.poke(net, v);
            }
            let ra = fast.run_to_quiescence();
            let rb = naive.run_to_quiescence();
            prop_assert_eq!(ra.is_ok(), rb.is_ok(), "settling outcome differs");
            if ra.is_err() {
                // Both kernels agree the recipe oscillates; mid-flight
                // state is cut off at an arbitrary event count, so there
                // is nothing further to compare.
                oscillated = true;
                break;
            }
            prop_assert_eq!(ra.unwrap(), rb.unwrap(), "quiescence time");
        }
        if !oscillated {
            // Every net, not just outputs: intermediate state must match.
            for (i, &net) in nets.iter().enumerate() {
                prop_assert_eq!(fast.value(net), naive.value(net), "net {}", i);
            }
            prop_assert_eq!(fast.now(), naive.now(), "final clocks");
            prop_assert!(
                (fast.total_energy().value() - naive.total_energy().value()).abs() == 0.0,
                "energy: fast {} vs naive {}",
                fast.total_energy(),
                naive.total_energy()
            );
            prop_assert_eq!(
                fast.violations().len(),
                naive.violations().len(),
                "violations"
            );
        }
    }
}
