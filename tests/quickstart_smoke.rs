//! Smoke test mirroring `examples/quickstart.rs`: train a MADDNESS
//! operator, program the netlist, run tokens, and require bit-identity
//! with the algorithm — so the README / `src/lib.rs` quick-start flow can
//! never silently rot. Keep this in sync with the example.

use maddpipe::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn quickstart_flow_end_to_end() {
    // 1. A clustered matmul workload, as in the example.
    let mut rng = StdRng::seed_from_u64(7);
    let centers: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..18).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let c = &centers[i % centers.len()];
            c.iter().map(|&v| v + rng.gen_range(-0.3f32..0.3)).collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 4);
    for r in 0..18 {
        for c in 0..4 {
            w[(r, c)] = ((r * 3 + c * 5) % 11) as f32 / 11.0 - 0.5;
        }
    }

    // 2. Train the operator; the approximation must be decent on its own
    // calibration distribution.
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("training");
    let exact = x.matmul(&w);
    let approx = op.matmul(&x);
    assert!(
        nmse(&exact, &approx) < 0.2,
        "nmse {}",
        nmse(&exact, &approx)
    );

    // 3. Program the netlist and push tokens through the self-synchronous
    // pipeline: every token must match the deployed integer path bit for
    // bit.
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::from_maddness(&op);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    let scale = op.input_scale();
    for t in 0..5 {
        let row = x.row(t);
        let mut token = vec![[0i8; SUBVECTOR_LEN]; op.num_subspaces()];
        for (s, chunk) in row.chunks(9).enumerate() {
            for (e, &v) in chunk.iter().enumerate() {
                token[s][e] = scale.quantize(v);
            }
        }
        let result = rtl.run_token(&token).expect("token completes");
        let reference = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(result.outputs, reference[0], "token {t}");
    }
    assert!(rtl.simulator().violations().is_empty());

    // 4. The flagship PPA evaluation used by the quick start.
    let report = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    assert!(report.tops_per_watt > 150.0);
}
