//! Smoke test mirroring `examples/quickstart.rs`: train a MADDNESS
//! operator, program the netlist, run tokens, and require bit-identity
//! with the algorithm — so the README / `src/lib.rs` quick-start flow can
//! never silently rot. Keep this in sync with the example.

use maddpipe::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn quickstart_flow_end_to_end() {
    // 1. A clustered matmul workload, as in the example.
    let mut rng = StdRng::seed_from_u64(7);
    let centers: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..18).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let c = &centers[i % centers.len()];
            c.iter().map(|&v| v + rng.gen_range(-0.3f32..0.3)).collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Mat::from_rows(&refs);
    let mut w = Mat::zeros(18, 4);
    for r in 0..18 {
        for c in 0..4 {
            w[(r, c)] = ((r * 3 + c * 5) % 11) as f32 / 11.0 - 0.5;
        }
    }

    // 2. Train the operator; the approximation must be decent on its own
    // calibration distribution.
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("training");
    let exact = x.matmul(&w);
    let approx = op.matmul(&x);
    assert!(
        nmse(&exact, &approx) < 0.2,
        "nmse {}",
        nmse(&exact, &approx)
    );

    // 3. Program the netlist and stream a batch through the
    // self-synchronous pipeline via the session API: every token must
    // match the deployed integer path bit for bit, and the functional
    // backend must agree.
    let cfg = MacroConfig::new(op.out_features(), op.num_subspaces())
        .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::from_maddness(&op);
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Rtl {
            fidelity: Fidelity::Pipelined,
        })
        .build()
        .expect("program fits the configuration");
    let rows5: Vec<&[f32]> = (0..5).map(|t| x.row(t)).collect();
    let batch = TokenBatch::from_f32_rows(&rows5, op.num_subspaces(), op.input_scale())
        .expect("non-empty batch");
    let result = session.run(&batch).expect("batch completes");
    for (t, (obs, row)) in result.tokens.iter().zip(&rows5).enumerate() {
        let reference = op.decode_i16_wrapping(&op.encode_quantized(&Mat::from_rows(&[row])));
        assert_eq!(obs.outputs, reference[0], "token {t}");
    }
    assert!(session
        .rtl()
        .expect("rtl backend")
        .simulator()
        .violations()
        .is_empty());
    let mut functional = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Functional { workers: 2 })
        .build()
        .expect("program fits the configuration");
    let fun = functional.run(&batch).expect("batch completes");
    assert_eq!(
        fun.outputs(),
        result.outputs(),
        "backends agree bit for bit"
    );
    assert_eq!(session.stats().tokens(), 5);

    // 4. The flagship PPA evaluation used by the quick start.
    let report = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    assert!(report.tops_per_watt > 150.0);
}
