//! Determinism of the self-synchronous pipeline: the event-driven netlist
//! must be perfectly reproducible — same program, same tokens → identical
//! outputs, identical event counts, identical energy, femtosecond for
//! femtosecond. Asynchronous hardware is only testable because the
//! *simulation* of it is deterministic.

use maddpipe::prelude::*;

fn token(ns: usize, seed: u64) -> Vec<[i8; SUBVECTOR_LEN]> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ns)
        .map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() {
                *v = rng.gen_range(-128i32..=127) as i8;
            }
            x
        })
        .collect()
}

/// Two independently built netlists of the same macro replay the same
/// token stream bit-identically: outputs, per-token latency and energy,
/// cumulative kernel statistics and the final simulation clock.
#[test]
fn independent_builds_replay_bit_identically() {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 2, 42);
    let mut a = AcceleratorRtl::build(&cfg, &program);
    let mut b = AcceleratorRtl::build(&cfg, &program);
    for t in 0..4u64 {
        let tok = token(2, 1000 + t);
        let ra = a.run_token(&tok).expect("token completes (a)");
        let rb = b.run_token(&tok).expect("token completes (b)");
        assert_eq!(ra.outputs, rb.outputs, "token {t}: outputs");
        assert_eq!(ra.latency, rb.latency, "token {t}: latency");
        assert_eq!(ra.energy, rb.energy, "token {t}: energy");
        assert_eq!(ra.outputs, program.reference_output(&tok), "token {t}");
    }
    assert_eq!(
        a.simulator().stats(),
        b.simulator().stats(),
        "cumulative event counts must match exactly"
    );
    assert_eq!(
        a.simulator().now(),
        b.simulator().now(),
        "simulation clocks"
    );
    assert_eq!(
        a.simulator().total_energy(),
        b.simulator().total_energy(),
        "cumulative switching energy"
    );
}

/// Replaying the *same* token on the same settled netlist is a fixed
/// point: the pipeline returns to an identical idle state, so the second
/// pass reproduces the first one's latency and energy exactly.
#[test]
fn same_token_is_a_fixed_point_of_the_idle_state() {
    let cfg = MacroConfig::new(3, 2).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let program = MacroProgram::random(3, 2, 7);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    let tok = token(2, 77);
    let first = rtl.run_token(&tok).expect("first pass");
    let second = rtl.run_token(&tok).expect("second pass");
    let third = rtl.run_token(&tok).expect("third pass");
    assert_eq!(first.outputs, second.outputs);
    assert_eq!(second.outputs, third.outputs);
    assert_eq!(second.latency, third.latency, "steady-state latency");
    // Per-token energy is the difference of a growing cumulative f64 sum,
    // so consecutive passes may differ in the last few ulps even though
    // every event is identical (the cross-instance test above asserts
    // bit-exact equality where the accumulation histories match).
    let rel = (second.energy.value() - third.energy.value()).abs() / second.energy.value();
    assert!(rel < 1e-9, "steady-state energy drifted: {rel:e}");
}

/// Determinism must survive local mismatch: the Monte-Carlo delay
/// sampling is seeded, so two builds with the same mismatch model stay
/// bit-identical (and a different seed produces different timing while
/// computing the same values).
#[test]
fn mismatch_sampling_is_seeded_not_random() {
    let program = MacroProgram::random(2, 2, 3);
    let cfg = |seed: u64| {
        MacroConfig::new(2, 2)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg))
            .with_mismatch(Mismatch::new(0.05, seed))
    };
    let tok = token(2, 5);
    let mut a = AcceleratorRtl::build(&cfg(9), &program);
    let mut b = AcceleratorRtl::build(&cfg(9), &program);
    let ra = a.run_token(&tok).expect("token completes (a)");
    let rb = b.run_token(&tok).expect("token completes (b)");
    assert_eq!(ra.outputs, rb.outputs);
    assert_eq!(ra.latency, rb.latency);
    assert_eq!(ra.energy, rb.energy);
    assert_eq!(a.simulator().stats(), b.simulator().stats());
    // A different mismatch seed: same functional outputs, different
    // timing (delays are resampled).
    let mut c = AcceleratorRtl::build(&cfg(10), &program);
    let rc = c.run_token(&tok).expect("token completes (c)");
    assert_eq!(rc.outputs, ra.outputs, "function is timing-independent");
    assert_ne!(rc.latency, ra.latency, "different seed, different timing");
}

/// The kernel's event accounting is part of its contract: delta-cycle
/// batching and compiled fanout changed how many evaluations a workload
/// costs, and these counts pin the new behaviour so an accidental
/// regression to per-fanout-edge evaluation (or double-scheduling) shows
/// up as a count mismatch, not a silent slowdown.
#[test]
fn kernel_stats_are_pinned() {
    use maddpipe::sim::prelude::*;
    let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
    let mut b = CircuitBuilder::new(lib);
    let a = b.input("a");
    let n1 = b.inv("u0", a);
    let n2 = b.inv("u1", n1);
    let _n3 = b.inv("u2", n2);
    let mut sim = Simulator::new(b.build());
    sim.poke(a, Logic::Low);
    sim.run_to_quiescence().expect("settle");
    sim.poke(a, Logic::High);
    sim.run_to_quiescence().expect("propagate");
    let s = sim.stats();
    // Power-up schedules one X drive per inverter; the first wave's u0
    // re-drive supersedes n1's power-up event (the single stale pop) and
    // the remaining X events are no-change pops sharing the first wave's
    // delta cycles. After that, each wave is 4 events / 4 transitions /
    // 3 evaluations — one per gate, never one per fanout edge.
    assert_eq!(s.events_popped, 11, "3 power-up + 2 x (1 poke + 3 gates)");
    assert_eq!(s.events_stale, 1, "n1's power-up X drive is superseded");
    assert_eq!(s.transitions, 8, "2 x (input edge + 3 gate outputs)");
    assert_eq!(s.evals, 9, "3 power-up + 2 x 3 wave evaluations");
    assert_eq!(s.delta_cycles, 8, "power-up X pops share the wave deltas");
    assert_eq!(s.max_queue, 4, "3 power-up drives + the first poke");
}

/// The pipelined streaming mode is deterministic too — same makespan and
/// final outputs across independent builds.
#[test]
fn pipelined_streaming_is_deterministic() {
    let cfg = MacroConfig::new(2, 3).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(2, 3, 11);
    let tokens: Vec<_> = (0..5u64).map(|t| token(3, 300 + t)).collect();
    let mut a = AcceleratorRtl::build(&cfg, &program);
    let mut b = AcceleratorRtl::build(&cfg, &program);
    let (out_a, span_a) = a.run_pipelined(&tokens).expect("stream (a)");
    let (out_b, span_b) = b.run_pipelined(&tokens).expect("stream (b)");
    assert_eq!(out_a, out_b);
    assert_eq!(span_a, span_b);
    assert_eq!(out_a, program.reference_output(tokens.last().unwrap()));
    assert_eq!(a.simulator().stats(), b.simulator().stats());
}
