//! Stress and contract tests for the async serving queue.
//!
//! The serving contract under test: any number of concurrent submitters
//! pushing through one `ServeQueue` receive outputs **bit-identical** to
//! running their batches directly through `run_batch` on the same
//! backend kind — coalescing, micro-batch splitting and FIFO dispatch
//! must be invisible in the results. On top of that, every failure mode
//! is a typed `BackendError` delivered to exactly the affected tickets:
//! `QueueFull` backpressure at the submitting call site, backend
//! failures to every rider of the failed micro-batch, `QueueClosed` to
//! anything the dispatcher could no longer serve — and a shutdown
//! resolves every accepted ticket instead of leaking it.
//!
//! These tests are timing-*robust* (no assertion depends on the
//! dispatcher winning a race) but timing-*sensitive* in wall time: CI
//! runs them in release as well, where the linger windows dwarf the
//! per-token cost.

use maddpipe::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;
const TOKENS_PER_REQUEST: usize = 4;

/// The deterministic batch client `c` submits as its `r`-th request.
fn client_batch(ns: usize, c: usize, r: usize) -> TokenBatch {
    TokenBatch::random(ns, TOKENS_PER_REQUEST, 1 + (c as u64) * 1000 + r as u64)
}

/// Runs the multi-client stress against one backend kind: 8 submitter
/// threads × 12 requests × 4 tokens (384 tokens total), every reply
/// pinned bit-identical to a direct `Session::run` of the same batch on
/// the same backend kind.
fn stress_bit_identical(kind: BackendKind, ndec: usize, ns: usize) {
    let cfg = MacroConfig::new(ndec, ns).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(ndec, ns, 77);

    // Golden: one direct session, batches run one at a time.
    let mut direct = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(kind)
        .build()
        .expect("program fits");
    let mut expected: Vec<Vec<Vec<Vec<i16>>>> = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let mut per_client = Vec::with_capacity(REQUESTS_PER_CLIENT);
        for r in 0..REQUESTS_PER_CLIENT {
            let result = direct.run(&client_batch(ns, c, r)).expect("direct run");
            per_client.push(result.tokens.into_iter().map(|t| t.outputs).collect());
        }
        expected.push(per_client);
    }

    // Queue: same program, same kind, 8 concurrent submitters.
    let queue = Session::builder(cfg)
        .program(program)
        .backend(kind)
        .build()
        .expect("program fits")
        .into_serving(
            QueuePolicy::default()
                .with_max_batch(32)
                .with_max_linger(Duration::from_micros(500))
                .with_max_depth(4096),
        )
        .expect("queue comes up");
    std::thread::scope(|scope| {
        for (c, expected) in expected.iter().enumerate() {
            let queue = &queue;
            scope.spawn(move || {
                // Submit everything first, then wait — so requests from
                // all clients really are in flight together.
                let tickets: Vec<BatchTicket> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| queue.submit(client_batch(ns, c, r)).expect("accepted"))
                    .collect();
                for (r, ticket) in tickets.into_iter().enumerate() {
                    let reply = ticket.wait().expect("served");
                    let got: Vec<Vec<i16>> =
                        reply.result.tokens.into_iter().map(|t| t.outputs).collect();
                    assert_eq!(got, expected[r], "client {c} request {r}");
                    assert!(reply.coalesced_tokens >= TOKENS_PER_REQUEST);
                    assert!(reply.service > Duration::ZERO);
                }
            });
        }
    });

    let total = (CLIENTS * REQUESTS_PER_CLIENT * TOKENS_PER_REQUEST) as u64;
    let stats = queue.shutdown();
    assert_eq!(stats.tokens(), total, "every token served exactly once");
    assert_eq!(
        stats.queued_requests(),
        (CLIENTS * REQUESTS_PER_CLIENT) as u64
    );
    assert!(stats.queued_batches() >= 1 && stats.queued_batches() <= stats.queued_requests());
    assert!(stats.p50_queue_wait().is_some() && stats.p99_queue_wait().is_some());
    assert!(stats.p50_queue_wait() <= stats.p99_queue_wait());
    assert!(stats.mean_coalesced_batch() >= TOKENS_PER_REQUEST as f64);
    assert!(stats.max_queue_depth() >= 1);
}

#[test]
fn eight_clients_match_direct_runs_on_the_functional_backend() {
    stress_bit_identical(BackendKind::Functional { workers: 2 }, 3, 2);
}

#[test]
fn eight_clients_match_direct_runs_on_the_rtl_backend() {
    stress_bit_identical(
        BackendKind::Rtl {
            fidelity: Fidelity::Sequential,
        },
        2,
        2,
    );
}

#[test]
fn eight_clients_match_direct_runs_on_the_sharded_backend() {
    stress_bit_identical(
        BackendKind::Sharded {
            shards: 2,
            inner: ShardKind::Functional { workers: 1 },
        },
        4,
        2,
    );
}

/// A backend gated on a channel: each `run_batch` announces itself on
/// `started`, then waits for one release token; from micro-batch
/// `fail_from` on it answers a typed error instead of results. Lets the
/// tests park the dispatcher mid-batch and make coalescing and
/// backpressure windows deterministic instead of timing-dependent.
struct GatedBackend {
    inner: FunctionalBackend,
    started: mpsc::Sender<usize>,
    gate: mpsc::Receiver<()>,
    served: usize,
    fail_from: usize,
}

impl MacroBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        let _ = self.started.send(batch.len());
        // A closed gate (sender dropped) releases immediately so queue
        // shutdown can always drain.
        let _ = self.gate.recv();
        let index = self.served;
        self.served += 1;
        if index >= self.fail_from {
            return Err(BackendError::MalformedProgram {
                reason: format!("injected failure on micro-batch {index}"),
            });
        }
        self.inner.run_batch(batch)
    }
}

/// The gated queue plus its control channels: `started` reports each
/// micro-batch's token count the moment the backend picks it up, `gate`
/// releases it.
fn gated_queue(
    ns: usize,
    policy: QueuePolicy,
    fail_from: usize,
) -> (
    ServeQueue,
    mpsc::Receiver<usize>,
    mpsc::Sender<()>,
    MacroProgram,
) {
    let program = MacroProgram::random(2, ns, 5);
    let (started_tx, started_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    let inner = program.clone();
    let factory: BackendFactory = Box::new(move || {
        Ok(Box::new(GatedBackend {
            inner: FunctionalBackend::new(inner),
            started: started_tx,
            gate: gate_rx,
            served: 0,
            fail_from,
        }))
    });
    let queue = ServeQueue::from_factory(policy, ns, factory).expect("queue comes up");
    (queue, started_rx, gate_tx, program)
}

#[test]
fn a_depth_one_policy_rejects_with_typed_queue_full() {
    let policy = QueuePolicy::default()
        .with_max_depth(1)
        .with_max_linger(Duration::ZERO);
    let (queue, _started, gate, program) = gated_queue(2, policy, usize::MAX);

    // Request 1 occupies the queue's single slot until it *resolves* —
    // wherever it is (pending or executing), depth stays 1.
    let first = queue.submit(TokenBatch::random(2, 2, 1)).expect("accepted");
    assert_eq!(queue.depth(), 1);
    let err = queue.submit(TokenBatch::random(2, 2, 2)).unwrap_err();
    assert_eq!(
        err,
        BackendError::QueueFull {
            limit: QueueLimit::Requests { max_depth: 1 }
        }
    );

    // Resolving the outstanding ticket frees the slot deterministically.
    gate.send(()).expect("dispatcher alive");
    let reply = first.wait().expect("served");
    assert_eq!(reply.result.tokens.len(), 2);
    assert_eq!(
        reply.result.tokens[0].outputs,
        program.reference_output(&TokenBatch::random(2, 2, 1).tokens()[0])
    );
    let third = queue
        .submit(TokenBatch::random(2, 2, 3))
        .expect("slot freed");
    gate.send(()).expect("dispatcher alive");
    third.wait().expect("served");

    // Malformed submissions are rejected at their own call site, before
    // they could ride along and fail a coalesced micro-batch.
    let wrong_shape = TokenBatch::random(3, 1, 9);
    assert_eq!(
        queue.submit(wrong_shape).unwrap_err(),
        BackendError::ShapeMismatch {
            token: 0,
            expected: 2,
            got: 3,
        }
    );
}

#[test]
fn a_token_bound_rejects_before_request_count_backpressure_kicks_in() {
    // Regression: `pending_tokens` used to be tracked but never
    // enforced, so one client submitting huge batches could buffer
    // unbounded payload while staying under `max_depth`'s request
    // count. The token bound must reject with its own typed limit.
    let policy = QueuePolicy::default()
        .with_max_linger(Duration::ZERO)
        .with_max_depth(1024)
        .with_max_pending_tokens(4);
    let (queue, started, gate, _) = gated_queue(2, policy, usize::MAX);

    // Park the dispatcher on a warm-up so later submissions stay queued.
    let warmup = queue.submit(TokenBatch::random(2, 1, 1)).expect("accepted");
    assert_eq!(started.recv().expect("backend alive"), 1);

    // 2 + 2 queued tokens fill the bound exactly...
    let a = queue.submit(TokenBatch::random(2, 2, 2)).expect("accepted");
    let b = queue.submit(TokenBatch::random(2, 2, 3)).expect("accepted");
    // ...and the next submission is rejected by the *token* limit, far
    // below the 1024-request depth bound.
    let err = queue.submit(TokenBatch::random(2, 2, 4)).unwrap_err();
    assert_eq!(
        err,
        BackendError::QueueFull {
            limit: QueueLimit::Tokens {
                pending_tokens: 4,
                max_pending_tokens: 4,
            }
        }
    );

    // Draining the backlog re-opens admission.
    gate.send(()).expect("release warm-up");
    warmup.wait().expect("served");
    assert_eq!(started.recv().expect("backend alive"), 4);
    gate.send(()).expect("release the queued pair");
    a.wait().expect("served");
    b.wait().expect("served");
    let c = queue
        .submit(TokenBatch::random(2, 2, 5))
        .expect("tokens freed");
    assert_eq!(started.recv().expect("backend alive"), 2);
    gate.send(()).expect("release");
    c.wait().expect("served");

    // A batch bigger than the whole token bound is still admitted into
    // an *empty* waiting room (mirroring the oversized `max_batch`
    // rule) — the bound caps buffering, it must not starve big batches.
    let big = queue
        .submit(TokenBatch::random(2, 9, 6))
        .expect("an empty waiting room admits an oversized batch");
    assert_eq!(started.recv().expect("backend alive"), 9);
    gate.send(()).expect("release");
    assert_eq!(big.wait().expect("served").result.tokens.len(), 9);
}

#[test]
fn a_batch_exactly_filling_the_token_bound_admits() {
    // Off-by-one regression for the `QueueFull { limit: Tokens }`
    // boundary: admission must compare `pending + batch > bound`, not
    // `>=` — a batch whose token count exactly equals the *remaining*
    // token budget is within bounds and must be accepted.
    let policy = QueuePolicy::default()
        .with_max_linger(Duration::ZERO)
        .with_max_depth(1024)
        .with_max_pending_tokens(6);
    let (queue, started, gate, _) = gated_queue(2, policy, usize::MAX);

    // Park the dispatcher so subsequent submissions stay queued.
    let warmup = queue.submit(TokenBatch::random(2, 1, 1)).expect("accepted");
    assert_eq!(started.recv().expect("backend alive"), 1);

    // 2 of 6 tokens queued; a 4-token batch exactly fills the rest.
    let a = queue.submit(TokenBatch::random(2, 2, 2)).expect("accepted");
    let exact = queue
        .submit(TokenBatch::random(2, 4, 3))
        .expect("a batch exactly filling the remaining token budget admits");
    // The bound is now saturated: one more token is over, and the typed
    // limit reports the exact saturation point.
    assert_eq!(
        queue.submit(TokenBatch::random(2, 1, 4)).unwrap_err(),
        BackendError::QueueFull {
            limit: QueueLimit::Tokens {
                pending_tokens: 6,
                max_pending_tokens: 6,
            }
        }
    );

    // Into an *empty* waiting room the same exact-fill rule holds from
    // zero: a bound-sized batch admits.
    gate.send(()).expect("release warm-up");
    warmup.wait().expect("served");
    assert_eq!(started.recv().expect("backend alive"), 6);
    gate.send(()).expect("release the queued pair");
    a.wait().expect("served");
    exact.wait().expect("served");
    let full = queue
        .submit(TokenBatch::random(2, 6, 5))
        .expect("a bound-sized batch admits into an empty room");
    assert_eq!(started.recv().expect("backend alive"), 6);
    gate.send(()).expect("release");
    assert_eq!(full.wait().expect("served").result.tokens.len(), 6);
}

#[test]
fn an_oversized_request_dispatches_alone_instead_of_stalling() {
    // A single request larger than `max_batch` can never fill a
    // micro-batch; it must ride alone, not park forever behind an
    // unreachable "batch full" condition.
    let policy = QueuePolicy::default()
        .with_max_batch(4)
        .with_max_linger(Duration::from_secs(3600));
    let (queue, started, gate, program) = gated_queue(2, policy, usize::MAX);
    let big_batch = TokenBatch::random(2, 11, 7);
    let big = queue.submit(big_batch.clone()).expect("accepted");
    // The dispatcher picks it up despite the hour-long linger: an
    // oversized request counts as a full batch.
    assert_eq!(
        started
            .recv_timeout(Duration::from_secs(30))
            .expect("dispatched"),
        11,
        "the oversized request must dispatch whole, alone"
    );
    gate.send(()).expect("release");
    let reply = big.wait().expect("served");
    assert_eq!(reply.result.tokens.len(), 11);
    assert_eq!(reply.coalesced_tokens, 11);
    assert_eq!(
        reply.result.tokens[0].outputs,
        program.reference_output(&big_batch.tokens()[0])
    );
}

#[test]
fn zero_linger_dispatches_partial_batches_immediately() {
    // `max_linger == 0` must mean "dispatch what's there right away" —
    // a lone one-token request, far below `max_batch`, may not wait for
    // company.
    let policy = QueuePolicy::default()
        .with_max_batch(1024)
        .with_max_linger(Duration::ZERO);
    let (queue, started, gate, _) = gated_queue(2, policy, usize::MAX);
    let lone = queue.submit(TokenBatch::random(2, 1, 8)).expect("accepted");
    assert_eq!(
        started
            .recv_timeout(Duration::from_secs(30))
            .expect("dispatched"),
        1,
        "a partial batch must dispatch without lingering"
    );
    gate.send(()).expect("release");
    assert_eq!(lone.wait().expect("served").result.tokens.len(), 1);
}

#[test]
fn a_backend_failure_resolves_every_coalesced_ticket_with_the_error() {
    // Gate parked: requests pile up behind the in-flight micro-batch, so
    // the coalescing below is deterministic, not linger-window luck.
    let policy = QueuePolicy::default()
        .with_max_batch(1024)
        .with_max_linger(Duration::ZERO);
    // Micro-batches 0–2 (warm-up, coalesced riders, second warm-up)
    // succeed; micro-batch 3 (the second rider coalition) fails.
    let (queue, started, gate, program) = gated_queue(2, policy, 3);

    // Warm-up request: wait until the dispatcher has picked it up (and
    // parked on the gate) before submitting the riders — so the riders
    // are guaranteed to coalesce with each other, not with the warm-up.
    let warmup = queue
        .submit(TokenBatch::random(2, 1, 10))
        .expect("accepted");
    assert_eq!(started.recv().expect("backend alive"), 1);
    let riders: Vec<BatchTicket> = (0..3)
        .map(|i| {
            queue
                .submit(TokenBatch::random(2, 2, 20 + i))
                .expect("accepted")
        })
        .collect();
    gate.send(()).expect("release warm-up");
    warmup.wait().expect("warm-up serves alone");
    assert_eq!(
        started.recv().expect("backend alive"),
        6,
        "the three riders must coalesce into one six-token micro-batch"
    );
    gate.send(()).expect("release riders");
    for (i, ticket) in riders.into_iter().enumerate() {
        let reply = ticket.wait().expect("coalesced batch succeeds");
        assert_eq!(
            reply.coalesced_tokens, 6,
            "rider {i} must see all three requests in its micro-batch"
        );
        assert_eq!(
            reply.result.tokens[0].outputs,
            program.reference_output(&TokenBatch::random(2, 2, 20 + i as u64).tokens()[0]),
            "coalescing must not leak other requests' outputs"
        );
        assert_eq!(reply.result.tokens.len(), 2, "own tokens only");
    }

    // Same set-up again, but this micro-batch fails: every rider gets
    // the backend's typed error, none hangs, none gets partial output.
    let warmup = queue
        .submit(TokenBatch::random(2, 1, 30))
        .expect("accepted");
    assert_eq!(started.recv().expect("backend alive"), 1);
    let riders: Vec<BatchTicket> = (0..3)
        .map(|i| {
            queue
                .submit(TokenBatch::random(2, 2, 40 + i))
                .expect("accepted")
        })
        .collect();
    gate.send(()).expect("release warm-up");
    warmup.wait().expect("micro-batch 1 still succeeds");
    assert_eq!(started.recv().expect("backend alive"), 6);
    gate.send(()).expect("release riders");
    for ticket in riders {
        match ticket.wait() {
            Err(BackendError::MalformedProgram { reason }) => {
                assert!(reason.contains("injected failure"), "{reason}");
            }
            other => panic!("every coalesced ticket must carry the typed error, got {other:?}"),
        }
    }

    // The queue survives the failed batch and keeps dispatching.
    let after = queue
        .submit(TokenBatch::random(2, 1, 50))
        .expect("accepted");
    assert_eq!(started.recv().expect("backend alive"), 1);
    gate.send(()).expect("release");
    match after.wait() {
        Err(BackendError::MalformedProgram { .. }) => {} // still failing by design
        other => panic!("expected the injected failure, got {other:?}"),
    }
    // Queue-side stats count failed micro-batches too — their requests
    // waited and resolved; only served tokens are success-only.
    let stats = queue.stats();
    assert_eq!(
        stats.queued_requests(),
        9,
        "2 warm-ups + 2×3 riders + the probe, failures included"
    );
    assert_eq!(stats.queued_batches(), 5);
    assert_eq!(stats.tokens(), 8, "warm-ups + the one successful coalition");
}

#[test]
fn shutdown_resolves_in_flight_tickets_instead_of_leaking_them() {
    // Zero linger, tiny batches: the dispatcher is mid-drain while we
    // shut down. Every accepted ticket must still resolve successfully.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(2, 2, 9);
    let queue = Session::builder(cfg)
        .program(program.clone())
        .build()
        .expect("program fits")
        .into_serving(
            QueuePolicy::default()
                .with_max_batch(2)
                .with_max_linger(Duration::ZERO),
        )
        .expect("queue comes up");
    let tickets: Vec<(u64, BatchTicket)> = (0..16)
        .map(|i| {
            (
                i,
                queue
                    .submit(TokenBatch::random(2, 2, 100 + i))
                    .expect("accepted"),
            )
        })
        .collect();
    // `close` stops intake immediately; already-accepted work drains.
    queue.close();
    assert_eq!(
        queue.submit(TokenBatch::random(2, 1, 0)).unwrap_err(),
        BackendError::QueueClosed
    );
    let stats = queue.shutdown();
    for (i, ticket) in tickets {
        assert!(
            ticket.is_ready(),
            "ticket {i} resolved before shutdown returned"
        );
        let reply = ticket.wait().expect("drained, not leaked");
        assert_eq!(
            reply.result.tokens[0].outputs,
            program.reference_output(&TokenBatch::random(2, 2, 100 + i).tokens()[0])
        );
    }
    assert_eq!(
        stats.tokens(),
        32,
        "all 16 × 2 tokens served during the drain"
    );
}

#[test]
fn a_panicking_backend_closes_the_queue_and_fails_tickets_typed() {
    struct PanickingBackend;
    impl MacroBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn run_batch(&mut self, _batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            panic!("backend bug");
        }
    }
    let factory: BackendFactory = Box::new(|| Ok(Box::new(PanickingBackend)));
    let queue = ServeQueue::from_factory(QueuePolicy::default(), 2, factory).expect("comes up");
    let ticket = queue.submit(TokenBatch::random(2, 2, 1)).expect("accepted");
    // The dispatcher unwinds; the ticket must resolve (typed), never hang.
    assert_eq!(ticket.wait().unwrap_err(), BackendError::QueueClosed);
    // And the queue reports itself closed from then on.
    let err = loop {
        match queue.submit(TokenBatch::random(2, 2, 2)) {
            Err(e) => break e,
            // The dispatcher may not have unwound yet; a ticket accepted
            // in that window still resolves to QueueClosed.
            Ok(ticket) => assert_eq!(ticket.wait().unwrap_err(), BackendError::QueueClosed),
        }
    };
    assert_eq!(err, BackendError::QueueClosed);
}

#[test]
fn tickets_support_poll_and_timeouts() {
    let policy = QueuePolicy::default().with_max_linger(Duration::ZERO);
    let (queue, _started, gate, _) = gated_queue(2, policy, usize::MAX);
    let ticket = queue.submit(TokenBatch::random(2, 1, 3)).expect("accepted");
    // Unresolved: poll hands the ticket back, a short wait times out.
    let ticket = ticket.poll().expect_err("gate is closed, not resolved yet");
    assert!(!ticket.is_ready());
    let ticket = ticket
        .wait_timeout(Duration::from_millis(10))
        .expect_err("still gated");
    gate.send(()).expect("dispatcher alive");
    let reply = ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("resolves");
    assert_eq!(reply.expect("served").result.tokens.len(), 1);
}

#[test]
fn an_unbounded_linger_dispatches_on_full_batches_and_on_close() {
    // `Duration::MAX` is the natural spelling of "wait until the batch
    // fills" — it must not overflow the dispatcher's deadline math.
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(2, 2, 6);
    let queue = Session::builder(cfg)
        .program(program)
        .into_serving(
            QueuePolicy::default()
                .with_max_batch(2)
                .with_max_linger(Duration::MAX),
        )
        .expect("queue comes up");
    // A full batch dispatches despite the infinite linger.
    let full = queue.submit(TokenBatch::random(2, 2, 1)).expect("accepted");
    let reply = full
        .wait_timeout(Duration::from_secs(60))
        .expect("a full batch must dispatch without waiting out the linger")
        .expect("served");
    assert_eq!(reply.result.tokens.len(), 2);
    // A partial batch parks until close() flushes the drain.
    let partial = queue.submit(TokenBatch::random(2, 1, 2)).expect("accepted");
    queue.close();
    assert_eq!(
        partial
            .wait()
            .expect("flushed by close")
            .result
            .tokens
            .len(),
        1
    );
    assert_eq!(queue.shutdown().tokens(), 3);
}

#[test]
fn into_serving_carries_session_stats_and_rejects_foreign_backends() {
    let cfg = MacroConfig::new(2, 2);
    let program = MacroProgram::random(2, 2, 4);
    // A session that already ran batches directly...
    let mut session = Session::builder(cfg.clone())
        .program(program.clone())
        .build()
        .expect("program fits");
    session.run(&TokenBatch::random(2, 5, 1)).expect("runs");
    assert_eq!(session.stats().tokens(), 5);
    // ...keeps those measurements when it becomes a queue.
    let queue = session
        .into_serving(QueuePolicy::default())
        .expect("queue comes up");
    assert_eq!(queue.stats().tokens(), 5);
    queue
        .submit(TokenBatch::random(2, 3, 2))
        .expect("accepted")
        .wait()
        .expect("served");
    let stats = queue.shutdown();
    assert_eq!(stats.tokens(), 8, "direct + queued batches accumulate");
    assert_eq!(stats.queued_requests(), 1);

    // A session wrapping a caller-constructed backend has no recipe to
    // rebuild on the dispatcher thread: typed error, not a panic.
    let foreign = Session::from_backend(cfg, Box::new(FunctionalBackend::new(program)));
    match foreign.into_serving(QueuePolicy::default()) {
        Err(BackendError::QueueUnavailable { reason }) => {
            assert!(reason.contains("from_factory"), "{reason}");
        }
        other => panic!("expected QueueUnavailable, got {other:?}"),
    }
}
