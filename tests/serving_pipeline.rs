//! End-to-end tests for `PipelineGraph` streaming dataflow serving: a
//! whole multi-layer `Network` deployed as one chained pipeline of host
//! and macro stages.
//!
//! The contract under test:
//!
//! - **Bit-identicality** — the deployed pipeline's logits equal
//!   `Network::forward` bit for bit, for any image, under any number of
//!   concurrent submitters, through transient chaos faults and replica
//!   crashes (the recovery machinery must be invisible in the data).
//! - **Backpressure** — bounded inter-stage queues: a slow stage makes
//!   intake answer typed `QueueFull`, never unbounded memory.
//! - **Zero leaked tickets** — every accepted submission resolves, with
//!   a reply or a typed `BackendError::Stage` naming the failing stage,
//!   including when a whole stage dies and in-flight work is drained.
//!
//! The chaos seed is `MADDPIPE_CHAOS_SEED` when set (CI sweeps several),
//! 7 otherwise; every fault schedule is a pure function of it.

use maddpipe::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The chaos seed under test: `MADDPIPE_CHAOS_SEED` when set (the CI
/// stress job sweeps a few), 7 otherwise.
fn chaos_seed() -> u64 {
    std::env::var("MADDPIPE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The demo CNN every test deploys: `(2, 8, 8)` images → two macro conv
/// stages interleaved with host ReLU/pool/affine → 10 logits.
fn demo_network() -> Network {
    Network::demo(42)
}

/// Lowers `net` onto functional backends with `replicas` replicas per
/// conv stage and a generous retry budget.
fn demo_spec(net: &Network, replicas: usize) -> PipelineSpec {
    net.to_pipeline_spec(
        BackendKind::Functional { workers: 1 },
        &StagePolicy::default()
            .with_replicas(replicas)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(8)
                    .with_backoff(Duration::from_micros(50))
                    .with_respawn(2),
            ),
    )
    .expect("the demo network lowers")
}

/// Submits through intake backpressure: a full queue is a retry, not a
/// failure — exactly what a well-behaved client does with `QueueFull`.
fn submit_retrying(graph: &PipelineGraph, img: &[f32]) -> PipelineTicket {
    loop {
        match graph.submit(img.to_vec()) {
            Ok(t) => return t,
            Err(BackendError::QueueFull { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}

/// Rewrites conv stage `target` (index into the spec) through `wrap` —
/// the hook that injects a `ChaosBackend` into the middle of a deployed
/// pipeline while every other stage stays pristine.
fn wrap_stage(
    spec: &PipelineSpec,
    target: usize,
    wrap: impl Fn(ReplicaFactory) -> ReplicaFactory,
) -> PipelineSpec {
    let mut out = PipelineSpec::new();
    for (i, stage) in spec.stages().iter().enumerate() {
        match stage {
            StageSpec::Macro(m) if i == target => {
                out.push(StageSpec::Macro(m.clone().map_recipe(&wrap)));
            }
            other => out.push(other.clone()),
        }
    }
    out
}

#[test]
fn concurrent_submitters_get_logits_bit_identical_to_forward() {
    const CLIENTS: usize = 6;
    const IMAGES_PER_CLIENT: usize = 8;

    let net = demo_network();
    let graph = PipelineGraph::build(
        demo_spec(&net, 2),
        PipelinePolicy::default().with_capacity(16),
    )
    .expect("graph deploys");

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let graph = &graph;
            let net = &net;
            scope.spawn(move || {
                // Submit everything first, then wait — all clients'
                // images really stream through the stages together.
                let images: Vec<Vec<f32>> = (0..IMAGES_PER_CLIENT)
                    .map(|r| Network::demo_image(1 + (c as u64) * 1000 + r as u64, net.input_len()))
                    .collect();
                let tickets: Vec<PipelineTicket> = images
                    .iter()
                    .map(|img| submit_retrying(graph, img))
                    .collect();
                for (img, ticket) in images.iter().zip(tickets) {
                    let reply = ticket.wait().expect("served");
                    let expected = net.forward(img).expect("host forward");
                    assert_eq!(reply.outputs, expected, "bit-identical logits");
                }
            });
        }
    });

    // Per-stage accounting: every image passed through every stage.
    let total = (CLIENTS * IMAGES_PER_CLIENT) as u64;
    let stats = graph.shutdown();
    assert_eq!(stats.images(), total);
    assert_eq!(stats.stage_profiles().len(), net.len());
    assert_eq!(stats.stage_occupancy().len(), net.len());
    for (profile, name) in stats.stage_profiles().iter().zip(net.layer_names()) {
        assert_eq!(profile.name(), name);
        assert_eq!(profile.items(), total, "stage {name} saw every image");
        assert!(profile.p99_residence().is_some(), "stage {name} measured");
    }
    assert!(stats.images_per_sec().is_some());
    assert!(stats.p99_image_latency().is_some());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// The tentpole acceptance property: for random images, a deployed
    /// pipeline is bit-identical to the host `Network::forward`, with
    /// several images in flight at once.
    #[test]
    fn prop_pipeline_logits_match_forward(
        images in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 2 * 8 * 8),
            1..5,
        )
    ) {
        let net = demo_network();
        let graph = PipelineGraph::build(demo_spec(&net, 1), PipelinePolicy::default())
            .expect("graph deploys");
        let tickets: Vec<PipelineTicket> = images
            .iter()
            .map(|img| graph.submit(img.clone()).expect("capacity covers the burst"))
            .collect();
        for (img, ticket) in images.iter().zip(tickets) {
            let reply = ticket.wait().expect("served");
            let expected = net.forward(img).expect("host forward");
            prop_assert_eq!(&reply.outputs, &expected);
        }
        graph.shutdown();
    }
}

#[test]
fn a_slow_stage_exerts_backpressure_at_intake_with_bounded_memory() {
    // A two-stage pipeline whose first stage is deliberately slow:
    // submissions beyond the bounded queues must answer QueueFull at
    // intake — backpressure as a typed signal, not unbounded buffering.
    let spec = PipelineSpec::new()
        .host("slow", |x: Vec<f32>| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(x)
        })
        .host("identity", Ok);
    let capacity = 2;
    let graph = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(capacity))
        .expect("graph deploys");

    // Hammer the intake: far more submissions than the queues hold.
    let mut accepted = Vec::new();
    let mut rejected = 0u32;
    for i in 0..64 {
        match graph.submit(vec![i as f32]) {
            Ok(t) => accepted.push(t),
            Err(BackendError::QueueFull { limit }) => {
                assert!(
                    matches!(limit, QueueLimit::Requests { max_depth } if max_depth == capacity),
                    "the refusal names the intake bound: {limit:?}"
                );
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        // In-flight work is bounded by the queues plus the stages'
        // own hands — never proportional to the submission count.
        assert!(
            graph.depth() <= 2 * capacity + 2,
            "depth {} outgrew the bounded queues",
            graph.depth()
        );
    }
    assert!(rejected > 0, "the slow stage never pushed back");
    assert!(!accepted.is_empty(), "some of the burst was admitted");

    // Backpressure is flow control, not loss: everything accepted is
    // served, in submission order.
    let mut last = f32::NEG_INFINITY;
    for ticket in accepted {
        let reply = ticket.wait().expect("accepted work is served");
        assert!(reply.outputs[0] > last, "FIFO across the pipeline");
        last = reply.outputs[0];
    }
    assert_eq!(graph.depth(), 0, "zero leaked tickets");
    graph.shutdown();
}

#[test]
fn chaos_transient_faults_are_invisible_in_the_logits() {
    // A ChaosBackend wrapped around the *second* conv stage injects
    // seeded transient failures mid-pipeline; the stage's pool retries
    // them invisibly — every reply stays bit-identical to forward.
    let net = demo_network();
    let target = 3; // "3-conv", the middle macro stage
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_transient_rate(0.25);
    let spec = wrap_stage(&demo_spec(&net, 2), target, |recipe| {
        wrap_recipe(recipe, chaos, Arc::clone(&state))
    });
    let graph =
        PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(16)).expect("deploys");

    let images: Vec<Vec<f32>> = (0..24)
        .map(|r| Network::demo_image(9000 + r as u64, net.input_len()))
        .collect();
    let tickets: Vec<PipelineTicket> = images
        .iter()
        .map(|img| submit_retrying(&graph, img))
        .collect();
    for (img, ticket) in images.iter().zip(tickets) {
        let reply = ticket.wait().expect("served through transient chaos");
        assert_eq!(
            reply.outputs,
            net.forward(img).expect("host forward"),
            "retries are invisible in the data"
        );
    }

    let stats = graph.shutdown();
    assert_eq!(stats.images(), 24);
    assert!(
        stats.stage_profiles()[target].retries() >= 1,
        "a 25% transient rate over 24 images cannot round to zero retries"
    );
}

#[test]
fn a_forced_replica_crash_respawns_and_the_stream_survives() {
    // The middle conv stage's only replica panics mid-stream; the
    // stage's RecoveryPolicy respawns it from the recipe and the
    // survivors' replies stay bit-identical. Zero leaked tickets.
    let net = demo_network();
    let target = 3;
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_panic_on_call(5);
    let spec = wrap_stage(&demo_spec(&net, 1), target, |recipe| {
        wrap_recipe(recipe, chaos, Arc::clone(&state))
    });
    let graph =
        PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(16)).expect("deploys");

    let images: Vec<Vec<f32>> = (0..16)
        .map(|r| Network::demo_image(7000 + r as u64, net.input_len()))
        .collect();
    let tickets: Vec<PipelineTicket> = images
        .iter()
        .map(|img| submit_retrying(&graph, img))
        .collect();
    for (img, ticket) in images.iter().zip(tickets) {
        let reply = ticket.wait().expect("served through the crash");
        assert_eq!(
            reply.outputs,
            net.forward(img).expect("host forward"),
            "the respawn is invisible in the data"
        );
    }
    assert_eq!(graph.depth(), 0, "zero leaked tickets");

    let stats = graph.shutdown();
    assert_eq!(stats.images(), 16);
    assert!(
        stats.stage_profiles()[target].restarts() >= 1,
        "the forced crash respawned: {:?}",
        stats.stage_profiles()[target]
    );
    assert_eq!(stats.pool_health().quarantined, 0);
}

#[test]
fn wrong_width_replies_are_typed_stage_errors_and_the_pipeline_survives() {
    // A chaos fault breaking the one-observation-per-token contract in
    // the middle stage must cost exactly the affected submissions — as
    // a typed Stage error naming stage and cause — while the pipeline
    // itself stays up and later, clean work still serves.
    let net = demo_network();
    let target = 3;
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_wrong_width_rate(1.0);
    let spec = wrap_stage(&demo_spec(&net, 1), target, |recipe| {
        wrap_recipe(recipe, chaos, Arc::clone(&state))
    });
    let graph =
        PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(8)).expect("deploys");

    let image = Network::demo_image(1, net.input_len());
    let tickets: Vec<PipelineTicket> = (0..4)
        .map(|_| graph.submit(image.clone()).expect("accepted"))
        .collect();
    for ticket in tickets {
        let err = ticket.wait().expect_err("truncated data is an error");
        assert!(!err.is_transient(), "a payload fault is fatal, not a retry");
        match err {
            BackendError::Stage { stage, source } => {
                assert_eq!(stage, target, "the error names the broken stage");
                assert!(
                    matches!(*source, BackendError::MalformedProgram { .. }),
                    "and the payload fault: {source:?}"
                );
            }
            other => panic!("expected a Stage error, got {other:?}"),
        }
    }
    assert_eq!(graph.depth(), 0, "zero leaked tickets");

    // The stage itself survived (the fault is per-payload, not fatal to
    // the replica): the pipeline still *accepts* work — intake after a
    // stage death would be refused with the stored failure instead.
    let ticket = graph.submit(image).expect("the pipeline is still open");
    let err = ticket.wait().expect_err("the chaos is still armed");
    assert!(matches!(err, BackendError::Stage { .. }), "{err:?}");
    // The pool coalesces riders into micro-batches, so 5 submissions
    // can be fewer backend calls — but never zero.
    assert!(state.calls() >= 1, "the chaos schedule really fired");
    graph.shutdown();
}

#[test]
fn a_dead_stage_drains_in_flight_work_with_typed_errors_no_leaks() {
    // Exhaust a stage's recovery budget (single replica, a forced
    // crash, zero respawns): the stage dies. Every in-flight ticket
    // must resolve with a typed Stage error — drained, not leaked — and
    // subsequent submissions are refused with the same stored error.
    let net = demo_network();
    let target = 0; // kill the *first* conv so everything in flight drains
    let state = ChaosState::new();
    let chaos = ChaosConfig::default()
        .with_seed(chaos_seed())
        .with_panic_on_call(0); // the stage's only replica dies immediately
    let spec = net
        .to_pipeline_spec(
            BackendKind::Functional { workers: 1 },
            &StagePolicy::default().with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(1)
                    .with_backoff(Duration::from_micros(10))
                    .with_respawn(0), // quarantine kills the one-replica pool
            ),
        )
        .expect("lowers");
    let spec = wrap_stage(&spec, target, |recipe| {
        wrap_recipe(recipe, chaos, Arc::clone(&state))
    });
    let graph =
        PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(8)).expect("deploys");

    let image = Network::demo_image(2, net.input_len());
    let tickets: Vec<PipelineTicket> = (0..6)
        .map(|_| graph.submit(image.clone()).expect("accepted while alive"))
        .collect();
    let mut stage_errors = 0;
    for ticket in tickets {
        // Every ticket resolves — the zero-leak invariant under stage
        // death — each with a typed error naming a stage.
        let err = ticket.wait().expect_err("the stage is beyond recovery");
        match err {
            BackendError::Stage { .. } => stage_errors += 1,
            other => panic!("expected a typed Stage error, got {other:?}"),
        }
    }
    assert_eq!(stage_errors, 6);
    assert_eq!(graph.depth(), 0, "zero leaked tickets after stage death");

    // New work is refused with the stored failure, not silently queued.
    let err = graph
        .submit(image)
        .expect_err("a dead pipeline refuses intake");
    assert!(matches!(err, BackendError::Stage { .. }), "{err:?}");
    graph.shutdown();
}

#[test]
fn a_timed_out_wait_names_the_stage_the_request_is_blocked_at() {
    // The stage-position probe: when a wait times out, the ticket can
    // say *where* the request is stuck instead of timing out opaquely.
    let spec = PipelineSpec::new()
        .host("fast", Ok)
        .host("glacial", |x: Vec<f32>| {
            std::thread::sleep(Duration::from_millis(150));
            Ok(x)
        });
    let graph = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(4))
        .expect("graph deploys");

    let tickets: Vec<PipelineTicket> = (0..3)
        .map(|i| graph.submit(vec![i as f32]).expect("accepted"))
        .collect();
    let mut blocked_at = Vec::new();
    for ticket in tickets {
        match ticket.wait_timeout(Duration::from_millis(5)) {
            Ok(resolved) => {
                resolved.expect("a resolved ticket carries its reply");
            }
            Err(ticket) => {
                // The probe names the blocking stage.
                let state = ticket.state();
                let stage = state.stage().expect("unresolved means positioned");
                assert!(stage < graph.stage_names().len());
                blocked_at.push(graph.stage_names()[stage].clone());
                // And the handed-back ticket still resolves normally.
                let reply = ticket.wait().expect("served after the wait resumes");
                assert!(!reply.outputs.is_empty());
            }
        }
    }
    assert!(
        blocked_at
            .iter()
            .any(|name| name == "glacial" || name == "fast"),
        "at least one wait timed out against the glacial stage: {blocked_at:?}"
    );
    assert_eq!(graph.depth(), 0);
    graph.shutdown();
}

#[test]
fn forward_trace_matches_the_lowered_specs_reference_trace() {
    // The per-layer golden contract: the network's host-side activation
    // trace and the lowered spec's synchronous reference trace agree
    // bit for bit, layer by layer — the foundation the streaming
    // bit-identicality tests stand on.
    let net = demo_network();
    let spec = demo_spec(&net, 1);
    assert_eq!(spec.stage_names(), net.layer_names());
    for seed in [1u64, 2, 3] {
        let image = Network::demo_image(seed, net.input_len());
        let host = net.forward_trace(&image).expect("host trace");
        let lowered = spec.reference_trace(&image).expect("lowered trace");
        assert_eq!(host.len(), lowered.len());
        for (h, l) in host.iter().zip(&lowered) {
            assert_eq!(&h.output, l, "layer {} diverged", h.name);
        }
        assert_eq!(
            host.last().expect("nonempty").output,
            net.forward(&image).expect("forward"),
            "the trace ends at the logits"
        );
    }
}
