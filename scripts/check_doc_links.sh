#!/usr/bin/env bash
# Checks the repo's narrative docs for broken references:
#
#  1. every local markdown-link target in README.md and
#     docs/ARCHITECTURE.md points at a file or directory that exists;
#  2. every backtick-quoted repo path in docs/ARCHITECTURE.md
#     (crates/…, tests/…, examples/…, results/…, src/…, vendor/…,
#     scripts/…) exists, so the architecture page cannot drift from the
#     tree it describes.
#
# Run from anywhere: paths resolve relative to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check_path() {
    local doc="$1" ref="$2"
    local path="${ref%%#*}" # drop in-page anchors
    [ -z "$path" ] && return 0
    if [ ! -e "$path" ]; then
        echo "BROKEN: $doc -> $ref"
        fail=1
    fi
}

for doc in README.md docs/ARCHITECTURE.md; do
    if [ ! -f "$doc" ]; then
        echo "BROKEN: $doc is missing"
        fail=1
        continue
    fi
    # Markdown link targets: ](target), skipping absolute URLs/anchors.
    while IFS= read -r target; do
        check_path "$doc" "$target"
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' \
             | grep -vE '^(https?:|#|mailto:)' || true)
done

# Backtick-quoted repo paths in the architecture page.
while IFS= read -r target; do
    check_path docs/ARCHITECTURE.md "$target"
done < <(grep -oE '`[A-Za-z0-9_./-]+`' docs/ARCHITECTURE.md | tr -d '`' \
         | grep -E '^(crates|tests|examples|results|src|vendor|scripts|docs)/' \
         | sort -u || true)

if [ "$fail" -eq 0 ]; then
    echo "doc links OK"
fi
exit "$fail"
