//! Offline API-subset shim for the parts of `criterion` 0.5 this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so instead of
//! criterion's statistical engine this shim runs a short warm-up, then a
//! fixed number of timed samples, and prints the median per-iteration time
//! (plus throughput when configured). It is a smoke-and-ballpark harness:
//! enough to keep `cargo bench` meaningful offline, not a substitute for
//! criterion's confidence intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Ends the group (upstream criterion emits summary artifacts here).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Runs the routine repeatedly, recording wall-clock per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: one call, then enough calls to estimate batching.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        // Batch very fast routines so timer overhead doesn't dominate.
        let per_sample = if first < Duration::from_micros(20) {
            (Duration::from_micros(200).as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed().div_f64(per_sample as f64));
        }
    }

    fn report(mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let line = match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                format!("{group}/{id}: median {median:?} ({rate:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                format!("{group}/{id}: median {median:?} ({rate:.3e} B/s)")
            }
            None => format!("{group}/{id}: median {median:?}"),
        };
        println!("{line}");
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
