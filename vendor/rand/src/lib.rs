//! Offline API-subset shim for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the surface its code
//! actually calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong for the
//! Monte-Carlo and data-synthesis workloads here, but *not* bit-compatible
//! with upstream `StdRng` (ChaCha12). All sequences are fully determined by
//! the seed, which is what the workspace's reproducibility tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from the given range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// The standard distribution: `[0, 1)` for floats, full range for integers.
pub struct Standard;

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a 64-bit random word onto `[0, span)` without modulo bias
/// (Lemire's multiply-shift reduction, without the rejection step: the
/// residual bias over a 64-bit space is below observability for
/// simulation workloads).
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(reduce(rng.next_u64(), span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(reduce(rng.next_u64(), span + 1) as $wide) as $t
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                // Clamp guards the open end against rounding in
                // `start + span * unit`.
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Not bit-compatible with upstream `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_land_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-128i32..=127);
            assert!((-128..=127).contains(&x));
            let u: usize = rng.gen_range(0..9);
            assert!(u < 9);
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn full_width_int_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
