//! Offline API-subset shim for the parts of `proptest` 1.x this workspace
//! uses: the [`proptest!`] macro, [`Strategy`] ranges, [`any`],
//! [`collection::vec`], [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so property tests run
//! on this minimal engine instead of upstream proptest. Differences that
//! matter to a test author:
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! * **Deterministic sampling.** Each test's RNG is seeded from a hash of
//!   the test's name (override the number of cases with the
//!   `PROPTEST_CASES` environment variable).
//! * `prop_assert!` / `prop_assert_eq!` panic immediately rather than
//!   returning a `TestCaseError`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic RNG handed to strategies by the [`proptest!`] macro.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test: the seed is a stable hash of the
    /// name, so every run of the same test sees the same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a, stable across platforms and compiler versions.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// (without shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `map`, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// A uniform choice between boxed strategies of one value type — the
/// engine behind [`prop_oneof!`]. (Upstream proptest supports weights;
/// this shim draws uniformly.)
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates an empty union; sampling panics until an option is added.
    pub fn empty() -> Union<V> {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    #[must_use]
    pub fn or(mut self, option: impl Strategy<Value = V> + 'static) -> Union<V> {
        self.options.push(Box::new(option));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs an option");
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Uniform choice between strategies producing the same type, mirroring
/// `proptest::prop_oneof` (without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let u = $crate::Union::empty();
        $(let u = u.or($strat);)+
        u
    }};
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A type with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// A length constraint for [`vec()`](fn@vec): either exact or a
    /// half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user needs in scope, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Map,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a property body (panics on failure; upstream
/// proptest returns an error instead).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that checks the body against `config.cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::TestRng::for_test(stringify!($name));
            for __proptest_case in 0..config.cases {
                $(
                    let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
