//! Behavioural tests of the proptest shim's macro engine: the generated
//! test really iterates the configured number of cases, sampling is
//! deterministic per test name, and the strategy surface the workspace
//! uses produces in-range values.

use proptest::collection;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 17, ..ProptestConfig::default() })]

    #[test]
    fn seventeen_cases(x in 0u64..1000) {
        let _ = x;
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn macro_runs_exactly_the_configured_cases() {
    // `seventeen_cases` is a plain fn under the attribute: invoke it once
    // more and check the counter moved by exactly 17. The harness may run
    // the generated test concurrently, so assert on the delta being a
    // multiple of 17 as well as our own call contributing 17.
    let before = CASES_RUN.load(Ordering::SeqCst);
    seventeen_cases();
    let after = CASES_RUN.load(Ordering::SeqCst);
    assert!(after - before >= 17, "our call must add 17 cases");
    assert_eq!((after - before) % 17, 0, "cases come in blocks of 17");
}

#[test]
fn sampling_is_deterministic_per_test_name() {
    let strat = collection::vec(-100.0f32..100.0, 9);
    let mut a = TestRng::for_test("sampling_is_deterministic");
    let mut b = TestRng::for_test("sampling_is_deterministic");
    for _ in 0..50 {
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
    let mut c = TestRng::for_test("a_different_test");
    assert_ne!(strat.sample(&mut a), strat.sample(&mut c));
}

#[test]
fn strategies_stay_in_range() {
    let mut rng = TestRng::for_test("strategies_stay_in_range");
    for _ in 0..1000 {
        let v = (0.001f32..10.0).sample(&mut rng);
        assert!((0.001..10.0).contains(&v));
        let k = (-127i32..=127).sample(&mut rng);
        assert!((-127..=127).contains(&k));
        let n = (1usize..=32).sample(&mut rng);
        assert!((1..=32).contains(&n));
        let b = any::<i8>().sample(&mut rng);
        let _ = b; // full range by construction
        let xs = collection::vec(any::<i8>(), 0..64).sample(&mut rng);
        assert!(xs.len() < 64);
        let fixed = collection::vec(-1.0f32..1.0, 9).sample(&mut rng);
        assert_eq!(fixed.len(), 9);
        assert!(fixed.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}

#[test]
fn any_covers_the_signed_byte_range() {
    let mut rng = TestRng::for_test("any_covers");
    let mut seen_low = false;
    let mut seen_high = false;
    for _ in 0..4000 {
        let v = any::<i8>().sample(&mut rng);
        seen_low |= v < -100;
        seen_high |= v > 100;
    }
    assert!(seen_low && seen_high, "any::<i8>() must cover the tails");
}

proptest! {
    /// The no-config form defaults to `ProptestConfig::default()`.
    #[test]
    fn default_config_form_compiles(a in any::<u8>(), b in any::<u8>()) {
        prop_assert!(u16::from(a) + u16::from(b) <= 510);
        prop_assert_eq!(a as u16 + b as u16, u16::from(a) + u16::from(b));
    }

    /// `mut` bindings in the pattern position must work (properties.rs
    /// relies on this).
    #[test]
    fn mut_pattern_binding(mut xs in proptest::collection::vec(any::<i8>(), 0..8)) {
        xs.reverse();
        prop_assert!(xs.len() < 8);
    }
}

#[test]
fn prop_map_and_tuples_compose() {
    use proptest::prelude::*;
    let mut rng = TestRng::for_test("prop_map_and_tuples_compose");
    let strat = (0u8..10, 100u8..110).prop_map(|(a, b)| u32::from(a) + u32::from(b));
    for _ in 0..200 {
        let v = strat.sample(&mut rng);
        assert!((100..120).contains(&v), "{v}");
    }
}

#[test]
fn prop_oneof_draws_every_alternative() {
    use proptest::prelude::*;
    let mut rng = TestRng::for_test("prop_oneof_draws_every_alternative");
    let strat = prop_oneof![
        (0u8..1).prop_map(|_| "a"),
        (0u8..1).prop_map(|_| "b"),
        (0u8..1).prop_map(|_| "c"),
    ];
    let mut seen = std::collections::HashSet::new();
    for _ in 0..200 {
        seen.insert(strat.sample(&mut rng));
    }
    assert_eq!(seen.len(), 3, "all three arms must be reachable");
}
