//! # maddpipe
//!
//! A Rust reproduction of *"Lookup Table-based Multiplication-free
//! All-digital DNN Accelerator Featuring Self-Synchronous Pipeline
//! Accumulation"* (DAC 2025, arXiv:2506.16800) — the MADDNESS-based
//! accelerator with a dual-rail dynamic-logic BDT encoder, two-port
//! 10T-SRAM lookup tables, carry-save pipeline accumulation and four-phase
//! handshake control.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tech`] | 22 nm technology models: alpha-power delay, corners, energy |
//! | [`sim`] | deterministic event-driven logic simulator with energy metering |
//! | [`sram`] | two-port 10T-SRAM columns, read-completion detection, replica study |
//! | [`amm`] | the MADDNESS algorithm: BDT hashing, ridge prototypes, INT8 LUTs |
//! | [`core`] | the accelerator: DLC encoder, decoders, self-synchronous pipeline, PPA model |
//! | [`runtime`] | the execution API: batched [`runtime::Session`]s over functional / RTL / analytic / sharded backends |
//! | [`baselines`] | models of the compared accelerators (\[21\] analog DTC, \[22\] Stella Nera) |
//! | [`nn`] | ResNet9 + synthetic CIFAR + MADDNESS layer substitution |
//!
//! ## Quick start
//!
//! ```
//! use maddpipe::prelude::*;
//!
//! // Evaluate the paper's flagship macro at its headline operating point.
//! let report = MacroModel::new(MacroConfig::paper_flagship()).evaluate();
//! println!("{report}");
//! assert!(report.tops_per_watt > 150.0);
//!
//! // Run a token through the full event-driven netlist of a small macro.
//! let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
//! let program = MacroProgram::random(2, 2, 1);
//! let mut rtl = AcceleratorRtl::build(&cfg, &program);
//! let token = vec![[3i8; SUBVECTOR_LEN]; 2];
//! let result = rtl.run_token(&token).expect("token completes");
//! assert_eq!(result.outputs, program.reference_output(&token));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use maddpipe_amm as amm;
pub use maddpipe_baselines as baselines;
pub use maddpipe_core as core;
pub use maddpipe_nn as nn;
pub use maddpipe_runtime as runtime;
pub use maddpipe_sim as sim;
pub use maddpipe_sram as sram;
pub use maddpipe_tech as tech;

/// One import for the common experiment surface.
pub mod prelude {
    pub use maddpipe_amm::prelude::*;
    pub use maddpipe_baselines::prelude::*;
    pub use maddpipe_core::prelude::*;
    pub use maddpipe_nn::prelude::*;
    pub use maddpipe_runtime::prelude::*;
    pub use maddpipe_sram::{ReplicaStudy, SramModel};
}
