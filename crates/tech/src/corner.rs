//! Process corners and operating points.
//!
//! The paper evaluates five global corners of the 22 nm process — TTG, FFG,
//! SSG, SFG and FSG — across supply voltages from 0.5 V to 1.0 V at 25 °C
//! (Fig. 6). Corner naming follows foundry convention: the first letter is
//! the NMOS speed, the second the PMOS speed, and the trailing `G` marks a
//! *global* (inter-die) corner.

use crate::units::{Celsius, Volts};
use core::fmt;

/// Relative device speed at a global process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceSpeed {
    /// Slow device: higher threshold voltage, less drive current.
    Slow,
    /// Typical device.
    Typical,
    /// Fast device: lower threshold voltage, more drive current.
    Fast,
}

impl DeviceSpeed {
    /// Threshold-voltage shift of this speed grade relative to typical,
    /// expressed as a multiple of the process' global corner sigma.
    ///
    /// Slow silicon has a *higher* Vth (less overdrive), fast silicon a
    /// lower one.
    #[inline]
    pub fn vth_sigma_multiplier(self) -> f64 {
        match self {
            DeviceSpeed::Slow => 1.0,
            DeviceSpeed::Typical => 0.0,
            DeviceSpeed::Fast => -1.0,
        }
    }
}

impl fmt::Display for DeviceSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceSpeed::Slow => "slow",
            DeviceSpeed::Typical => "typical",
            DeviceSpeed::Fast => "fast",
        };
        f.write_str(s)
    }
}

/// Global process corner of a CMOS technology.
///
/// ```
/// use maddpipe_tech::corner::{Corner, DeviceSpeed};
///
/// assert_eq!(Corner::Sfg.nmos(), DeviceSpeed::Slow);
/// assert_eq!(Corner::Sfg.pmos(), DeviceSpeed::Fast);
/// assert_eq!(Corner::ALL.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Corner {
    /// Typical NMOS, typical PMOS (the nominal corner).
    #[default]
    Ttg,
    /// Fast NMOS, fast PMOS.
    Ffg,
    /// Slow NMOS, slow PMOS.
    Ssg,
    /// Slow NMOS, fast PMOS.
    Sfg,
    /// Fast NMOS, slow PMOS.
    Fsg,
}

impl Corner {
    /// All corners evaluated in the paper, in the order they appear in Fig. 6.
    pub const ALL: [Corner; 5] = [
        Corner::Ttg,
        Corner::Ffg,
        Corner::Ssg,
        Corner::Sfg,
        Corner::Fsg,
    ];

    /// NMOS speed grade at this corner.
    #[inline]
    pub fn nmos(self) -> DeviceSpeed {
        match self {
            Corner::Ttg => DeviceSpeed::Typical,
            Corner::Ffg | Corner::Fsg => DeviceSpeed::Fast,
            Corner::Ssg | Corner::Sfg => DeviceSpeed::Slow,
        }
    }

    /// PMOS speed grade at this corner.
    #[inline]
    pub fn pmos(self) -> DeviceSpeed {
        match self {
            Corner::Ttg => DeviceSpeed::Typical,
            Corner::Ffg | Corner::Sfg => DeviceSpeed::Fast,
            Corner::Ssg | Corner::Fsg => DeviceSpeed::Slow,
        }
    }

    /// Parses the usual corner spelling, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCornerError`] when the name is not one of
    /// `TTG/FFG/SSG/SFG/FSG`.
    ///
    /// ```
    /// use maddpipe_tech::corner::Corner;
    /// assert_eq!("ffg".parse::<Corner>().unwrap(), Corner::Ffg);
    /// assert!("ttx".parse::<Corner>().is_err());
    /// ```
    pub fn parse(name: &str) -> Result<Corner, ParseCornerError> {
        match name.to_ascii_uppercase().as_str() {
            "TTG" | "TT" => Ok(Corner::Ttg),
            "FFG" | "FF" => Ok(Corner::Ffg),
            "SSG" | "SS" => Ok(Corner::Ssg),
            "SFG" | "SF" => Ok(Corner::Sfg),
            "FSG" | "FS" => Ok(Corner::Fsg),
            _ => Err(ParseCornerError {
                input: name.to_owned(),
            }),
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Corner::Ttg => "TTG",
            Corner::Ffg => "FFG",
            Corner::Ssg => "SSG",
            Corner::Sfg => "SFG",
            Corner::Fsg => "FSG",
        };
        f.write_str(s)
    }
}

impl core::str::FromStr for Corner {
    type Err = ParseCornerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Corner::parse(s)
    }
}

/// Error returned when parsing an unknown corner name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCornerError {
    input: String,
}

impl fmt::Display for ParseCornerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown process corner `{}` (expected TTG, FFG, SSG, SFG or FSG)",
            self.input
        )
    }
}

impl std::error::Error for ParseCornerError {}

/// A complete electrical operating point: supply, corner and temperature.
///
/// ```
/// use maddpipe_tech::corner::{Corner, OperatingPoint};
/// use maddpipe_tech::units::Volts;
///
/// let op = OperatingPoint::new(Volts(0.5), Corner::Ttg);
/// assert_eq!(op.temp.0, 25.0); // the paper's fixed simulation temperature
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Global process corner.
    pub corner: Corner,
    /// Junction temperature.
    pub temp: Celsius,
}

impl OperatingPoint {
    /// Creates an operating point at the paper's simulation temperature
    /// (25 °C).
    pub fn new(vdd: Volts, corner: Corner) -> OperatingPoint {
        OperatingPoint {
            vdd,
            corner,
            temp: Celsius(25.0),
        }
    }

    /// Replaces the temperature, returning the modified operating point.
    #[must_use]
    pub fn with_temp(mut self, temp: Celsius) -> OperatingPoint {
        self.temp = temp;
        self
    }
}

impl Default for OperatingPoint {
    /// Nominal 22 nm point: 0.8 V, TTG, 25 °C.
    fn default() -> OperatingPoint {
        OperatingPoint::new(Volts(0.8), Corner::Ttg)
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.vdd, self.corner, self.temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_device_speeds() {
        assert_eq!(Corner::Ttg.nmos(), DeviceSpeed::Typical);
        assert_eq!(Corner::Ttg.pmos(), DeviceSpeed::Typical);
        assert_eq!(Corner::Ffg.nmos(), DeviceSpeed::Fast);
        assert_eq!(Corner::Ffg.pmos(), DeviceSpeed::Fast);
        assert_eq!(Corner::Ssg.nmos(), DeviceSpeed::Slow);
        assert_eq!(Corner::Ssg.pmos(), DeviceSpeed::Slow);
        assert_eq!(Corner::Sfg.nmos(), DeviceSpeed::Slow);
        assert_eq!(Corner::Sfg.pmos(), DeviceSpeed::Fast);
        assert_eq!(Corner::Fsg.nmos(), DeviceSpeed::Fast);
        assert_eq!(Corner::Fsg.pmos(), DeviceSpeed::Slow);
    }

    #[test]
    fn sigma_multipliers_are_signed() {
        assert_eq!(DeviceSpeed::Slow.vth_sigma_multiplier(), 1.0);
        assert_eq!(DeviceSpeed::Typical.vth_sigma_multiplier(), 0.0);
        assert_eq!(DeviceSpeed::Fast.vth_sigma_multiplier(), -1.0);
    }

    #[test]
    fn parse_round_trips_display() {
        for c in Corner::ALL {
            let shown = c.to_string();
            assert_eq!(shown.parse::<Corner>().unwrap(), c);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "XYZ".parse::<Corner>().unwrap_err();
        assert!(err.to_string().contains("XYZ"));
    }

    #[test]
    fn default_operating_point_is_nominal() {
        let op = OperatingPoint::default();
        assert_eq!(op.vdd, Volts(0.8));
        assert_eq!(op.corner, Corner::Ttg);
        assert_eq!(op.temp, Celsius(25.0));
    }

    #[test]
    fn with_temp_overrides() {
        let op = OperatingPoint::default().with_temp(Celsius(85.0));
        assert_eq!(op.temp.0, 85.0);
    }

    #[test]
    fn display_is_informative() {
        let op = OperatingPoint::new(Volts(0.5), Corner::Ssg);
        let s = op.to_string();
        assert!(s.contains("SSG"), "{s}");
        assert!(s.contains("500.00 mV"), "{s}");
    }
}
