//! Local (within-die) random variation sampling.
//!
//! Global corners shift every device on the die together; *local* variation
//! is the per-instance random mismatch that the paper's per-column
//! read-completion detection is designed to tolerate ("the proposed design
//! features an independent RCD circuit for each column, enabling accurate
//! detection even under high variability conditions", §III-C).
//!
//! To keep `maddpipe-tech` dependency-free, sampling uses a small embedded
//! SplitMix64 generator rather than the `rand` crate; it is deterministic for
//! a given seed, which makes Monte-Carlo experiments reproducible.

use core::fmt;

/// Deterministic SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only 64 bits of state, and is the
/// standard choice for seeding; its statistical quality is more than
/// sufficient for Monte-Carlo mismatch sampling.
///
/// ```
/// use maddpipe_tech::variation::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample (Box–Muller; one value per call, the pair's
    /// second member is discarded for simplicity).
    pub fn next_standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-300 {
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (core::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// A per-instance multiplicative mismatch model: each sampled instance gets a
/// delay multiplier `max(ε, 1 + σ·N(0,1))`.
///
/// ```
/// use maddpipe_tech::variation::Mismatch;
///
/// let mm = Mismatch::new(0.05, 42);
/// let mut m = mm.sampler();
/// let x = m.sample();
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    sigma: f64,
    seed: u64,
}

impl Mismatch {
    /// Creates a mismatch model with relative 1σ `sigma` and a seed for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64, seed: u64) -> Mismatch {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "mismatch sigma must be a non-negative finite number, got {sigma}"
        );
        Mismatch { sigma, seed }
    }

    /// A zero-variation model: every sample is exactly 1.
    pub fn none() -> Mismatch {
        Mismatch::new(0.0, 0)
    }

    /// Relative 1σ of this model.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Creates a fresh deterministic sampler over this distribution.
    pub fn sampler(&self) -> MismatchSampler {
        MismatchSampler {
            rng: SplitMix64::new(self.seed),
            sigma: self.sigma,
        }
    }
}

impl Default for Mismatch {
    fn default() -> Mismatch {
        Mismatch::none()
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mismatch σ = {:.1} % (seed {})",
            self.sigma * 100.0,
            self.seed
        )
    }
}

/// Stream of per-instance delay multipliers produced by [`Mismatch::sampler`].
#[derive(Debug, Clone)]
pub struct MismatchSampler {
    rng: SplitMix64,
    sigma: f64,
}

impl MismatchSampler {
    /// Next delay multiplier. Clamped below at 0.05 so a pathological tail
    /// sample can never produce a non-physical negative delay.
    pub fn sample(&mut self) -> f64 {
        (1.0 + self.sigma * self.rng.next_standard_normal()).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SplitMix64::new(99);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn zero_sigma_always_yields_one() {
        let mut s = Mismatch::none().sampler();
        for _ in 0..100 {
            assert_eq!(s.sample(), 1.0);
        }
    }

    #[test]
    fn sampler_spread_tracks_sigma() {
        let mut s = Mismatch::new(0.10, 7).sampler();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| s.sample()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((sd - 0.10).abs() < 0.01, "sd {sd}");
    }

    #[test]
    fn samples_never_non_positive() {
        let mut s = Mismatch::new(2.0, 3).sampler(); // absurd sigma
        for _ in 0..10_000 {
            assert!(s.sample() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = Mismatch::new(-0.1, 0);
    }
}
