//! # maddpipe-tech
//!
//! Compact technology models for the 22 nm bulk-CMOS process used by the
//! DAC 2025 paper *"Lookup Table-based Multiplication-free All-digital DNN
//! Accelerator Featuring Self-Synchronous Pipeline Accumulation"*.
//!
//! This crate is the bottom of the maddpipe stack: everything above it
//! (event-driven simulation, SRAM timing, the accelerator PPA models) asks
//! this crate three kinds of question:
//!
//! * *how slow is a gate* at a supply/corner/temperature —
//!   [`process::Technology::delay_scale`] (alpha-power law);
//! * *how much energy does a transition cost* —
//!   [`process::Technology::switching_energy`] (`C·V²` + short-circuit);
//! * *how big is it* — [`process::Technology::logic_area`] and the SRAM
//!   bitcell constant.
//!
//! The model constants are calibrated against the paper's own published
//! sweeps; the calibration residuals are enforced by unit tests in
//! [`process`].
//!
//! ## Example
//!
//! ```
//! use maddpipe_tech::prelude::*;
//!
//! let tech = Technology::n22();
//! let slow = OperatingPoint::new(Volts(0.5), Corner::Ssg);
//! let fast = OperatingPoint::new(Volts(1.0), Corner::Ffg);
//! let nominal_delay = Seconds::from_picos(50.0);
//! let d_slow = tech.scale_delay(nominal_delay, slow, DriveKind::PullDown);
//! let d_fast = tech.scale_delay(nominal_delay, fast, DriveKind::PullDown);
//! assert!(d_slow > d_fast);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corner;
pub mod process;
pub mod units;
pub mod variation;

/// Convenient glob-import of the types almost every user needs.
pub mod prelude {
    pub use crate::corner::{Corner, DeviceSpeed, OperatingPoint};
    pub use crate::process::{scale_area, DriveKind, Technology};
    pub use crate::units::{Area, Celsius, Farads, Hertz, Joules, Ohms, Seconds, Volts, Watts};
    pub use crate::variation::{Mismatch, MismatchSampler, SplitMix64};
}

pub use corner::{Corner, OperatingPoint};
pub use process::{DriveKind, Technology};
