//! Compact technology model of the commercial 22 nm bulk-CMOS process.
//!
//! The paper's evidence is post-layout HSPICE at a foundry 22 nm node. We
//! replace the PDK with the standard compact abstractions used for early
//! design-space exploration:
//!
//! * **Delay** — the alpha-power law \[Sakurai & Newton, JSSC 1990\]:
//!   `t_d ∝ C·V / (V − Vth)^α`. The exponent `α` and threshold `Vth` are
//!   *fitted to the paper's own frequency-vs-VDD data* (Fig. 6 area-efficiency
//!   points, Ndec = 4/NS = 4): α = 2.0, Vth = 0.35 V reproduce the measured
//!   9.1× frequency gain from 0.5 V to 1.0 V within ~5 % at every
//!   intermediate voltage. The fit residuals are checked by unit test.
//! * **Corners** — a global corner shifts device Vth by ±1σ (`±40 mV`),
//!   signed per device type ([`Corner::nmos`]/[`Corner::pmos`]).
//! * **Energy** — `E = C·V²` dynamic switching energy per charge/discharge
//!   pair plus a V-linear short-circuit term. The paper's energy-efficiency
//!   sweep implies `E/op ≈ 18.6·V² + 2.9·V` fJ, i.e. a short-circuit charge
//!   fraction of ≈ 0.19 at nominal supply; that fraction is a model constant
//!   here, and the quadratic-plus-linear shape is what makes energy
//!   efficiency *corner-independent* — the paper's observation that
//!   "energy efficiency ... is nearly constant regardless of process
//!   corners".
//!
//! [`Corner::nmos`]: crate::corner::Corner::nmos
//! [`Corner::pmos`]: crate::corner::Corner::pmos

use crate::corner::OperatingPoint;
use crate::units::{Area, Farads, Joules, Ohms, Seconds, Volts, Watts};
use core::fmt;

/// Which transistor network limits a timing arc.
///
/// Dynamic logic evaluates through NMOS pull-down stacks and precharges
/// through PMOS pull-ups, so the two devices see *different* corners: at SFG
/// (slow N / fast P) evaluation slows down while precharge speeds up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveKind {
    /// Arc limited by the NMOS pull-down network (dynamic-logic evaluation,
    /// SRAM bitline discharge).
    PullDown,
    /// Arc limited by the PMOS pull-up network (precharge).
    PullUp,
    /// Static CMOS arc; both networks participate, modelled with the mean
    /// threshold shift.
    Complementary,
}

/// Compact model of a CMOS process node.
///
/// Obtain the calibrated 22 nm instance with [`Technology::n22`]; the struct
/// is `Clone` so experiments can perturb individual parameters for what-if
/// analyses.
///
/// ```
/// use maddpipe_tech::process::Technology;
/// use maddpipe_tech::corner::OperatingPoint;
///
/// let tech = Technology::n22();
/// // Gate delay grows as the supply is lowered:
/// let nominal = OperatingPoint::default();
/// let low = OperatingPoint::new(maddpipe_tech::units::Volts(0.5), nominal.corner);
/// assert!(tech.delay_scale(low, maddpipe_tech::process::DriveKind::Complementary)
///         > tech.delay_scale(nominal, maddpipe_tech::process::DriveKind::Complementary));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Drawn feature size in nanometres (22 for this work).
    pub node_nm: f64,
    /// Nominal supply voltage of the node (0.8 V per the paper's Table II).
    pub vdd_nominal: Volts,
    /// Typical threshold voltage (fitted; see module docs).
    pub vth: Volts,
    /// Alpha-power-law exponent (fitted; see module docs).
    pub alpha: f64,
    /// Global corner threshold shift, 1σ.
    pub corner_vth_sigma: Volts,
    /// Vth temperature coefficient in volts per kelvin (negative — silicon
    /// thresholds fall with temperature).
    pub vth_temp_coeff: f64,
    /// Gate capacitance of a unit-sized (1×) inverter input.
    pub cap_gate_unit: Farads,
    /// Wire capacitance per micrometre of routed metal.
    pub cap_wire_per_um: Farads,
    /// Wire resistance per micrometre of routed metal.
    pub res_wire_per_um: Ohms,
    /// Drain-junction load a single bitcell adds to a bitline.
    pub cap_bitcell_bl: Farads,
    /// Layout area of the two-port 10T SRAM bitcell.
    pub area_bitcell_10t: Area,
    /// Average layout area per transistor in standard-cell logic (includes
    /// routing overhead at placed-and-routed density).
    pub area_per_transistor: Area,
    /// Short-circuit charge fraction: the V-linear energy term is
    /// `frac · C · Vnom · V`.
    pub short_circuit_fraction: f64,
    /// Leakage power of a unit inverter at nominal supply / typical corner /
    /// 25 °C.
    pub leak_unit: Watts,
    /// Subthreshold slope equivalent used for corner/temperature leakage
    /// scaling, in volts per decade-e.
    pub leak_swing: Volts,
    /// Relative 1σ local (within-die, random) delay mismatch of a
    /// minimum-size cell. Scales down with √(device area multiple).
    pub local_delay_sigma: f64,
}

impl Technology {
    /// The calibrated commercial-22 nm-like node used throughout the paper.
    ///
    /// Electrical constants are fitted to the paper's published sweeps as
    /// described in the module documentation; geometric constants are set so
    /// that the macro floorplan lands on the paper's 0.20 mm² core at
    /// Ndec = 16 / NS = 32 (64 kb of SRAM).
    pub fn n22() -> Technology {
        Technology {
            node_nm: 22.0,
            vdd_nominal: Volts(0.8),
            vth: Volts(0.35),
            alpha: 2.0,
            corner_vth_sigma: Volts(0.040),
            vth_temp_coeff: -1.0e-3,
            cap_gate_unit: Farads::from_femtos(0.12),
            cap_wire_per_um: Farads::from_femtos(0.20),
            res_wire_per_um: Ohms(4.0),
            cap_bitcell_bl: Farads::from_femtos(0.25),
            // A foundry 22 nm high-density 6T cell is ~0.09 µm²; the two-port
            // 10T cell with isolated read port is ~4× that after the extra
            // devices, read wordline and read bitline pair are routed.
            area_bitcell_10t: Area::from_um2(0.36),
            area_per_transistor: Area::from_um2(0.30),
            short_circuit_fraction: 0.195,
            leak_unit: Watts(2.0e-9),
            leak_swing: Volts(0.080),
            local_delay_sigma: 0.04,
        }
    }

    /// Effective threshold voltage of the limiting device of `kind` at the
    /// given operating point (corner shift plus temperature drift).
    pub fn effective_vth(&self, op: OperatingPoint, kind: DriveKind) -> Volts {
        let mult = match kind {
            DriveKind::PullDown => op.corner.nmos().vth_sigma_multiplier(),
            DriveKind::PullUp => op.corner.pmos().vth_sigma_multiplier(),
            DriveKind::Complementary => {
                0.5 * (op.corner.nmos().vth_sigma_multiplier()
                    + op.corner.pmos().vth_sigma_multiplier())
            }
        };
        let dt = op.temp.0 - 25.0;
        Volts(self.vth.0 + mult * self.corner_vth_sigma.0 + self.vth_temp_coeff * dt)
    }

    /// Dimensionless delay multiplier of a gate at `op`, relative to the same
    /// gate at nominal supply, typical corner, 25 °C.
    ///
    /// Implements the alpha-power law `t ∝ V / (V − Vth)^α`.
    ///
    /// # Panics
    ///
    /// Panics if the supply does not exceed the effective threshold — the
    /// gate would not switch at all, which indicates a malformed sweep.
    pub fn delay_scale(&self, op: OperatingPoint, kind: DriveKind) -> f64 {
        let vth = self.effective_vth(op, kind);
        let overdrive = op.vdd.0 - vth.0;
        assert!(
            overdrive > 0.0,
            "supply {} does not exceed effective threshold {} at {}",
            op.vdd,
            vth,
            op
        );
        let here = op.vdd.0 / overdrive.powf(self.alpha);
        let vth_nom = self.vth.0;
        let nom = self.vdd_nominal.0 / (self.vdd_nominal.0 - vth_nom).powf(self.alpha);
        here / nom
    }

    /// Absolute delay of an arc whose nominal (0.8 V/TTG/25 °C) delay is
    /// `nominal`, evaluated at `op`.
    pub fn scale_delay(&self, nominal: Seconds, op: OperatingPoint, kind: DriveKind) -> Seconds {
        nominal * self.delay_scale(op, kind)
    }

    /// Energy drawn from the supply by one full charge/discharge pair of
    /// capacitance `cap`: the `C·V²` dynamic term plus the V-linear
    /// short-circuit term (see module docs).
    pub fn switching_energy(&self, cap: Farads, op: OperatingPoint) -> Joules {
        let dynamic = cap.switching_energy(op.vdd);
        let short_circuit =
            Joules(self.short_circuit_fraction * cap.0 * self.vdd_nominal.0 * op.vdd.0);
        dynamic + short_circuit
    }

    /// Leakage power of a circuit containing `unit_count` unit-inverter
    /// equivalents at the given operating point.
    ///
    /// Subthreshold leakage rises exponentially as Vth falls (fast corners,
    /// hot silicon) and linearly with supply.
    pub fn leakage_power(&self, unit_count: f64, op: OperatingPoint) -> Watts {
        let vth = self.effective_vth(op, DriveKind::Complementary);
        let dvth = self.vth.0 - vth.0;
        let temp_k = op.temp.0 + 273.15;
        let thermal = (temp_k / 298.15).powi(2);
        let scale = (dvth / self.leak_swing.0).exp() * thermal * (op.vdd.0 / self.vdd_nominal.0);
        Watts(self.leak_unit.0 * unit_count * scale)
    }

    /// Elmore delay of a distributed RC wire of `length_um` micrometres
    /// terminated by `load`.
    ///
    /// `t = R·C·L²/2 + R·L·C_load` — the square term is what makes the read
    /// wordline slow down as `Ndec` (and hence WL length) grows, the effect
    /// the paper cites as the limit on scaling up `Ndec`.
    pub fn wire_delay(&self, length_um: f64, load: Farads) -> Seconds {
        let r = self.res_wire_per_um.0 * length_um;
        let c = self.cap_wire_per_um.0 * length_um;
        Seconds(0.5 * r * c + r * load.0)
    }

    /// Total capacitance of `length_um` micrometres of wire.
    pub fn wire_cap(&self, length_um: f64) -> Farads {
        Farads(self.cap_wire_per_um.0 * length_um)
    }

    /// Standard-cell area of a block containing `transistors` devices.
    pub fn logic_area(&self, transistors: f64) -> Area {
        Area(self.area_per_transistor.0 * transistors)
    }

    /// 1σ relative delay mismatch of a cell `size_multiple` times the
    /// minimum device size (Pelgrom scaling: σ ∝ 1/√area).
    pub fn local_sigma(&self, size_multiple: f64) -> f64 {
        assert!(size_multiple > 0.0, "device size multiple must be positive");
        self.local_delay_sigma / size_multiple.sqrt()
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::n22()
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nm bulk CMOS (Vnom {}, Vth {}, α {})",
            self.node_nm, self.vdd_nominal, self.vth, self.alpha
        )
    }
}

/// Scales silicon area between process nodes using the `(from/to)²` rule the
/// paper applies for its Table II normalisation ("circuits implemented in a
/// 65 nm process were scaled by (65/22)²").
///
/// ```
/// use maddpipe_tech::process::scale_area;
/// use maddpipe_tech::units::Area;
///
/// let a65 = Area::from_mm2(0.31);
/// let a22 = scale_area(a65, 65.0, 22.0);
/// assert!((a22.as_mm2() - 0.0355).abs() < 1e-3);
/// ```
pub fn scale_area(area: Area, from_nm: f64, to_nm: f64) -> Area {
    assert!(from_nm > 0.0 && to_nm > 0.0, "node sizes must be positive");
    area * (to_nm / from_nm).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::Corner;
    use crate::units::{Celsius, Volts};

    fn op(vdd: f64, corner: Corner) -> OperatingPoint {
        OperatingPoint::new(Volts(vdd), corner)
    }

    /// The alpha-power fit must reproduce the paper's measured frequency
    /// scaling (Fig. 6 area-efficiency points at Ndec=4/NS=4) within 6 %.
    #[test]
    fn delay_scale_matches_paper_frequency_sweep() {
        let tech = Technology::n22();
        // TOPS/mm² at fixed area is proportional to frequency.
        let paper = [
            (0.5, 1.45),
            (0.6, 3.46),
            (0.7, 5.94),
            (0.8, 8.55),
            (0.9, 11.03),
            (1.0, 13.25),
        ];
        let base = tech.delay_scale(op(0.5, Corner::Ttg), DriveKind::Complementary);
        for (vdd, tops) in paper {
            let scale = tech.delay_scale(op(vdd, Corner::Ttg), DriveKind::Complementary);
            let predicted_ratio = base / scale; // frequency gain vs 0.5 V
            let measured_ratio = tops / 1.45;
            let err = (predicted_ratio - measured_ratio).abs() / measured_ratio;
            assert!(
                err < 0.06,
                "at {vdd} V: predicted {predicted_ratio:.2}×, paper {measured_ratio:.2}× (err {err:.3})"
            );
        }
    }

    /// The E/op model must reproduce the paper's energy-efficiency sweep
    /// (Fig. 6) within 6 %: E/op ≈ 18.6 V² + 2.9 V fJ.
    #[test]
    fn switching_energy_matches_paper_energy_sweep() {
        let tech = Technology::n22();
        let paper_tops_per_w = [
            (0.5, 164.0),
            (0.6, 123.0),
            (0.7, 92.8),
            (0.8, 72.2),
            (0.9, 57.5),
            (1.0, 46.6),
        ];
        // Reference capacitance chosen so 0.5 V matches; the *shape* across
        // the sweep is then a prediction of the model.
        let e05 = Joules::from_femtos(1e3 / 164.0);
        let cap = Farads(e05.0 / (0.25 + tech.short_circuit_fraction * 0.8 * 0.5));
        for (vdd, tops_w) in paper_tops_per_w {
            let e = tech.switching_energy(cap, op(vdd, Corner::Ttg));
            let predicted_tops_w = 1e3 / e.as_femtos();
            let err = (predicted_tops_w - tops_w).abs() / tops_w;
            assert!(
                err < 0.06,
                "at {vdd} V: predicted {predicted_tops_w:.1} TOPS/W, paper {tops_w} (err {err:.3})"
            );
        }
    }

    #[test]
    fn corners_order_delays_correctly() {
        let tech = Technology::n22();
        let v = 0.5;
        let ttg = tech.delay_scale(op(v, Corner::Ttg), DriveKind::PullDown);
        let ffg = tech.delay_scale(op(v, Corner::Ffg), DriveKind::PullDown);
        let ssg = tech.delay_scale(op(v, Corner::Ssg), DriveKind::PullDown);
        assert!(ffg < ttg && ttg < ssg, "FFG {ffg} < TTG {ttg} < SSG {ssg}");
        // Mixed corners split by device type.
        let sfg_n = tech.delay_scale(op(v, Corner::Sfg), DriveKind::PullDown);
        let sfg_p = tech.delay_scale(op(v, Corner::Sfg), DriveKind::PullUp);
        assert!(sfg_n > ttg, "slow NMOS pull-down is slower than typical");
        assert!(sfg_p < ttg, "fast PMOS pull-up is faster than typical");
    }

    #[test]
    fn energy_is_nearly_corner_independent() {
        // The paper: "energy efficiency ... is nearly constant regardless of
        // process corners". Our energy model has no corner dependence at all
        // in the dynamic term.
        let tech = Technology::n22();
        let c = Farads::from_femtos(1.0);
        let e_ttg = tech.switching_energy(c, op(0.5, Corner::Ttg));
        let e_ssg = tech.switching_energy(c, op(0.5, Corner::Ssg));
        assert_eq!(e_ttg, e_ssg);
    }

    #[test]
    #[should_panic(expected = "does not exceed effective threshold")]
    fn subthreshold_supply_panics() {
        let tech = Technology::n22();
        let _ = tech.delay_scale(op(0.3, Corner::Ssg), DriveKind::PullDown);
    }

    #[test]
    fn temperature_speeds_leakage_and_slows_nothing_at_fixed_vth() {
        let tech = Technology::n22();
        let cold = OperatingPoint::new(Volts(0.8), Corner::Ttg);
        let hot = cold.with_temp(Celsius(85.0));
        assert!(tech.leakage_power(100.0, hot).0 > tech.leakage_power(100.0, cold).0);
        // Higher temperature lowers Vth in this model, shortening delay.
        assert!(
            tech.delay_scale(hot, DriveKind::PullDown)
                < tech.delay_scale(cold, DriveKind::PullDown)
        );
    }

    #[test]
    fn leakage_rises_at_fast_corner() {
        let tech = Technology::n22();
        let ttg = tech.leakage_power(1.0, op(0.8, Corner::Ttg));
        let ffg = tech.leakage_power(1.0, op(0.8, Corner::Ffg));
        assert!(ffg.0 > ttg.0 * 1.5, "FFG leakage {ffg} vs TTG {ttg}");
    }

    #[test]
    fn wire_delay_is_quadratic_in_length() {
        let tech = Technology::n22();
        let short = tech.wire_delay(100.0, Farads::ZERO);
        let long = tech.wire_delay(200.0, Farads::ZERO);
        assert!((long / short - 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_sigma_shrinks_with_device_size() {
        let tech = Technology::n22();
        assert!((tech.local_sigma(4.0) - tech.local_delay_sigma / 2.0).abs() < 1e-12);
    }

    #[test]
    fn area_scaling_rule_matches_paper() {
        // Paper: 0.29 TOPS/mm² at 65 nm becomes 0.40 when scaled to 22 nm
        // (digital parts only; the full-area ratio bound is (65/22)² = 8.7).
        let a = scale_area(Area::from_mm2(1.0), 65.0, 22.0);
        assert!((1.0 / a.as_mm2() - (65.0f64 / 22.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn logic_area_counts_transistors() {
        let tech = Technology::n22();
        let a = tech.logic_area(1000.0);
        assert!((a.as_um2() - 300.0).abs() < 1e-9);
    }
}
