//! Strongly-typed physical quantities used throughout the workspace.
//!
//! Every quantity is a thin `f64` newtype ([C-NEWTYPE]): a [`Volts`] can never
//! be accidentally passed where [`Seconds`] is expected, which matters in a
//! codebase that mixes timing, energy and geometry models. Arithmetic is
//! implemented only where it is physically meaningful (scalar scaling,
//! addition of like quantities, and a few derived-unit products such as
//! `Watts = Joules / Seconds`).
//!
//! ```
//! use maddpipe_tech::units::{Volts, Seconds, Joules};
//!
//! let vdd = Volts(0.5);
//! let delay = Seconds::from_nanos(17.8);
//! let energy = Joules::from_femtos(5.6);
//! assert!(vdd.0 < 1.0 && delay.as_nanos() > 17.0 && energy.as_femtos() > 5.0);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for an `f64` quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value in base SI units.
            ///
            /// ```
            /// # use maddpipe_tech::units::*;
            #[doc = concat!("assert_eq!(", stringify!($name), "(1.5).value(), 1.5);")]
            /// ```
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// Useful when reducing path delays or peak values. `NaN` inputs
            /// propagate like [`f64::max`].
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// `true` if the value is finite (neither infinite nor NaN).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", engineering(self.0))?;
                write!(f, "{}", $unit)
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);

quantity!(
    /// Time in seconds. Construct via [`Seconds::from_nanos`] /
    /// [`Seconds::from_picos`] / [`Seconds::from_femtos`] for readability.
    Seconds,
    "s"
);

quantity!(
    /// Energy in joules. Circuit-level energies are femtojoules to picojoules.
    Joules,
    "J"
);

quantity!(
    /// Power in watts.
    Watts,
    "W"
);

quantity!(
    /// Capacitance in farads. Cell-level capacitances are femtofarads.
    Farads,
    "F"
);

quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);

quantity!(
    /// Silicon area in square metres. Construct via [`Area::from_um2`] or
    /// [`Area::from_mm2`].
    Area,
    "m²"
);

quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

quantity!(
    /// Temperature in degrees Celsius (not an SI base unit, but the unit in
    /// which every PDK corner sheet is written).
    Celsius,
    "°C"
);

impl Seconds {
    /// Creates a duration from nanoseconds.
    ///
    /// ```
    /// # use maddpipe_tech::units::Seconds;
    /// assert_eq!(Seconds::from_nanos(1.0).value(), 1e-9);
    /// ```
    #[inline]
    pub fn from_nanos(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }

    /// Creates a duration from picoseconds.
    #[inline]
    pub fn from_picos(ps: f64) -> Seconds {
        Seconds(ps * 1e-12)
    }

    /// Creates a duration from femtoseconds.
    #[inline]
    pub fn from_femtos(fs: f64) -> Seconds {
        Seconds(fs * 1e-15)
    }

    /// This duration expressed in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// This duration expressed in picoseconds.
    #[inline]
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }

    /// This duration expressed in femtoseconds.
    #[inline]
    pub fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }

    /// Frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative: a period must be positive.
    ///
    /// ```
    /// # use maddpipe_tech::units::Seconds;
    /// let f = Seconds::from_nanos(32.1).to_frequency();
    /// assert!((f.as_mega_hertz() - 31.15).abs() < 0.1);
    /// ```
    #[inline]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.0 > 0.0, "period must be positive, got {self}");
        Hertz(1.0 / self.0)
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mega_hertz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// This frequency expressed in megahertz.
    #[inline]
    pub fn as_mega_hertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn to_period(self) -> Seconds {
        assert!(self.0 > 0.0, "frequency must be positive, got {self}");
        Seconds(1.0 / self.0)
    }
}

impl Joules {
    /// Creates an energy from femtojoules.
    #[inline]
    pub fn from_femtos(fj: f64) -> Joules {
        Joules(fj * 1e-15)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_picos(pj: f64) -> Joules {
        Joules(pj * 1e-12)
    }

    /// This energy expressed in femtojoules.
    #[inline]
    pub fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }

    /// This energy expressed in picojoules.
    #[inline]
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }
}

impl Farads {
    /// Creates a capacitance from femtofarads.
    #[inline]
    pub fn from_femtos(ff: f64) -> Farads {
        Farads(ff * 1e-15)
    }

    /// This capacitance expressed in femtofarads.
    #[inline]
    pub fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }

    /// Dynamic switching energy of a full-swing transition on this
    /// capacitance: `E = C · V²` (charge pulled from the supply over one
    /// charge/discharge pair; half is dissipated on each edge).
    ///
    /// ```
    /// # use maddpipe_tech::units::{Farads, Volts};
    /// let e = Farads::from_femtos(1.0).switching_energy(Volts(1.0));
    /// assert!((e.as_femtos() - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn switching_energy(self, vdd: Volts) -> Joules {
        Joules(self.0 * vdd.0 * vdd.0)
    }
}

impl Area {
    /// Creates an area from square micrometres.
    #[inline]
    pub fn from_um2(um2: f64) -> Area {
        Area(um2 * 1e-12)
    }

    /// Creates an area from square millimetres.
    #[inline]
    pub fn from_mm2(mm2: f64) -> Area {
        Area(mm2 * 1e-6)
    }

    /// This area expressed in square micrometres.
    #[inline]
    pub fn as_um2(self) -> f64 {
        self.0 * 1e12
    }

    /// This area expressed in square millimetres.
    #[inline]
    pub fn as_mm2(self) -> f64 {
        self.0 * 1e6
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Farads> for Ohms {
    /// An RC product is a time constant.
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// Formats a value with an engineering-notation SI prefix (`f`, `p`, `n`,
/// `µ`, `m`, none, `k`, `M`, `G`, `T`).
///
/// ```
/// # use maddpipe_tech::units::engineering;
/// assert_eq!(engineering(17.8e-9), "17.80 n");
/// assert_eq!(engineering(0.0), "0.00 ");
/// ```
pub fn engineering(value: f64) -> String {
    if value == 0.0 || !value.is_finite() {
        return format!("{value:.2} ");
    }
    const PREFIXES: [(f64, &str); 10] = [
        (1e-15, "f"),
        (1e-12, "p"),
        (1e-9, "n"),
        (1e-6, "µ"),
        (1e-3, "m"),
        (1.0, ""),
        (1e3, "k"),
        (1e6, "M"),
        (1e9, "G"),
        (1e12, "T"),
    ];
    let mag = value.abs();
    let mut chosen = PREFIXES[0];
    for p in PREFIXES {
        if mag >= p.0 {
            chosen = p;
        }
    }
    format!("{:.2} {}", value / chosen.0, chosen.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_arithmetic_behaves_like_f64() {
        let a = Volts(0.5);
        let b = Volts(0.3);
        assert_eq!((a + b).0, 0.8);
        assert_eq!((a - b).0, 0.2);
        assert_eq!((a * 2.0).0, 1.0);
        assert_eq!((2.0 * a).0, 1.0);
        assert_eq!((a / 2.0).0, 0.25);
        assert_eq!(a / b, 0.5 / 0.3);
        assert_eq!((-a).0, -0.5);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut t = Seconds::ZERO;
        t += Seconds::from_nanos(1.0);
        t += Seconds::from_nanos(2.0);
        assert!((t.as_nanos() - 3.0).abs() < 1e-12);
        let total: Joules = (0..4).map(|_| Joules::from_femtos(1.0)).sum();
        assert!((total.as_femtos() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_conversions_round_trip() {
        let t = Seconds::from_picos(2500.0);
        assert!((t.as_nanos() - 2.5).abs() < 1e-12);
        assert!((t.as_femtos() - 2.5e6).abs() < 1e-3);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Hertz::from_mega_hertz(56.2);
        let t = f.to_period();
        assert!((t.to_frequency().as_mega_hertz() - 56.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = Seconds::ZERO.to_frequency();
    }

    #[test]
    fn switching_energy_scales_quadratically() {
        let c = Farads::from_femtos(2.0);
        let e1 = c.switching_energy(Volts(0.5));
        let e2 = c.switching_energy(Volts(1.0));
        assert!((e2 / e1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn area_conversions() {
        let a = Area::from_mm2(0.20);
        assert!((a.as_um2() - 200_000.0).abs() < 1e-6);
        assert!((Area::from_um2(1e6).as_mm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn watts_from_energy_over_time() {
        let p = Joules::from_picos(1.0) / Seconds::from_nanos(1.0);
        assert!((p.0 - 1e-3).abs() < 1e-15);
        let e = p * Seconds::from_nanos(2.0);
        assert!((e.as_picos() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rc_product_is_time() {
        let tau = Ohms(1000.0) * Farads::from_femtos(1.0);
        assert!((tau.as_picos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(format!("{}", Seconds::from_nanos(17.8)), "17.80 ns");
        assert_eq!(format!("{}", Joules::from_femtos(5.6)), "5.60 fJ");
        assert_eq!(format!("{}", Volts(0.5)), "500.00 mV");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Volts(0.5).max(Volts(0.8)), Volts(0.8));
        assert_eq!(Volts(0.5).min(Volts(0.8)), Volts(0.5));
        assert_eq!(Volts(-0.5).abs(), Volts(0.5));
        assert!(Volts(0.5).is_finite());
        assert!(!Volts(f64::NAN).is_finite());
    }
}
