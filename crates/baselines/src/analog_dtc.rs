//! Model of the analog time-domain MADDNESS accelerator of Fuketa,
//! TCAS-I 2023 (reference \[21\] of the paper) — the primary comparison
//! point of Table II.
//!
//! Microarchitecture (paper §II-C): the 6-bit input and each 6-bit
//! prototype are expanded into 60-bit thermometer codes; a digital-to-time
//! converter turns the Manhattan distance between them into a propagation
//! delay through a chain of delay cells (one 60-cell chain per prototype,
//! 16 chains); the first chain to finish is the argmin — i.e. the encoding.
//!
//! Two properties matter for the reproduction:
//!
//! * **Cost structure** — thermometer expansion needs `2^n` cells per
//!   `n`-bit value, which is why the encoder dominates area and why most
//!   of the die cannot shrink with the process (analog delay cells don't
//!   scale) — reproduced in [`AnalogDtcPpa`], including the paper's
//!   "digital parts only" area normalisation.
//! * **Noise sensitivity** — the argmin is computed in continuous time, so
//!   PVT variation and jitter perturb the comparison and mis-encode inputs
//!   whose two closest prototypes are nearly equidistant; that is why
//!   Table II shows 89.0 % accuracy against 92.6 % for the all-digital
//!   designs — reproduced by [`AnalogDtcEncoder`].

use core::fmt;
use maddpipe_amm::encoders::{CentroidEncoder, SubspaceEncoder};
use maddpipe_amm::kmeans::Distance;
use maddpipe_amm::linalg::Mat;
use maddpipe_tech::process::scale_area;
use maddpipe_tech::units::{Area, Hertz, Joules, Volts};
use rand::Rng;

/// Functional model of the time-domain encoder: Manhattan argmin with
/// Gaussian delay noise on each chain.
#[derive(Debug, Clone)]
pub struct AnalogDtcEncoder {
    inner: CentroidEncoder,
    /// 1σ of the per-chain delay noise, in units of one thermometer-code
    /// distance step. Zero makes the encoder exact.
    pub sigma: f64,
}

impl AnalogDtcEncoder {
    /// Trains the prototypes (k-means with the L1 metric, as the DTC
    /// computes Manhattan distance) and wraps them with noise `sigma`.
    pub fn train(data: &Mat, k: usize, sigma: f64, seed: u64) -> AnalogDtcEncoder {
        AnalogDtcEncoder {
            inner: CentroidEncoder::train(data, k, Distance::L1, seed),
            sigma,
        }
    }

    /// Wraps existing prototypes.
    pub fn from_encoder(inner: CentroidEncoder, sigma: f64) -> AnalogDtcEncoder {
        AnalogDtcEncoder { inner, sigma }
    }

    /// The underlying noiseless encoder.
    pub fn inner(&self) -> &CentroidEncoder {
        &self.inner
    }

    /// Encodes with per-chain delay noise drawn from `rng`.
    pub fn encode_one_noisy<R: Rng>(&self, sub: &[f32], rng: &mut R) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, d) in self.inner.distances(sub).into_iter().enumerate() {
            let noisy = d + self.sigma * standard_normal(rng);
            if noisy < best_d {
                best_d = noisy;
                best = i;
            }
        }
        best
    }

    /// Fraction of a batch that the noisy encoder mis-encodes relative to
    /// the exact argmin — the per-subspace error rate behind the Table II
    /// accuracy gap.
    pub fn misencode_rate<R: Rng>(&self, data: &Mat, rng: &mut R) -> f64 {
        if data.rows() == 0 {
            return 0.0;
        }
        let mut wrong = 0usize;
        for r in 0..data.rows() {
            let exact = self.inner.encode_one(data.row(r));
            let noisy = self.encode_one_noisy(data.row(r), rng);
            if exact != noisy {
                wrong += 1;
            }
        }
        wrong as f64 / data.rows() as f64
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller over the crate-standard RNG.
    loop {
        let u1: f64 = rng.gen();
        if u1 > 1e-300 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        }
    }
}

/// The published / derived PPA of the analog accelerator (65 nm silicon).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogDtcPpa {
    /// Process node of the silicon.
    pub node_nm: f64,
    /// Supply range (multi-VDD: 0.35 / 0.6 / 1.0 V domains).
    pub vdd: Volts,
    /// Die area.
    pub area: Area,
    /// Fraction of the area that is analog (delay chains + thermometer
    /// expansion) and therefore does *not* scale with the process. Derived
    /// below from the paper's own normalisation (0.29 → 0.40 TOPS/mm²).
    pub analog_area_fraction: f64,
    /// Operating frequency.
    pub frequency: Hertz,
    /// Equivalent operations per cycle (a 64-element dot product per
    /// lookup set: 64 × 2 ops × 9 = the macro's 1 152 ops/cycle).
    pub ops_per_cycle: f64,
    /// Encoder energy per equivalent op.
    pub energy_encoder_per_op: Joules,
    /// Decoder energy per equivalent op (accumulator not included, as the
    /// paper footnotes).
    pub energy_decoder_per_op: Joules,
    /// ResNet9 / CIFAR-10 accuracy reported on silicon.
    pub resnet9_accuracy: f64,
}

impl AnalogDtcPpa {
    /// The silicon-measured configuration used in Table II.
    pub fn published() -> AnalogDtcPpa {
        AnalogDtcPpa {
            node_nm: 65.0,
            vdd: Volts(0.6),
            area: Area::from_mm2(0.31),
            // Derived from the paper's area normalisation (see
            // `area_efficiency_scaled_to`): ≈ 69 % of the die is analog.
            analog_area_fraction: 0.69,
            frequency: Hertz::from_mega_hertz(77.0),
            ops_per_cycle: 1152.0,
            energy_encoder_per_op: Joules::from_femtos(7.47),
            energy_decoder_per_op: Joules::from_femtos(7.02),
            resnet9_accuracy: 0.890,
        }
    }

    /// Throughput in TOPS.
    pub fn tops(&self) -> f64 {
        self.frequency.value() * self.ops_per_cycle / 1e12
    }

    /// Total energy per op.
    pub fn energy_per_op(&self) -> Joules {
        self.energy_encoder_per_op + self.energy_decoder_per_op
    }

    /// Energy efficiency in TOPS/W.
    pub fn tops_per_watt(&self) -> f64 {
        1e3 / self.energy_per_op().as_femtos()
    }

    /// Raw area efficiency in TOPS/mm².
    pub fn area_efficiency(&self) -> f64 {
        self.tops() / self.area.as_mm2()
    }

    /// Area efficiency normalised to another node, scaling *only the
    /// digital parts* — the analog delay chains keep their 65 nm footprint
    /// (the paper: "area scaling was applied only to the digital parts").
    pub fn area_efficiency_scaled_to(&self, node_nm: f64) -> f64 {
        let analog = self.area * self.analog_area_fraction;
        let digital = self.area * (1.0 - self.analog_area_fraction);
        let scaled = analog + scale_area(digital, self.node_nm, node_nm);
        self.tops() / scaled.as_mm2()
    }
}

impl fmt::Display for AnalogDtcPpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analog DTC [21]: {:.3} TOPS, {:.0} TOPS/W, {:.2} TOPS/mm² ({:.2} @22nm)",
            self.tops(),
            self.tops_per_watt(),
            self.area_efficiency(),
            self.area_efficiency_scaled_to(22.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Mat {
        let mut rows = Vec::new();
        for i in 0..64 {
            let c = (i % 4) as f32 * 10.0;
            rows.push(vec![c + (i % 3) as f32 * 0.2, -c + (i % 5) as f32 * 0.2]);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&refs)
    }

    #[test]
    fn zero_noise_matches_exact_argmin() {
        let data = blobs();
        let enc = AnalogDtcEncoder::train(&data, 4, 0.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(enc.misencode_rate(&data, &mut rng), 0.0);
    }

    #[test]
    fn noise_causes_misencodings_and_grows_with_sigma() {
        let data = blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let low = AnalogDtcEncoder::train(&data, 4, 0.5, 1).misencode_rate(&data, &mut rng);
        let high = AnalogDtcEncoder::train(&data, 4, 20.0, 1).misencode_rate(&data, &mut rng);
        assert!(high > low, "more noise ⇒ more errors ({low} vs {high})");
        assert!(high > 0.05);
    }

    /// The derived quantities must land on the paper's Table II entries.
    #[test]
    fn published_ppa_matches_table2() {
        let p = AnalogDtcPpa::published();
        assert!((p.tops() - 0.089).abs() < 0.002, "TOPS {}", p.tops());
        assert!(
            (p.tops_per_watt() - 69.0).abs() < 1.0,
            "TOPS/W {}",
            p.tops_per_watt()
        );
        assert!(
            (p.area_efficiency() - 0.29).abs() < 0.01,
            "raw {}",
            p.area_efficiency()
        );
        assert!(
            (p.area_efficiency_scaled_to(22.0) - 0.40).abs() < 0.02,
            "scaled {}",
            p.area_efficiency_scaled_to(22.0)
        );
    }

    #[test]
    fn analog_area_does_not_benefit_from_scaling() {
        let p = AnalogDtcPpa::published();
        let full_scaling = p.tops() / scale_area(p.area, p.node_nm, 22.0).as_mm2();
        // If the whole die scaled, the efficiency would jump ~9×; the
        // analog fraction caps the benefit well below that.
        assert!(p.area_efficiency_scaled_to(22.0) < full_scaling * 0.25);
    }

    #[test]
    fn display_mentions_both_efficiencies() {
        let s = AnalogDtcPpa::published().to_string();
        assert!(s.contains("TOPS/W") && s.contains("TOPS/mm²"), "{s}");
    }
}
