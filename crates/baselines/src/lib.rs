//! # maddpipe-baselines
//!
//! Models of the two prior accelerators the paper compares against in
//! Table II:
//!
//! * [`analog_dtc`] — Fuketa, TCAS-I 2023 (\[21\]): analog time-domain
//!   Manhattan-distance encoder with thermometer-coded delay chains.
//!   Provides both the PPA model (including the paper's digital-only area
//!   normalisation) and the noisy functional encoder that reproduces the
//!   analog accuracy penalty.
//! * [`stella_nera`] — Schönleber et al. (\[22\]): fully-synthesizable
//!   clocked MADDNESS with standard-cell-memory LUTs. Same algorithm as
//!   the proposed macro (hence identical accuracy), ~3× decoder and ~20×
//!   encoder energy.
//!
//! ```
//! use maddpipe_baselines::prelude::*;
//!
//! let analog = AnalogDtcPpa::published();
//! let digital = StellaNeraPpa::published();
//! assert!(digital.tops > analog.tops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analog_dtc;
pub mod stella_nera;

pub use analog_dtc::{AnalogDtcEncoder, AnalogDtcPpa};
pub use stella_nera::StellaNeraPpa;

/// Common imports.
pub mod prelude {
    pub use crate::analog_dtc::{AnalogDtcEncoder, AnalogDtcPpa};
    pub use crate::stella_nera::StellaNeraPpa;
}
