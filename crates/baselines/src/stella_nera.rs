//! Model of Stella Nera (Schönleber et al., reference \[22\]) — the
//! fully-synthesizable all-digital MADDNESS accelerator the paper compares
//! against at 14 nm.
//!
//! Architecturally Stella Nera runs the *same* algorithm as the proposed
//! macro (balanced BDT encode + LUT decode), so its accuracy is identical
//! by construction — the Table II accuracy row shows 92.6 % for both. The
//! differences are circuit-level, and the paper quantifies them:
//!
//! * **LUTs in standard-cell memory** (latch arrays) instead of 10T-SRAM:
//!   the paper attributes a 66 % read-energy reduction to the SRAM, i.e.
//!   the SCM LUT costs ≈ 3× per read.
//! * **Clocked encoder with threshold readout**: thresholds live in a
//!   memory that is read every classification, plus pipeline registers and
//!   a global clock — the proposed dynamic encoder "reduced energy
//!   consumption by 95 %", i.e. Stella Nera's encoder costs ≈ 20×.
//!
//! Those two ratios, applied to the proposed macro's calibrated decoder /
//! encoder energies, *predict* Stella Nera's published energy split
//! (16.47 fJ/op decoder, 1.27 fJ/op encoder) — the consistency test below
//! checks that prediction against the published values.

use core::fmt;
use maddpipe_tech::process::scale_area;
use maddpipe_tech::units::{Area, Hertz, Joules, Volts};

/// Published / derived PPA of Stella Nera (14 nm FinFET, synthesis).
#[derive(Debug, Clone, PartialEq)]
pub struct StellaNeraPpa {
    /// Drawn process node.
    pub node_nm: f64,
    /// Effective-density node used for planar-vs-FinFET area
    /// normalisation: a 14 nm FinFET library's routed density corresponds
    /// to roughly a 16 nm planar equivalent, which is what reproduces the
    /// paper's 5.1 → 2.70 TOPS/mm² normalisation.
    pub effective_node_nm: f64,
    /// Supply voltage.
    pub vdd: Volts,
    /// Macro area.
    pub area: Area,
    /// Clock frequency.
    pub frequency: Hertz,
    /// Throughput.
    pub tops: f64,
    /// Encoder energy per op.
    pub energy_encoder_per_op: Joules,
    /// Decoder (SCM LUT) energy per op.
    pub energy_decoder_per_op: Joules,
    /// Peripheral energy per op (clock tree, weight/threshold memories,
    /// interconnect): the headline 43.1 TOPS/W implies 23.2 fJ/op total,
    /// of which only 17.7 fJ is the encoder+decoder pair the paper
    /// itemises — the remainder is accounted here.
    pub energy_other_per_op: Joules,
    /// ResNet9 / CIFAR-10 accuracy.
    pub resnet9_accuracy: f64,
}

impl StellaNeraPpa {
    /// The Table II configuration.
    pub fn published() -> StellaNeraPpa {
        StellaNeraPpa {
            node_nm: 14.0,
            effective_node_nm: 16.0,
            vdd: Volts(0.55),
            area: Area::from_mm2(0.57),
            frequency: Hertz::from_mega_hertz(624.0),
            tops: 2.9,
            energy_encoder_per_op: Joules::from_femtos(1.27),
            energy_decoder_per_op: Joules::from_femtos(16.47),
            energy_other_per_op: Joules::from_femtos(5.46),
            resnet9_accuracy: 0.926,
        }
    }

    /// Total energy per op (encoder + decoder + peripherals).
    pub fn energy_per_op(&self) -> Joules {
        self.energy_encoder_per_op + self.energy_decoder_per_op + self.energy_other_per_op
    }

    /// Energy efficiency in TOPS/W — evaluates to the published
    /// 43.1 TOPS/W (the gap to the proposed macro's 174 comes almost
    /// entirely from the decoder's standard-cell memory).
    pub fn tops_per_watt(&self) -> f64 {
        1e3 / self.energy_per_op().as_femtos()
    }

    /// Raw area efficiency.
    pub fn area_efficiency(&self) -> f64 {
        self.tops / self.area.as_mm2()
    }

    /// Area efficiency normalised to `node_nm` using the effective-density
    /// node (FinFET libraries do not follow drawn-node² scaling).
    pub fn area_efficiency_scaled_to(&self, node_nm: f64) -> f64 {
        let scaled = scale_area(self.area, self.effective_node_nm, node_nm);
        self.tops / scaled.as_mm2()
    }

    /// Predicts this design's per-op energies from the *proposed* macro's
    /// calibrated components and the paper's two stated ratios (decoder
    /// ×3 for SCM vs SRAM, encoder ×20 for clocked vs dynamic), after
    /// normalising for supply and node. Used as a consistency check that
    /// the comparison in Table II is internally coherent.
    pub fn predicted_from_proposed(
        proposed_decoder_fj_per_op: f64,
        proposed_encoder_fj_per_op: f64,
    ) -> (Joules, Joules) {
        // Normalise 22 nm @0.5 V → 14 nm @0.55 V: energy ≈ C·V²; C scales
        // ~linearly with node for a fixed function.
        let node_scale = 14.0 / 22.0;
        let v_scale = (0.55f64 / 0.5).powi(2);
        let decoder = proposed_decoder_fj_per_op * (1.0 / (1.0 - 0.66)) * node_scale * v_scale;
        let encoder = proposed_encoder_fj_per_op * 20.0 * node_scale * v_scale;
        (Joules::from_femtos(decoder), Joules::from_femtos(encoder))
    }
}

impl fmt::Display for StellaNeraPpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Stella Nera [22]: {:.1} TOPS, {:.1} TOPS/W, {:.1} TOPS/mm² ({:.2} @22nm)",
            self.tops,
            self.tops_per_watt(),
            self.area_efficiency(),
            self.area_efficiency_scaled_to(22.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_ppa_matches_table2() {
        let p = StellaNeraPpa::published();
        assert!(
            (p.tops_per_watt() - 43.1).abs() < 1.0,
            "TOPS/W {}",
            p.tops_per_watt()
        );
        assert!(
            (p.area_efficiency() - 5.1).abs() < 0.1,
            "raw {}",
            p.area_efficiency()
        );
        assert!(
            (p.area_efficiency_scaled_to(22.0) - 2.70).abs() < 0.05,
            "scaled {}",
            p.area_efficiency_scaled_to(22.0)
        );
    }

    /// The paper's stated component ratios (×3 SCM LUT, ×20 clocked
    /// encoder) applied to the proposed macro's calibrated energies must
    /// land near Stella Nera's published per-op energies — the three
    /// documents (our calibration, the ratios, the published numbers) have
    /// to agree with each other.
    #[test]
    fn component_ratios_are_internally_consistent() {
        // Proposed at 0.5 V: decoder 5.6 fJ/op, encoder 0.054 fJ/op
        // (paper Table II).
        let (dec, enc) = StellaNeraPpa::predicted_from_proposed(5.6, 0.054);
        let p = StellaNeraPpa::published();
        let dec_err = (dec.as_femtos() - p.energy_decoder_per_op.as_femtos()).abs()
            / p.energy_decoder_per_op.as_femtos();
        assert!(
            dec_err < 0.35,
            "decoder prediction {} vs published {}",
            dec.as_femtos(),
            p.energy_decoder_per_op.as_femtos()
        );
        let enc_err = (enc.as_femtos() - p.energy_encoder_per_op.as_femtos()).abs()
            / p.energy_encoder_per_op.as_femtos();
        assert!(
            enc_err < 0.45,
            "encoder prediction {} vs published {}",
            enc.as_femtos(),
            p.energy_encoder_per_op.as_femtos()
        );
    }

    #[test]
    fn same_algorithm_same_accuracy() {
        // Stella Nera and the proposed macro run the identical BDT
        // algorithm — the model must carry the same accuracy (92.6 %).
        let p = StellaNeraPpa::published();
        assert_eq!(p.resnet9_accuracy, 0.926);
    }

    #[test]
    fn display_is_complete() {
        let s = StellaNeraPpa::published().to_string();
        assert!(s.contains("TOPS/W"), "{s}");
    }
}
