//! Discrete simulation time.
//!
//! The event kernel counts **femtoseconds in a `u64`** — integral, exactly
//! ordered, and wide enough for ~5 hours of simulated time, which removes a
//! whole class of floating-point-comparison heisenbugs from event ordering.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use maddpipe_tech::units::Seconds;

/// An absolute simulation timestamp (femtoseconds since time zero).
///
/// ```
/// use maddpipe_sim::time::SimTime;
///
/// let t = SimTime::from_picos(2.5);
/// assert_eq!(t.as_femtos(), 2_500);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from femtoseconds.
    #[inline]
    pub const fn from_femtos(fs: u64) -> SimTime {
        SimTime(fs)
    }

    /// Creates a timestamp from picoseconds (fractional values are rounded
    /// to the nearest femtosecond).
    #[inline]
    pub fn from_picos(ps: f64) -> SimTime {
        SimTime((ps * 1e3).round() as u64)
    }

    /// Creates a timestamp from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> SimTime {
        SimTime((ns * 1e6).round() as u64)
    }

    /// This timestamp in femtoseconds.
    #[inline]
    pub const fn as_femtos(self) -> u64 {
        self.0
    }

    /// This timestamp in picoseconds.
    #[inline]
    pub fn as_picos(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// This timestamp in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Converts to the analog-domain [`Seconds`] type.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 as f64 * 1e-15)
    }

    /// Rounds a physical duration to simulator resolution.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or non-finite: the kernel has no notion of
    /// negative time.
    #[inline]
    pub fn from_seconds(s: Seconds) -> SimTime {
        assert!(
            s.value().is_finite() && s.value() >= 0.0,
            "cannot convert {s} to simulation time"
        );
        SimTime((s.value() * 1e15).round() as u64)
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow — subtracting a later time from an earlier one is
    /// always a logic error in the kernel.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} ns", self.as_nanos())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ps", self.as_picos())
        } else {
            write!(f, "{} fs", self.0)
        }
    }
}

impl From<Seconds> for SimTime {
    fn from(s: Seconds) -> SimTime {
        SimTime::from_seconds(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_nanos(17.8);
        assert_eq!(t.as_femtos(), 17_800_000);
        assert!((t.as_nanos() - 17.8).abs() < 1e-12);
        assert!((t.as_picos() - 17_800.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_round_trip() {
        let s = Seconds::from_picos(123.0);
        let t = SimTime::from_seconds(s);
        assert_eq!(t.as_femtos(), 123_000);
        assert!((t.to_seconds().as_picos() - 123.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_femtos(100);
        let b = SimTime::from_femtos(30);
        assert_eq!((a + b).as_femtos(), 130);
        assert_eq!((a - b).as_femtos(), 70);
        assert_eq!(b.since(a), SimTime::ZERO);
        assert_eq!(a.since(b).as_femtos(), 70);
        let mut c = a;
        c += b;
        assert_eq!(c.as_femtos(), 130);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_femtos(1) - SimTime::from_femtos(2);
    }

    #[test]
    #[should_panic(expected = "cannot convert")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_seconds(Seconds(-1.0));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_femtos(12).to_string(), "12 fs");
        assert_eq!(SimTime::from_picos(1.5).to_string(), "1.500 ps");
        assert_eq!(SimTime::from_nanos(2.0).to_string(), "2.000 ns");
    }

    #[test]
    fn saturating_add_at_horizon() {
        assert_eq!(SimTime::MAX + SimTime(1), SimTime::MAX);
    }
}
