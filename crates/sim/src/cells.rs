//! Standard-cell implementations and builder sugar.
//!
//! Combinational gates use inertial drives (glitches shorter than the gate
//! delay vanish, as on silicon). Sequential/stateful cells — the D-latch
//! with setup checking, the Muller C-element, and the pulse generator that
//! models the paper's `GE` latch-enable generator (Fig. 5) — keep internal
//! state across evaluations.

use crate::cell::{Cell, EvalCtx, ViolationKind};
use crate::circuit::{CircuitBuilder, NetId};
use crate::library::{CellClass, SampledTiming};
use crate::logic::Logic;
use crate::time::SimTime;

/// Drives the output according to the cell's sampled arcs: known values use
/// the matching edge arc, `X` uses the worst arc.
fn drive_resolved(ctx: &mut EvalCtx<'_>, pin: usize, value: Logic, t: SampledTiming) {
    ctx.drive(pin, value, t.for_value(value));
}

macro_rules! simple_gate {
    ($(#[$meta:meta])* $name:ident, $inputs:expr, |$vals:ident| $f:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            timing: SampledTiming,
        }

        impl $name {
            /// Creates the gate with pre-sampled timing arcs.
            pub fn new(timing: SampledTiming) -> $name {
                $name { timing }
            }

            /// The pure logic function of this gate.
            #[inline]
            pub(crate) fn logic(v: &[Logic]) -> Logic {
                let $vals = v;
                $f
            }

            /// The sampled timing arcs of this instance.
            #[inline]
            pub(crate) fn timing(&self) -> SampledTiming {
                self.timing
            }
        }

        impl Cell for $name {
            fn num_inputs(&self) -> usize {
                $inputs
            }

            fn num_outputs(&self) -> usize {
                1
            }

            fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
                let out = Self::logic(ctx.inputs());
                drive_resolved(ctx, 0, out, self.timing);
            }
        }
    };
}

simple_gate!(
    /// Inverter.
    Inverter,
    1,
    |v| !v[0]
);

simple_gate!(
    /// Non-inverting buffer.
    Buffer,
    1,
    |v| v[0]
);

simple_gate!(
    /// 2-input NAND.
    Nand2,
    2,
    |v| !(v[0] & v[1])
);

simple_gate!(
    /// 3-input NAND.
    Nand3,
    3,
    |v| !(v[0] & v[1] & v[2])
);

simple_gate!(
    /// 4-input NAND.
    Nand4,
    4,
    |v| !(v[0] & v[1] & v[2] & v[3])
);

simple_gate!(
    /// 2-input NOR.
    Nor2,
    2,
    |v| !(v[0] | v[1])
);

simple_gate!(
    /// 3-input NOR.
    Nor3,
    3,
    |v| !(v[0] | v[1] | v[2])
);

simple_gate!(
    /// 2-input AND.
    And2,
    2,
    |v| v[0] & v[1]
);

simple_gate!(
    /// 2-input OR.
    Or2,
    2,
    |v| v[0] | v[1]
);

simple_gate!(
    /// 2-input XOR.
    Xor2,
    2,
    |v| v[0] ^ v[1]
);

simple_gate!(
    /// 2:1 multiplexer: output = `sel ? b : a` (inputs `[a, b, sel]`).
    Mux2,
    3,
    |v| match v[2].to_bool() {
        Some(false) => v[0],
        Some(true) => v[1],
        // Unknown select: output known only if both data inputs agree.
        None =>
            if v[0] == v[1] {
                v[0]
            } else {
                Logic::X
            },
    }
);

/// Constant driver (tie-high / tie-low).
#[derive(Debug)]
pub struct Tie {
    level: Logic,
}

impl Tie {
    /// Creates a constant driver of `level`.
    pub fn new(level: Logic) -> Tie {
        Tie { level }
    }
}

impl Cell for Tie {
    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        ctx.drive(0, self.level, SimTime::ZERO);
    }
}

/// Pure delay element with transport semantics — models a wire segment or a
/// sized repeater chain whose delay was computed externally (e.g. from the
/// Elmore model).
#[derive(Debug)]
pub struct DelayLine {
    delay: SimTime,
}

impl DelayLine {
    /// Creates a delay line with the given propagation delay.
    pub fn new(delay: SimTime) -> DelayLine {
        DelayLine { delay }
    }
}

impl Cell for DelayLine {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let v = ctx.input(0);
        ctx.drive_transport(0, v, self.delay);
    }
}

/// Mirror-adder full adder: inputs `[a, b, cin]`, outputs `[sum, carry]`.
///
/// The carry arc of a mirror adder is roughly half the sum arc — this
/// matters for the carry-save accumulate path, whose critical arc is the
/// *sum* output feeding the next pipeline stage.
#[derive(Debug)]
pub struct FullAdderCell {
    sum_timing: SampledTiming,
    carry_timing: SampledTiming,
}

impl FullAdderCell {
    /// Creates a full adder from the sum-arc timing; the carry arc is
    /// derived (0.55×).
    pub fn new(sum_timing: SampledTiming) -> FullAdderCell {
        let carry_timing = SampledTiming {
            rise: SimTime::from_femtos((sum_timing.rise.as_femtos() as f64 * 0.55) as u64),
            fall: SimTime::from_femtos((sum_timing.fall.as_femtos() as f64 * 0.55) as u64),
        };
        FullAdderCell {
            sum_timing,
            carry_timing,
        }
    }
}

impl Cell for FullAdderCell {
    fn num_inputs(&self) -> usize {
        3
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let (a, b, c) = (ctx.input(0), ctx.input(1), ctx.input(2));
        let sum = a ^ b ^ c;
        let carry = (a & b) | (c & (a ^ b));
        drive_resolved(ctx, 0, sum, self.sum_timing);
        drive_resolved(ctx, 1, carry, self.carry_timing);
    }
}

/// Level-sensitive D-latch with setup checking: inputs `[d, g]`, output `q`.
///
/// Transparent while `g` is high. When `g` falls, the cell checks that `d`
/// has been stable for at least the setup window and records a
/// [`ViolationKind::Setup`] violation otherwise — the failure mode the
/// paper's per-column RCD timing is designed to prevent "over a wide range
/// of PVT conditions" (§III-C).
#[derive(Debug)]
pub struct DLatch {
    timing: SampledTiming,
    setup: SimTime,
    last_d_change: Option<SimTime>,
    captured: Logic,
}

impl DLatch {
    /// Creates a latch with the given D→Q timing and setup window.
    pub fn new(timing: SampledTiming, setup: SimTime) -> DLatch {
        DLatch {
            timing,
            setup,
            last_d_change: None,
            captured: Logic::X,
        }
    }
}

impl Cell for DLatch {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let d = ctx.input(0);
        let g = ctx.input(1);
        if ctx.changed(0) {
            self.last_d_change = Some(ctx.now());
        }
        match g {
            Logic::High => {
                // Transparent: follow D.
                self.captured = d;
                drive_resolved(ctx, 0, d, self.timing);
            }
            Logic::Low => {
                if ctx.is_edge(1, Logic::Low) {
                    // Capture on the falling enable edge.
                    if let Some(t) = self.last_d_change {
                        let stable_for = ctx.now().since(t);
                        if stable_for < self.setup {
                            ctx.report(
                                ViolationKind::Setup,
                                format!(
                                    "D stable for only {stable_for} before G fell \
                                     (setup window {})",
                                    self.setup
                                ),
                            );
                            self.captured = Logic::X;
                            drive_resolved(ctx, 0, Logic::X, self.timing);
                            return;
                        }
                    }
                    self.captured = d;
                    drive_resolved(ctx, 0, self.captured, self.timing);
                }
                // Opaque: D changes are ignored.
            }
            Logic::X => {
                self.captured = Logic::X;
                drive_resolved(ctx, 0, Logic::X, self.timing);
            }
        }
    }
}

/// Two-input Muller C-element: output goes high when *both* inputs are high,
/// low when both are low, and holds otherwise. The fundamental state-holding
/// primitive of asynchronous handshake circuits.
#[derive(Debug)]
pub struct CElement {
    timing: SampledTiming,
    state: Logic,
}

impl CElement {
    /// Creates a C-element initialised to `reset_state`.
    pub fn new(timing: SampledTiming, reset_state: Logic) -> CElement {
        CElement {
            timing,
            state: reset_state,
        }
    }
}

impl Cell for CElement {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let (a, b) = (ctx.input(0), ctx.input(1));
        let next = if a == Logic::High && b == Logic::High {
            Logic::High
        } else if a == Logic::Low && b == Logic::Low {
            Logic::Low
        } else {
            self.state
        };
        self.state = next;
        drive_resolved(ctx, 0, next, self.timing);
    }
}

/// Edge-triggered pulse generator: on each rising edge of the trigger input
/// it emits a single high pulse of fixed width after a fixed delay.
///
/// Models the delay-gate + latch-enable (`GE`) generator of the paper's
/// decoder column (Fig. 5): the RCD transition fires this cell, which then
/// strobes the CSA output latches.
#[derive(Debug)]
pub struct PulseGen {
    delay: SimTime,
    width: SimTime,
}

impl PulseGen {
    /// Creates a pulse generator.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero — a zero-width pulse would be a no-op and
    /// always indicates a construction bug.
    pub fn new(delay: SimTime, width: SimTime) -> PulseGen {
        assert!(width > SimTime::ZERO, "pulse width must be positive");
        PulseGen { delay, width }
    }
}

impl Cell for PulseGen {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        if ctx.trigger().is_none() {
            // Power-up: establish a low output.
            ctx.drive(0, Logic::Low, SimTime::ZERO);
            return;
        }
        if ctx.is_edge(0, Logic::High) {
            ctx.drive_transport(0, Logic::High, self.delay);
            ctx.drive_transport(0, Logic::Low, self.delay + self.width);
        }
    }
}

macro_rules! cell_kind {
    ($($(#[$meta:meta])* $variant:ident($inner:ty)),+ $(,)?) => {
        /// Statically-dispatched behaviour of a netlist cell.
        ///
        /// The event kernel spends most of its time in [`CellKind::eval`],
        /// so the shipped standard cells are enum variants the compiler can
        /// dispatch with a jump table and inline — no vtable, no heap
        /// indirection. Cells defined outside this crate (SRAM columns,
        /// dual-rail comparators, handshake controllers) ride in through
        /// the [`CellKind::Dynamic`] escape hatch, which preserves the open
        /// [`Cell`] trait at the cost of one virtual call per evaluation.
        #[derive(Debug)]
        pub enum CellKind {
            $($(#[$meta])* $variant($inner),)+
            /// Escape hatch: any boxed [`Cell`] implementation.
            Dynamic(Box<dyn Cell>),
        }

        impl CellKind {
            /// Number of input pins.
            pub fn num_inputs(&self) -> usize {
                match self {
                    $(CellKind::$variant(c) => c.num_inputs(),)+
                    CellKind::Dynamic(c) => c.num_inputs(),
                }
            }

            /// Number of output pins.
            pub fn num_outputs(&self) -> usize {
                match self {
                    $(CellKind::$variant(c) => c.num_outputs(),)+
                    CellKind::Dynamic(c) => c.num_outputs(),
                }
            }

            /// Reacts to input changes (or power-up) by scheduling drives —
            /// see [`Cell::eval`].
            #[inline]
            pub fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
                match self {
                    $(CellKind::$variant(c) => c.eval(ctx),)+
                    CellKind::Dynamic(c) => c.eval(ctx),
                }
            }

            /// The shape of this cell as seen by the kernel's compiled
            /// fanout table: a 1-input gate, a commutative 2-input gate,
            /// or anything else.
            pub(crate) fn shape(&self) -> GateShape {
                match self {
                    CellKind::Inverter(g) => GateShape::Unary {
                        invert: true,
                        timing: g.timing(),
                    },
                    CellKind::Buffer(g) => GateShape::Unary {
                        invert: false,
                        timing: g.timing(),
                    },
                    CellKind::Nand2(g) => GateShape::Binary {
                        op: Gate2::Nand,
                        timing: g.timing(),
                    },
                    CellKind::Nor2(g) => GateShape::Binary {
                        op: Gate2::Nor,
                        timing: g.timing(),
                    },
                    CellKind::And2(g) => GateShape::Binary {
                        op: Gate2::And,
                        timing: g.timing(),
                    },
                    CellKind::Or2(g) => GateShape::Binary {
                        op: Gate2::Or,
                        timing: g.timing(),
                    },
                    CellKind::Xor2(g) => GateShape::Binary {
                        op: Gate2::Xor,
                        timing: g.timing(),
                    },
                    _ => GateShape::Other,
                }
            }

            /// For the stateless single-output combinational gates that the
            /// kernel's compiled [`GateShape`] tables do *not* cover (the
            /// wider NAND/NOR gates and the mux), the output value and
            /// inertial delay implied by `inputs` — the kernel schedules it
            /// directly, skipping the evaluation-context and drive-buffer
            /// round trip. `None` for every other cell; the 1- and 2-input
            /// gates never reach this because `CellFast` dispatches them
            /// first.
            #[inline]
            pub(crate) fn gate_response(&self, inputs: &[Logic]) -> Option<(Logic, SimTime)> {
                macro_rules! arm {
                    ($g:expr, $gate:ident) => {{
                        let v = $gate::logic(inputs);
                        Some((v, $g.timing().for_value(v)))
                    }};
                }
                match self {
                    CellKind::Nand3(g) => arm!(g, Nand3),
                    CellKind::Nand4(g) => arm!(g, Nand4),
                    CellKind::Nor3(g) => arm!(g, Nor3),
                    CellKind::Mux2(g) => arm!(g, Mux2),
                    _ => None,
                }
            }
        }

        $(impl From<$inner> for CellKind {
            fn from(cell: $inner) -> CellKind {
                CellKind::$variant(cell)
            }
        })+

        impl From<Box<dyn Cell>> for CellKind {
            fn from(cell: Box<dyn Cell>) -> CellKind {
                CellKind::Dynamic(cell)
            }
        }
    };
}

cell_kind!(
    /// Inverter.
    Inverter(Inverter),
    /// Buffer.
    Buffer(Buffer),
    /// 2-input NAND.
    Nand2(Nand2),
    /// 3-input NAND.
    Nand3(Nand3),
    /// 4-input NAND.
    Nand4(Nand4),
    /// 2-input NOR.
    Nor2(Nor2),
    /// 3-input NOR.
    Nor3(Nor3),
    /// 2-input AND.
    And2(And2),
    /// 2-input OR.
    Or2(Or2),
    /// 2-input XOR.
    Xor2(Xor2),
    /// 2:1 multiplexer.
    Mux2(Mux2),
    /// Mirror-adder full adder.
    FullAdder(FullAdderCell),
    /// Level-sensitive D-latch.
    DLatch(DLatch),
    /// Muller C-element.
    CElement(CElement),
    /// Edge-triggered pulse generator.
    PulseGen(PulseGen),
    /// Transport delay line.
    DelayLine(DelayLine),
    /// Constant tie cell.
    Tie(Tie),
);

/// A commutative two-input gate function, for the kernel's compiled
/// fanout table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Gate2 {
    /// NAND.
    Nand,
    /// NOR.
    Nor,
    /// AND.
    And,
    /// OR.
    Or,
    /// XOR.
    Xor,
}

impl Gate2 {
    /// Applies the gate function (operand order is irrelevant — every
    /// variant is commutative).
    #[inline]
    pub(crate) fn apply(self, a: Logic, b: Logic) -> Logic {
        match self {
            Gate2::Nand => !(a & b),
            Gate2::Nor => !(a | b),
            Gate2::And => a & b,
            Gate2::Or => a | b,
            Gate2::Xor => a ^ b,
        }
    }
}

/// How a cell looks to the kernel's compiled fanout table.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GateShape {
    /// A 1-input, 1-output stateless gate (inverter or buffer).
    Unary {
        /// `true` for an inverter.
        invert: bool,
        /// Sampled timing arcs.
        timing: SampledTiming,
    },
    /// A commutative 2-input, 1-output stateless gate.
    Binary {
        /// The gate function.
        op: Gate2,
        /// Sampled timing arcs.
        timing: SampledTiming,
    },
    /// Anything else — evaluated through the generic path.
    Other,
}

macro_rules! builder_gate {
    ($(#[$meta:meta])* $fn_name:ident, $cell:ident, $class:ident, $n:expr) => {
        $(#[$meta])*
        pub fn $fn_name(&mut self, name: &str, inputs: [NetId; $n]) -> NetId {
            let t = self.library_mut().timing(CellClass::$class);
            let y = self.net(format!("{name}.y"));
            self.add_cell_kind(name, $cell::new(t), &inputs, &[y]);
            y
        }
    };
}

/// Convenience constructors: each instantiates a standard cell with timing
/// sampled from the builder's library and returns the created output net.
impl CircuitBuilder {
    builder_gate!(
        /// Adds an inverter; returns its output net.
        inv_gate, Inverter, Inv, 1
    );
    builder_gate!(
        /// Adds a buffer; returns its output net.
        buf_gate, Buffer, Buf, 1
    );
    builder_gate!(
        /// Adds a 2-input NAND; returns its output net.
        nand2, Nand2, Nand2, 2
    );
    builder_gate!(
        /// Adds a 3-input NAND; returns its output net.
        nand3, Nand3, Nand3, 3
    );
    builder_gate!(
        /// Adds a 4-input NAND; returns its output net.
        nand4, Nand4, Nand4, 4
    );
    builder_gate!(
        /// Adds a 2-input NOR; returns its output net.
        nor2, Nor2, Nor2, 2
    );
    builder_gate!(
        /// Adds a 3-input NOR; returns its output net.
        nor3, Nor3, Nor3, 3
    );
    builder_gate!(
        /// Adds a 2-input AND; returns its output net.
        and2, And2, And2, 2
    );
    builder_gate!(
        /// Adds a 2-input OR; returns its output net.
        or2, Or2, Or2, 2
    );
    builder_gate!(
        /// Adds a 2-input XOR; returns its output net.
        xor2, Xor2, Xor2, 2
    );

    /// Adds an inverter (short alias for [`CircuitBuilder::inv_gate`]).
    pub fn inv(&mut self, name: &str, a: NetId) -> NetId {
        self.inv_gate(name, [a])
    }

    /// Adds a 2:1 mux (`sel ? b : a`); returns its output net.
    pub fn mux2(&mut self, name: &str, a: NetId, b: NetId, sel: NetId) -> NetId {
        let t = self.library_mut().timing(CellClass::Mux2);
        let y = self.net(format!("{name}.y"));
        self.add_cell_kind(name, Mux2::new(t), &[a, b, sel], &[y]);
        y
    }

    /// Adds a full adder; returns `(sum, carry)` nets.
    pub fn full_adder(&mut self, name: &str, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let t = self.library_mut().timing(CellClass::FullAdder);
        let s = self.net(format!("{name}.s"));
        let c = self.net(format!("{name}.c"));
        self.add_cell_kind(name, FullAdderCell::new(t), &[a, b, cin], &[s, c]);
        (s, c)
    }

    /// Adds a level-sensitive D-latch with the library's default setup
    /// window (one latch delay); returns the Q net.
    pub fn latch(&mut self, name: &str, d: NetId, g: NetId) -> NetId {
        let t = self.library_mut().timing(CellClass::Latch);
        let setup = t.worst();
        let q = self.net(format!("{name}.q"));
        self.add_cell_kind(name, DLatch::new(t, setup), &[d, g], &[q]);
        q
    }

    /// Adds a Muller C-element reset to `reset_state`; returns its output.
    pub fn c_element(&mut self, name: &str, a: NetId, b: NetId, reset_state: Logic) -> NetId {
        let t = self.library_mut().timing(CellClass::CElement);
        let q = self.net(format!("{name}.q"));
        self.add_cell_kind(name, CElement::new(t, reset_state), &[a, b], &[q]);
        q
    }

    /// Adds a pulse generator; returns the pulse net.
    pub fn pulse_gen(
        &mut self,
        name: &str,
        trigger: NetId,
        delay: SimTime,
        width: SimTime,
    ) -> NetId {
        let p = self.net(format!("{name}.p"));
        self.add_cell_kind(name, PulseGen::new(delay, width), &[trigger], &[p]);
        p
    }

    /// Adds a transport delay line; returns the delayed net.
    pub fn delay_line(&mut self, name: &str, input: NetId, delay: SimTime) -> NetId {
        let y = self.net(format!("{name}.y"));
        self.add_cell_kind(name, DelayLine::new(delay), &[input], &[y]);
        y
    }

    /// Adds a constant tie cell; returns the constant net.
    pub fn tie(&mut self, name: &str, level: Logic) -> NetId {
        let y = self.net(format!("{name}.y"));
        self.add_cell_kind(name, Tie::new(level), &[], &[y]);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timing() -> SampledTiming {
        SampledTiming {
            rise: SimTime::from_picos(10.0),
            fall: SimTime::from_picos(8.0),
        }
    }

    fn eval_once(
        cell: &mut dyn Cell,
        inputs: &[Logic],
        triggers: &[usize],
    ) -> Vec<crate::cell::Drive> {
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        let mut ctx = EvalCtx {
            now: SimTime::from_picos(100.0),
            input_values: inputs,
            triggers,
            drives: &mut drives,
            violations: &mut violations,
            cell_name: "dut",
        };
        cell.eval(&mut ctx);
        drives
    }

    #[test]
    fn gate_truth_tables() {
        let t = sample_timing();
        let cases: Vec<(Box<dyn Cell>, Vec<Logic>, Logic)> = vec![
            (Box::new(Inverter::new(t)), vec![Logic::High], Logic::Low),
            (
                Box::new(Nand2::new(t)),
                vec![Logic::High, Logic::High],
                Logic::Low,
            ),
            (
                Box::new(Nand2::new(t)),
                vec![Logic::Low, Logic::X],
                Logic::High,
            ),
            (
                Box::new(Nor2::new(t)),
                vec![Logic::Low, Logic::Low],
                Logic::High,
            ),
            (
                Box::new(Xor2::new(t)),
                vec![Logic::High, Logic::Low],
                Logic::High,
            ),
            (
                Box::new(Nand4::new(t)),
                vec![Logic::High, Logic::High, Logic::High, Logic::Low],
                Logic::High,
            ),
        ];
        for (mut cell, inputs, expected) in cases {
            let drives = eval_once(cell.as_mut(), &inputs, &[0]);
            assert_eq!(drives.len(), 1);
            assert_eq!(drives[0].value, expected, "inputs {inputs:?}");
        }
    }

    #[test]
    fn rise_and_fall_use_their_arcs() {
        let t = sample_timing();
        let mut inv = Inverter::new(t);
        let high = eval_once(&mut inv, &[Logic::Low], &[0]);
        assert_eq!(high[0].delay, t.rise);
        let low = eval_once(&mut inv, &[Logic::High], &[0]);
        assert_eq!(low[0].delay, t.fall);
    }

    #[test]
    fn mux_handles_unknown_select() {
        let t = sample_timing();
        let mut mux = Mux2::new(t);
        let same = eval_once(&mut mux, &[Logic::High, Logic::High, Logic::X], &[2]);
        assert_eq!(same[0].value, Logic::High, "agreeing data defeats X select");
        let diff = eval_once(&mut mux, &[Logic::High, Logic::Low, Logic::X], &[2]);
        assert_eq!(diff[0].value, Logic::X);
    }

    #[test]
    fn full_adder_is_exact_and_carry_is_faster() {
        let t = sample_timing();
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    let mut fa = FullAdderCell::new(t);
                    let inputs = [
                        Logic::from_bool(a == 1),
                        Logic::from_bool(b == 1),
                        Logic::from_bool(c == 1),
                    ];
                    let drives = eval_once(&mut fa, &inputs, &[0]);
                    let sum = drives.iter().find(|d| d.out_pin == 0).unwrap();
                    let carry = drives.iter().find(|d| d.out_pin == 1).unwrap();
                    let total = a + b + c;
                    assert_eq!(sum.value, Logic::from_bool(total & 1 == 1));
                    assert_eq!(carry.value, Logic::from_bool(total >= 2));
                    assert!(carry.delay < sum.delay);
                }
            }
        }
    }

    #[test]
    fn latch_is_transparent_then_opaque() {
        let t = sample_timing();
        let mut latch = DLatch::new(t, SimTime::from_picos(5.0));
        // Transparent: G high, D high → Q high.
        let d = eval_once(&mut latch, &[Logic::High, Logic::High], &[0]);
        assert_eq!(d[0].value, Logic::High);
        // Opaque: D change with G low produces no drive.
        let none = eval_once(&mut latch, &[Logic::Low, Logic::Low], &[0]);
        assert!(none.is_empty(), "latch must ignore D while opaque");
    }

    #[test]
    fn latch_setup_violation_reported() {
        let t = sample_timing();
        let mut latch = DLatch::new(t, SimTime::from_picos(50.0));
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        // D changes at t=100 ps...
        {
            let mut ctx = EvalCtx {
                now: SimTime::from_picos(100.0),
                input_values: &[Logic::High, Logic::High],
                triggers: &[0],
                drives: &mut drives,
                violations: &mut violations,
                cell_name: "lat",
            };
            latch.eval(&mut ctx);
        }
        // ...and G falls at t=110 ps — only 10 ps of stability, needs 50.
        {
            let mut ctx = EvalCtx {
                now: SimTime::from_picos(110.0),
                input_values: &[Logic::High, Logic::Low],
                triggers: &[1],
                drives: &mut drives,
                violations: &mut violations,
                cell_name: "lat",
            };
            latch.eval(&mut ctx);
        }
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::Setup);
    }

    #[test]
    fn c_element_holds_state() {
        let t = sample_timing();
        let mut c = CElement::new(t, Logic::Low);
        let up = eval_once(&mut c, &[Logic::High, Logic::High], &[0]);
        assert_eq!(up[0].value, Logic::High);
        // Disagreeing inputs: hold previous state (High).
        let hold = eval_once(&mut c, &[Logic::Low, Logic::High], &[0]);
        assert_eq!(hold[0].value, Logic::High);
        let down = eval_once(&mut c, &[Logic::Low, Logic::Low], &[1]);
        assert_eq!(down[0].value, Logic::Low);
    }

    #[test]
    fn pulse_gen_emits_both_edges() {
        let mut p = PulseGen::new(SimTime::from_picos(5.0), SimTime::from_picos(20.0));
        let drives = eval_once(&mut p, &[Logic::High], &[0]);
        assert_eq!(drives.len(), 2);
        assert_eq!(drives[0].value, Logic::High);
        assert_eq!(drives[0].delay, SimTime::from_picos(5.0));
        assert_eq!(drives[1].value, Logic::Low);
        assert_eq!(drives[1].delay, SimTime::from_picos(25.0));
        // Falling trigger edge: nothing.
        let none = eval_once(&mut p, &[Logic::Low], &[0]);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "pulse width must be positive")]
    fn zero_width_pulse_rejected() {
        let _ = PulseGen::new(SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn delay_line_uses_transport_mode() {
        let mut dl = DelayLine::new(SimTime::from_picos(7.0));
        let drives = eval_once(&mut dl, &[Logic::High], &[0]);
        assert_eq!(drives[0].mode, crate::cell::DriveMode::Transport);
        assert_eq!(drives[0].delay, SimTime::from_picos(7.0));
    }
}
