//! Per-domain switching-energy accounting.
//!
//! Every net transition dissipates the energy of (dis)charging that net's
//! capacitance. The meter attributes each edge to the net's *energy domain*
//! (encoder / decoder / control / …), which is how the simulator regenerates
//! the paper's Fig. 7 energy breakdown: run a workload, then read the
//! per-domain totals.

use crate::circuit::DomainId;
use core::fmt;
use maddpipe_tech::units::Joules;

/// Accumulates switching energy per domain.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    by_domain: Vec<Joules>,
    edges: Vec<u64>,
}

impl EnergyMeter {
    /// Creates a meter for `domain_count` domains.
    pub fn new(domain_count: usize) -> EnergyMeter {
        EnergyMeter {
            by_domain: vec![Joules::ZERO; domain_count],
            edges: vec![0; domain_count],
        }
    }

    /// Records one edge of `energy` joules in `domain`.
    #[inline]
    pub fn record(&mut self, domain: DomainId, energy: Joules) {
        self.by_domain[domain.0 as usize] += energy;
        self.edges[domain.0 as usize] += 1;
    }

    /// Energy accumulated in one domain so far.
    pub fn domain_energy(&self, domain: DomainId) -> Joules {
        self.by_domain[domain.0 as usize]
    }

    /// Signal edges recorded in one domain so far.
    pub fn domain_edges(&self, domain: DomainId) -> u64 {
        self.edges[domain.0 as usize]
    }

    /// Total energy across all domains.
    pub fn total(&self) -> Joules {
        self.by_domain.iter().copied().sum()
    }

    /// Resets all counters to zero (e.g. to exclude programming/warm-up
    /// energy from a measurement window).
    pub fn reset(&mut self) {
        self.by_domain.fill(Joules::ZERO);
        self.edges.fill(0);
    }

    /// Snapshot with resolved names for reporting.
    pub fn report(&self, domain_names: &[String]) -> EnergyReport {
        assert_eq!(
            domain_names.len(),
            self.by_domain.len(),
            "domain name table does not match meter"
        );
        EnergyReport {
            rows: domain_names
                .iter()
                .zip(&self.by_domain)
                .zip(&self.edges)
                .map(|((name, &energy), &edges)| EnergyRow {
                    domain: name.clone(),
                    energy,
                    edges,
                })
                .collect(),
        }
    }
}

/// One domain's line in an [`EnergyReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Domain name.
    pub domain: String,
    /// Accumulated switching energy.
    pub energy: Joules,
    /// Number of signal edges recorded.
    pub edges: u64,
}

/// A resolved per-domain energy breakdown.
///
/// ```
/// use maddpipe_sim::energy::EnergyMeter;
/// use maddpipe_sim::circuit::DomainId;
/// use maddpipe_tech::units::Joules;
///
/// let mut m = EnergyMeter::new(2);
/// m.record(DomainId::TOP, Joules::from_femtos(3.0));
/// let report = m.report(&["top".into(), "enc".into()]);
/// assert!((report.total().as_femtos() - 3.0).abs() < 1e-12);
/// assert!((report.fraction("top") - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Per-domain rows, in domain-id order.
    pub rows: Vec<EnergyRow>,
}

impl EnergyReport {
    /// Total energy across all domains.
    pub fn total(&self) -> Joules {
        self.rows.iter().map(|r| r.energy).sum()
    }

    /// Energy of the named domain, zero if absent.
    pub fn energy_of(&self, domain: &str) -> Joules {
        self.rows
            .iter()
            .find(|r| r.domain == domain)
            .map(|r| r.energy)
            .unwrap_or(Joules::ZERO)
    }

    /// Fraction (0–1) of total energy spent in the named domain.
    ///
    /// Returns 0 when no energy has been recorded at all.
    pub fn fraction(&self, domain: &str) -> f64 {
        let total = self.total();
        if total.value() == 0.0 {
            0.0
        } else {
            self.energy_of(domain) / total
        }
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>14} {:>10} {:>7}",
            "domain", "energy", "edges", "share"
        )?;
        let total = self.total();
        for row in &self.rows {
            let share = if total.value() > 0.0 {
                row.energy / total * 100.0
            } else {
                0.0
            };
            writeln!(
                f,
                "{:<24} {:>14} {:>10} {:>6.1}%",
                row.domain,
                row.energy.to_string(),
                row.edges,
                share
            )?;
        }
        write!(f, "{:<24} {:>14}", "total", total.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_domain() {
        let mut m = EnergyMeter::new(3);
        m.record(DomainId(1), Joules::from_femtos(2.0));
        m.record(DomainId(1), Joules::from_femtos(3.0));
        m.record(DomainId(2), Joules::from_femtos(5.0));
        assert!((m.domain_energy(DomainId(1)).as_femtos() - 5.0).abs() < 1e-12);
        assert_eq!(m.domain_edges(DomainId(1)), 2);
        assert!((m.total().as_femtos() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = EnergyMeter::new(1);
        m.record(DomainId::TOP, Joules::from_femtos(1.0));
        m.reset();
        assert_eq!(m.total(), Joules::ZERO);
        assert_eq!(m.domain_edges(DomainId::TOP), 0);
    }

    #[test]
    fn report_fractions() {
        let mut m = EnergyMeter::new(2);
        m.record(DomainId(0), Joules::from_femtos(1.0));
        m.record(DomainId(1), Joules::from_femtos(3.0));
        let r = m.report(&["a".into(), "b".into()]);
        assert!((r.fraction("b") - 0.75).abs() < 1e-12);
        assert_eq!(r.energy_of("missing"), Joules::ZERO);
        let display = r.to_string();
        assert!(display.contains("total"), "{display}");
    }

    #[test]
    fn empty_report_fraction_is_zero() {
        let m = EnergyMeter::new(1);
        let r = m.report(&["a".into()]);
        assert_eq!(r.fraction("a"), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match meter")]
    fn mismatched_name_table_panics() {
        let m = EnergyMeter::new(2);
        let _ = m.report(&["only-one".into()]);
    }
}
