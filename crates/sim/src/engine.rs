//! The deterministic event-driven simulation kernel.
//!
//! Events are ordered by `(time, sequence-number)`, so two simulations of
//! the same netlist with the same stimulus are bit-identical — a property
//! the regression tests rely on. Inertial cancellation is implemented with
//! per-net generation counters: an inertial drive bumps the net's
//! generation, and any queued event carrying a stale generation is dropped
//! when popped (cheaper than surgically removing heap entries).

use crate::cell::{Drive, DriveMode, EvalCtx, Violation};
use crate::circuit::{CellId, Circuit, DomainId, NetId};
use crate::energy::{EnergyMeter, EnergyReport};
use crate::logic::{bits_to_u64, Logic};
use crate::time::SimTime;
use crate::trace::Trace;
use maddpipe_tech::units::Joules;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    net: NetId,
    value: Logic,
    gen: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Why a [`Simulator::run_to_quiescence`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained; the circuit is stable at the given time.
    Quiescent(SimTime),
    /// The time horizon was reached with events still pending.
    TimeLimit,
}

/// Error signalling a circuit that would not settle (combinational loop or
/// free-running oscillator) within the configured event budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OscillationError {
    /// Events processed before giving up.
    pub events: u64,
    /// Simulation time reached.
    pub time: SimTime,
}

impl fmt::Display for OscillationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit did not reach quiescence within {} events (stopped at {})",
            self.events, self.time
        )
    }
}

impl std::error::Error for OscillationError {}

/// Kernel statistics, useful for performance analysis and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue (including stale and no-change ones).
    pub events_popped: u64,
    /// Events dropped because a later inertial drive superseded them.
    pub events_stale: u64,
    /// Actual net value changes applied.
    pub transitions: u64,
    /// Cell evaluations performed.
    pub evals: u64,
    /// High-water mark of the event queue.
    pub max_queue: usize,
}

/// The event-driven simulator.
///
/// ```
/// use maddpipe_sim::prelude::*;
///
/// let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
/// let mut b = CircuitBuilder::new(lib);
/// let a = b.input("a");
/// let y = b.inv("u0", a);
/// let mut sim = Simulator::new(b.build());
/// sim.poke(a, Logic::Low);
/// sim.run_to_quiescence().unwrap();
/// assert_eq!(sim.value(y), Logic::High);
/// ```
#[derive(Debug)]
pub struct Simulator {
    circuit: Circuit,
    values: Vec<Logic>,
    gens: Vec<u32>,
    queue: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    energy: EnergyMeter,
    edge_energy: Vec<(Joules, Joules)>,
    violations: Vec<Violation>,
    trace: Trace,
    stats: SimStats,
    event_cap: u64,
    drive_buf: Vec<Drive>,
}

impl Simulator {
    /// Creates a simulator and performs the power-up evaluation of every
    /// cell at time zero.
    pub fn new(circuit: Circuit) -> Simulator {
        let n_nets = circuit.nets.len();
        let n_domains = circuit.domains.len();
        let edge_energy = circuit
            .nets
            .iter()
            .map(|net| circuit.library.edge_energy(net.cap))
            .collect();
        let mut sim = Simulator {
            values: vec![Logic::X; n_nets],
            gens: vec![0; n_nets],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            energy: EnergyMeter::new(n_domains),
            edge_energy,
            violations: Vec::new(),
            trace: Trace::new(n_nets),
            stats: SimStats::default(),
            event_cap: 50_000_000,
            drive_buf: Vec::new(),
            circuit,
        };
        for i in 0..sim.circuit.cells.len() {
            sim.eval_cell(CellId(i as u32), None);
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The netlist being simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Present value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Packs an LSB-first bus into an integer; `None` if any bit is `X`.
    pub fn bus_value(&self, bus: &[NetId]) -> Option<u64> {
        let bits: Vec<Logic> = bus.iter().map(|&n| self.value(n)).collect();
        bits_to_u64(&bits)
    }

    /// Drives a primary input to `value` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the net has a driver — forcing driven nets hides real
    /// contention bugs, so it is not allowed.
    pub fn poke(&mut self, net: NetId, value: Logic) {
        self.poke_after(net, value, SimTime::ZERO);
    }

    /// Drives a primary input to `value` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if the net has a driver.
    pub fn poke_after(&mut self, net: NetId, value: Logic, delay: SimTime) {
        assert!(
            self.circuit.nets[net.index()].driver.is_none(),
            "cannot poke net `{}`: it is driven by a cell",
            self.circuit.nets[net.index()].name
        );
        self.schedule(net, value, delay, DriveMode::Inertial);
    }

    /// Drives each bit of an LSB-first bus from an integer (inputs only).
    pub fn poke_bus(&mut self, bus: &[NetId], value: u64) {
        for (i, &net) in bus.iter().enumerate() {
            self.poke(net, Logic::from_bool(value >> i & 1 == 1));
        }
    }

    /// Enables waveform recording on a net.
    pub fn trace_net(&mut self, net: NetId) {
        self.trace.enable(net);
    }

    /// Enables waveform recording on every net (verbose; prefer
    /// [`Simulator::trace_net`] on the handful of nets of interest).
    pub fn trace_all(&mut self) {
        for i in 0..self.circuit.nets.len() {
            self.trace.enable(NetId(i as u32));
        }
    }

    /// Timing/protocol violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Kernel statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-domain energy snapshot.
    pub fn energy_report(&self) -> EnergyReport {
        self.energy.report(&self.circuit.domains)
    }

    /// Total switching energy so far.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Clears the energy counters (not the waveform or violations).
    pub fn reset_energy(&mut self) {
        self.energy.reset();
    }

    /// Replaces the runaway-protection event budget used by
    /// [`Simulator::run_to_quiescence`].
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Processes exactly one queued event (stale events are consumed
    /// silently). Returns the time of the processed event, or `None` when
    /// the queue is empty.
    ///
    /// Useful for testbenches that must interleave stimulus with fine-
    /// grained observation (e.g. feeding a pipelined stream).
    pub fn step(&mut self) -> Option<SimTime> {
        if self.queue.is_empty() {
            return None;
        }
        self.pop_and_apply();
        Some(self.now)
    }

    /// Runs until the queue drains, returning the time of the last event.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted first,
    /// which indicates a combinational loop or unstable handshake.
    pub fn run_to_quiescence(&mut self) -> Result<SimTime, OscillationError> {
        let mut budget = self.event_cap;
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if budget == 0 {
                return Err(OscillationError {
                    events: self.event_cap,
                    time: ev.time,
                });
            }
            budget -= 1;
            self.pop_and_apply();
        }
        Ok(self.now)
    }

    /// Runs until simulation time `horizon` (inclusive). Events scheduled
    /// later stay queued. Returns how the run ended.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek() {
                Some(&Reverse(ev)) if ev.time <= horizon => {
                    self.pop_and_apply();
                }
                Some(_) => {
                    self.now = horizon;
                    return RunOutcome::TimeLimit;
                }
                None => {
                    let t = self.now;
                    self.now = horizon.max(t);
                    return RunOutcome::Quiescent(t);
                }
            }
        }
    }

    /// Runs until `net` takes `value` or the event queue drains.
    ///
    /// Returns the time of the transition, or `None` if the circuit went
    /// quiescent without it (callers decide whether that is a failure).
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted.
    pub fn run_until_net(
        &mut self,
        net: NetId,
        value: Logic,
    ) -> Result<Option<SimTime>, OscillationError> {
        if self.value(net) == value {
            return Ok(Some(self.now));
        }
        let mut budget = self.event_cap;
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if budget == 0 {
                return Err(OscillationError {
                    events: self.event_cap,
                    time: ev.time,
                });
            }
            budget -= 1;
            self.pop_and_apply();
            if self.value(net) == value {
                return Ok(Some(self.now));
            }
        }
        Ok(None)
    }

    /// Renders the recorded waveform as a VCD document.
    pub fn write_vcd(&self) -> String {
        self.trace.to_vcd(&self.circuit)
    }

    /// The recorded waveform entries, in time order.
    pub fn trace_entries(&self) -> &[crate::trace::TraceEntry] {
        self.trace.entries()
    }

    fn schedule(&mut self, net: NetId, value: Logic, delay: SimTime, mode: DriveMode) {
        let gen = match mode {
            DriveMode::Inertial => {
                let g = &mut self.gens[net.index()];
                *g = g.wrapping_add(1);
                *g
            }
            DriveMode::Transport => self.gens[net.index()],
        };
        self.seq += 1;
        let ev = Event {
            time: self.now + delay,
            seq: self.seq,
            net,
            value,
            gen,
        };
        self.queue.push(Reverse(ev));
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
    }

    fn pop_and_apply(&mut self) {
        let Reverse(ev) = self.queue.pop().expect("pop_and_apply on empty queue");
        self.stats.events_popped += 1;
        debug_assert!(ev.time >= self.now, "event time went backwards");
        if ev.gen != self.gens[ev.net.index()] {
            self.stats.events_stale += 1;
            return;
        }
        self.now = ev.time;
        let old = self.values[ev.net.index()];
        if old == ev.value {
            return;
        }
        self.values[ev.net.index()] = ev.value;
        self.stats.transitions += 1;
        self.record_edge(ev.net, ev.value);
        self.trace.record(ev.time, ev.net, ev.value);
        // Fan out: evaluate every cell listening on this net.
        let fanout_len = self.circuit.nets[ev.net.index()].fanout.len();
        for k in 0..fanout_len {
            let (cell, pin) = self.circuit.nets[ev.net.index()].fanout[k];
            self.eval_cell_triggered(cell, pin);
        }
    }

    fn record_edge(&mut self, net: NetId, new_value: Logic) {
        let (rise, fall) = self.edge_energy[net.index()];
        let domain: DomainId = self.circuit.nets[net.index()].domain;
        match new_value {
            Logic::High => self.energy.record(domain, rise),
            Logic::Low => self.energy.record(domain, fall),
            Logic::X => {}
        }
    }

    fn eval_cell_triggered(&mut self, cell: CellId, pin: usize) {
        self.eval_cell(cell, Some(pin));
    }

    fn eval_cell(&mut self, cell: CellId, trigger: Option<usize>) {
        self.stats.evals += 1;
        let mut drives = std::mem::take(&mut self.drive_buf);
        drives.clear();
        {
            let inst = &mut self.circuit.cells[cell.index()];
            let input_values: Vec<Logic> =
                inst.inputs.iter().map(|n| self.values[n.index()]).collect();
            let mut ctx = EvalCtx {
                now: self.now,
                input_values: &input_values,
                trigger,
                drives: &mut drives,
                violations: &mut self.violations,
                cell_name: &inst.name,
            };
            inst.cell.eval(&mut ctx);
        }
        let n_out = self.circuit.cells[cell.index()].outputs.len();
        for &d in drives.iter() {
            assert!(
                d.out_pin < n_out,
                "cell `{}` drove pin {} but has only {} outputs",
                self.circuit.cells[cell.index()].name,
                d.out_pin,
                n_out
            );
            let net = self.circuit.cells[cell.index()].outputs[d.out_pin];
            self.schedule(net, d.value, d.delay, d.mode);
        }
        drives.clear();
        self.drive_buf = drives;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::library::CellLibrary;
    use maddpipe_tech::prelude::*;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(CellLibrary::new(
            Technology::n22(),
            OperatingPoint::default(),
        ))
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut b = builder();
        let a = b.input("a");
        let n1 = b.inv("u0", a);
        let n2 = b.inv("u1", n1);
        let n3 = b.inv("u2", n2);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        let t = sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(n3), Logic::High);
        assert!(t > SimTime::ZERO, "three gate delays take nonzero time");
        // Flip the input; output follows after roughly 3 inverter delays.
        let before = sim.now();
        sim.poke(a, Logic::High);
        let t2 = sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(n3), Logic::Low);
        assert!(t2 > before);
    }

    #[test]
    fn determinism_bit_for_bit() {
        let run = || {
            let mut b = builder();
            let a = b.input("a");
            let x = b.inv("u0", a);
            let y = b.nand2("u1", [x, a]);
            let z = b.xor2("u2", [y, x]);
            let mut sim = Simulator::new(b.build());
            sim.poke(a, Logic::Low);
            sim.run_to_quiescence().unwrap();
            sim.poke(a, Logic::High);
            sim.run_to_quiescence().unwrap();
            (sim.now(), sim.value(z), sim.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ring_oscillator_reports_oscillation() {
        let mut b = builder();
        // Enable-gated ring oscillator. With three-valued logic a plain
        // inverter ring just sits at X, so the ring is kicked through a NAND:
        // while `enable` is low the loop holds at a known value, and raising
        // `enable` starts free oscillation.
        let enable = b.input("enable");
        let loop_net = b.net("ring");
        let n0 = b.nand2("u0", [enable, loop_net]);
        let n1 = b.inv("u1", n0);
        let t = b.library_mut().timing(crate::library::CellClass::Inv);
        b.add_cell(
            "u2",
            Box::new(crate::cells::Inverter::new(t)),
            &[n1],
            &[loop_net],
        );
        let mut sim = Simulator::new(b.build());
        sim.poke(enable, Logic::Low);
        sim.run_to_quiescence().unwrap(); // stable while disabled
        sim.set_event_cap(10_000);
        sim.poke(enable, Logic::High);
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("did not reach quiescence"));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut b = builder();
        let a = b.input("a");
        let slow = b.delay_line("wire", a, SimTime::from_nanos(5.0));
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::High);
        let outcome = sim.run_until(SimTime::from_nanos(1.0));
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.value(slow), Logic::X, "event still pending");
        let outcome = sim.run_until(SimTime::from_nanos(10.0));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        assert_eq!(sim.value(slow), Logic::High);
    }

    #[test]
    fn run_until_net_finds_transition_time() {
        let mut b = builder();
        let a = b.input("a");
        let d = b.delay_line("wire", a, SimTime::from_nanos(2.0));
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::High);
        let t = sim.run_until_net(d, Logic::High).unwrap().unwrap();
        assert_eq!(t, SimTime::from_nanos(2.0));
    }

    #[test]
    fn run_until_net_none_when_quiescent_without_match() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        // y will go High; asking for Low-after-quiescence yields None.
        let got = sim.run_until_net(y, Logic::Low).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn glitch_shorter_than_gate_delay_is_filtered() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let transitions_before = sim.stats().transitions;
        // Pulse far narrower than the inverter delay: schedule H then L 1 fs
        // apart. The second inertial drive supersedes the first.
        sim.poke(a, Logic::High);
        sim.poke_after(a, Logic::Low, SimTime::from_femtos(1));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(y), Logic::High, "output never saw the glitch");
        let delta = sim.stats().transitions - transitions_before;
        // Only the input wiggle itself may register; the inverter output
        // must not double-toggle.
        assert!(delta <= 2, "saw {delta} transitions");
    }

    #[test]
    fn poke_driven_net_panics() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.poke(y, Logic::Low);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn bus_helpers_round_trip() {
        let mut b = builder();
        let bus = b.bus("d", 8);
        let outs: Vec<NetId> = bus
            .iter()
            .enumerate()
            .map(|(i, &n)| b.inv(&format!("u{i}"), n))
            .collect();
        let mut sim = Simulator::new(b.build());
        sim.poke_bus(&bus, 0xA5);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.bus_value(&bus), Some(0xA5));
        assert_eq!(sim.bus_value(&outs), Some(0x5A));
    }

    #[test]
    fn energy_accrues_on_transitions_only() {
        let mut b = builder();
        let a = b.input("a");
        let _y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let e1 = sim.total_energy();
        // No stimulus, no energy.
        sim.run_until(SimTime::from_nanos(100.0));
        assert_eq!(sim.total_energy(), e1);
        sim.poke(a, Logic::High);
        sim.run_to_quiescence().unwrap();
        assert!(sim.total_energy() > e1);
    }

    #[test]
    fn energy_lands_in_the_right_domain() {
        let mut b = builder();
        let a = b.input("a");
        b.set_domain("enc");
        let y = b.inv("u0", a);
        b.set_domain("dec");
        let _z = b.inv("u1", y);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.reset_energy();
        sim.poke(a, Logic::High);
        sim.run_to_quiescence().unwrap();
        let report = sim.energy_report();
        assert!(report.energy_of("enc").value() > 0.0);
        assert!(report.energy_of("dec").value() > 0.0);
        // The input net `a` lives in the default domain.
        assert!(report.energy_of("top").value() > 0.0);
    }

    #[test]
    fn latch_in_circuit_captures_on_falling_enable() {
        let mut b = builder();
        let d = b.input("d");
        let g = b.input("g");
        let q = b.latch("lat", d, g);
        let mut sim = Simulator::new(b.build());
        sim.poke(d, Logic::High);
        sim.poke(g, Logic::High);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Logic::High);
        // Close the latch, then change D: Q must hold.
        sim.poke(g, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.poke(d, Logic::Low);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Logic::High, "latch holds captured value");
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
    }

    #[test]
    fn stats_are_populated() {
        let mut b = builder();
        let a = b.input("a");
        let _ = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let s = sim.stats();
        assert!(s.events_popped > 0 && s.transitions > 0 && s.evals > 0);
        assert!(s.max_queue >= 1);
    }
}
