//! The deterministic event-driven simulation kernel.
//!
//! Events are ordered by `(time, sequence-number)`, so two simulations of
//! the same netlist with the same stimulus are bit-identical — a property
//! the regression tests rely on. Inertial cancellation is implemented with
//! per-net generation counters: an inertial drive bumps the net's
//! generation, and any queued event carrying a stale generation is dropped
//! when popped (cheaper than surgically removing queue entries).
//!
//! # Hot-path architecture
//!
//! The kernel advances in **delta cycles**: it drains every queued event
//! that shares the earliest pending timestamp, applies the net updates,
//! and only then evaluates each affected cell — exactly once per delta,
//! however many of its input pins changed (a 16-bit bus landing on one
//! listener used to cost 16 evaluations; it now costs one). Dirty cells
//! are tracked with an epoch-stamped mark vector, so membership tests are
//! O(1) and nothing is allocated per cycle. Evaluation itself is
//! allocation-free: input values are snapshotted into a reusable scratch
//! arena and cell behaviour is dispatched through the
//! [`CellKind`](crate::cells::CellKind) enum (boxed trait objects remain
//! as an escape hatch for downstream macro-cells); nets that feed exactly
//! one simple gate are *compiled* into direct table entries that bypass
//! the cell instance entirely. Testbenches that need to observe handshake
//! edges register them with [`Simulator::run_until_edges`], which checks
//! watched nets only when they actually transition instead of polling
//! after every step.
//!
//! A deliberately naive implementation of the same semantics lives in
//! [`crate::reference`]; a property test keeps the two in agreement.

use crate::cell::{Drive, DriveMode, EvalCtx, Violation};
use crate::cells::{Gate2, GateShape};
use crate::circuit::{CellId, Circuit, DomainId, NetId};
use crate::energy::{EnergyMeter, EnergyReport};
use crate::library::SampledTiming;
use crate::logic::{bits_to_u64, Logic};
use crate::time::SimTime;
use crate::trace::Trace;
use maddpipe_tech::units::Joules;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    net: NetId,
    value: Logic,
    gen: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event priority queue, organised as *time buckets*.
///
/// Events only need priority ordering **across** timestamps — within one
/// timestamp they are consumed in sequence-number order, and sequence
/// numbers are handed out monotonically, so the push order within a bucket
/// already *is* the pop order. The queue therefore keeps a short list of
/// distinct pending timestamps (sorted descending, earliest last) with one
/// event bucket each:
///
/// * pushing onto an existing timestamp is a short scan from the earliest
///   end plus a `Vec` push — no sift, no per-event comparisons;
/// * a delta cycle takes the earliest bucket *wholesale* (a 24-byte `Vec`
///   header move), which makes wide same-time fronts (a 128-bit bus poke,
///   a precharge broadcast) nearly free;
/// * drained buckets are recycled through a pool, so a warmed-up queue
///   never allocates.
///
/// Netlists keep only a handful of distinct timestamps in flight (a
/// wavefront plus a few stragglers), so the linear scan beats a binary
/// heap's `O(log n)` sift with its 32-byte element moves by a wide margin;
/// determinism is untouched because `(time, seq)` order is preserved
/// exactly.
#[derive(Debug, Default)]
struct EventQueue {
    /// Single-event fast lane, only ever filled by a push into a
    /// completely empty queue. That restriction makes its ordering free:
    /// every event pushed later carries a higher sequence number, so when
    /// timestamps tie, the front event is the correct first pop. The
    /// dominant wavefront workload (pop one event, schedule its successor)
    /// lives entirely in this slot and never touches a `Vec`.
    front: Option<Event>,
    /// `(timestamp, bucket)` pairs sorted strictly descending by time —
    /// the earliest timestamp is `entries.last()`. Each bucket holds that
    /// timestamp's events in push (= seq) order.
    entries: Vec<(SimTime, Vec<Event>)>,
    /// Drained buckets awaiting reuse.
    pool: Vec<Vec<Event>>,
    /// Total queued events.
    len: usize,
}

impl EventQueue {
    #[inline]
    fn push(&mut self, ev: Event) {
        self.len += 1;
        if self.front.is_none() && self.entries.is_empty() {
            self.front = Some(ev);
            return;
        }
        // Hot arms first: joining the earliest pending timestamp (wide
        // same-time fronts) or becoming the new earliest (a wavefront
        // scheduling its successor past a straggler).
        match self.entries.last_mut() {
            Some((t, bucket)) if *t == ev.time => {
                bucket.push(ev);
                return;
            }
            Some((t, _)) if *t < ev.time => {}
            _ => {
                // No buckets yet, or `ev` is the new earliest bucket time.
                let mut bucket = self.pool.pop().unwrap_or_default();
                bucket.push(ev);
                self.entries.push((ev.time, bucket));
                return;
            }
        }
        // Cold arm: `ev.time` lies beyond the earliest pending timestamp.
        // Scan from the earliest end — in-flight timestamp counts are
        // small, so a linear scan beats heap sifting.
        let mut j = self.entries.len() - 1;
        while j > 0 && self.entries[j - 1].0 < ev.time {
            j -= 1;
        }
        if j > 0 && self.entries[j - 1].0 == ev.time {
            self.entries[j - 1].1.push(ev);
            return;
        }
        let mut bucket = self.pool.pop().unwrap_or_default();
        bucket.push(ev);
        self.entries.insert(j, (ev.time, bucket));
    }

    /// The earliest pending timestamp, without touching bucket contents.
    #[inline]
    fn earliest_time(&self) -> Option<SimTime> {
        match (&self.front, self.entries.last()) {
            (Some(f), Some((t, _))) => Some(f.time.min(*t)),
            (Some(f), None) => Some(f.time),
            (None, Some((t, _))) => Some(*t),
            (None, None) => None,
        }
    }

    /// Takes the front-lane event if it is scheduled at `t`.
    #[inline]
    fn take_front_at(&mut self, t: SimTime) -> Option<Event> {
        match self.front {
            Some(f) if f.time == t => {
                self.len -= 1;
                self.front.take()
            }
            _ => None,
        }
    }

    /// Removes and returns the bucket at timestamp `t` if one exists, in
    /// seq order. Return the bucket via [`EventQueue::recycle`] when done.
    #[inline]
    fn pop_bucket_at(&mut self, t: SimTime) -> Option<Vec<Event>> {
        match self.entries.last() {
            Some((bt, _)) if *bt == t => {
                let (_, bucket) = self.entries.pop().expect("peeked above");
                self.len -= bucket.len();
                Some(bucket)
            }
            _ => None,
        }
    }

    /// Returns a drained bucket to the pool.
    #[inline]
    fn recycle(&mut self, mut bucket: Vec<Event>) {
        bucket.clear();
        self.pool.push(bucket);
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.front.is_none() && self.entries.is_empty()
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

/// Why a [`Simulator::run_to_quiescence`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained; the circuit is stable at the given time.
    Quiescent(SimTime),
    /// The time horizon was reached with events still pending.
    TimeLimit,
}

/// Error signalling a circuit that would not settle (combinational loop or
/// free-running oscillator) within the configured event budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OscillationError {
    /// Events processed before giving up.
    pub events: u64,
    /// Simulation time reached.
    pub time: SimTime,
}

impl fmt::Display for OscillationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit did not reach quiescence within {} events (stopped at {})",
            self.events, self.time
        )
    }
}

impl std::error::Error for OscillationError {}

/// Kernel statistics, useful for performance analysis and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue (including stale and no-change ones).
    pub events_popped: u64,
    /// Events dropped because a later inertial drive superseded them.
    pub events_stale: u64,
    /// Actual net value changes applied.
    pub transitions: u64,
    /// Cell evaluations performed.
    pub evals: u64,
    /// Delta cycles executed (one per distinct timestamp *round*; a
    /// timestamp with zero-delay feedback takes several).
    pub delta_cycles: u64,
    /// High-water mark of the event queue.
    pub max_queue: usize,
}

/// How a [`Simulator::run_until_edges`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWaitOutcome {
    /// Every watched `(net, value)` edge was observed; the time of the
    /// delta cycle that completed the set.
    Seen(SimTime),
    /// The event queue drained before every edge arrived (the circuit is
    /// quiescent at the given time, so the missing edges can never come).
    Quiescent(SimTime),
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    net: NetId,
    value: Logic,
    seen: bool,
}

/// Per-net hot record: everything a surviving transition needs, packed in
/// one cache line instead of scattered across the `Net` table.
#[derive(Debug, Clone, Copy)]
struct NetHot {
    /// Supply energy of a rising edge on this net.
    rise: Joules,
    /// Supply energy of a falling edge on this net.
    fall: Joules,
    /// Energy-accounting domain.
    domain: DomainId,
    /// Same cell listed on several fanout pins — see `Net::fanout_dup`.
    fanout_dup: bool,
}

/// Compiled form of a cell, precomputed at [`Simulator::new`] and indexed
/// by `CellId` — the batched evaluation path's counterpart of
/// [`FanoutFast`]. Simple gates evaluate straight off the value table; all
/// other cells take the generic `EvalCtx` path.
#[derive(Debug, Clone, Copy)]
enum CellFast {
    Generic,
    Unary {
        input: NetId,
        out: NetId,
        timing: SampledTiming,
        invert: bool,
    },
    Binary {
        a: NetId,
        b: NetId,
        out: NetId,
        timing: SampledTiming,
        op: Gate2,
    },
}

/// Compiled fanout of a net, precomputed at [`Simulator::new`].
///
/// Most nets drive exactly one simple gate; for those the evaluation is
/// folded into a table entry the kernel can execute without touching the
/// cell instance at all: no input gathering, no dispatch, no drive buffer.
/// The result is bit-identical to the generic path — same logic function,
/// same `SampledTiming::for_value` delay, same inertial scheduling.
#[derive(Debug, Clone, Copy)]
enum FanoutFast {
    /// Evaluate the fanout through the generic cell path.
    Generic,
    /// One fanout: a 1-input gate (inverter/buffer) driving `out`.
    Unary {
        out: NetId,
        timing: SampledTiming,
        invert: bool,
    },
    /// One fanout: a commutative 2-input gate whose other input is
    /// `other`, driving `out`.
    Binary {
        out: NetId,
        timing: SampledTiming,
        op: Gate2,
        other: NetId,
    },
}

/// The event-driven simulator.
///
/// ```
/// use maddpipe_sim::prelude::*;
///
/// let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
/// let mut b = CircuitBuilder::new(lib);
/// let a = b.input("a");
/// let y = b.inv("u0", a);
/// let mut sim = Simulator::new(b.build());
/// sim.poke(a, Logic::Low);
/// sim.run_to_quiescence().unwrap();
/// assert_eq!(sim.value(y), Logic::High);
/// ```
#[derive(Debug)]
pub struct Simulator {
    circuit: Circuit,
    values: Vec<Logic>,
    gens: Vec<u32>,
    queue: EventQueue,
    now: SimTime,
    seq: u64,
    energy: EnergyMeter,
    net_hot: Vec<NetHot>,
    fanout_fast: Vec<FanoutFast>,
    cell_fast: Vec<CellFast>,
    violations: Vec<Violation>,
    trace: Trace,
    stats: SimStats,
    event_cap: u64,
    /// `true` while anything wants per-transition callbacks (waveform
    /// tracing or edge watches) — one branch guards both on the hot path.
    observers: bool,
    // Reusable hot-path scratch state — nothing below is allocated per
    // event once the simulator has warmed up.
    drive_buf: Vec<Drive>,
    input_buf: Vec<Logic>,
    dirty: Vec<CellId>,
    dirty_mark: Vec<u64>,
    pending_pins: Vec<Vec<usize>>,
    epoch: u64,
    watches: Vec<Watch>,
}

impl Simulator {
    /// Creates a simulator and performs the power-up evaluation of every
    /// cell at time zero.
    pub fn new(circuit: Circuit) -> Simulator {
        let n_nets = circuit.nets.len();
        let n_cells = circuit.cells.len();
        let n_domains = circuit.domains.len();
        let net_hot = circuit
            .nets
            .iter()
            .map(|net| {
                let (rise, fall) = circuit.library.edge_energy(net.cap);
                NetHot {
                    rise,
                    fall,
                    domain: net.domain,
                    fanout_dup: net.fanout_dup,
                }
            })
            .collect();
        // Compile the simple gates into direct per-cell entries for the
        // batched evaluation path (see [`CellFast`]).
        let cell_fast = circuit
            .cells
            .iter()
            .map(|inst| match inst.cell.shape() {
                GateShape::Unary { invert, timing } => CellFast::Unary {
                    input: inst.inputs[0],
                    out: inst.outputs[0],
                    timing,
                    invert,
                },
                GateShape::Binary { op, timing } => CellFast::Binary {
                    a: inst.inputs[0],
                    b: inst.inputs[1],
                    out: inst.outputs[0],
                    timing,
                    op,
                },
                GateShape::Other => CellFast::Generic,
            })
            .collect();
        // Compile the single-fanout simple-gate nets into direct table
        // entries (see [`FanoutFast`]).
        let fanout_fast = circuit
            .nets
            .iter()
            .map(|net| {
                let [(cell, pin)] = net.fanout.as_slice() else {
                    return FanoutFast::Generic;
                };
                let inst = &circuit.cells[cell.index()];
                match inst.cell.shape() {
                    GateShape::Unary { invert, timing } => FanoutFast::Unary {
                        out: inst.outputs[0],
                        timing,
                        invert,
                    },
                    GateShape::Binary { op, timing } => FanoutFast::Binary {
                        out: inst.outputs[0],
                        timing,
                        op,
                        other: inst.inputs[1 - pin],
                    },
                    GateShape::Other => FanoutFast::Generic,
                }
            })
            .collect();
        let mut sim = Simulator {
            values: vec![Logic::X; n_nets],
            gens: vec![0; n_nets],
            queue: EventQueue::default(),
            now: SimTime::ZERO,
            seq: 0,
            energy: EnergyMeter::new(n_domains),
            net_hot,
            fanout_fast,
            cell_fast,
            violations: Vec::new(),
            trace: Trace::new(n_nets),
            stats: SimStats::default(),
            event_cap: 50_000_000,
            observers: false,
            drive_buf: Vec::new(),
            input_buf: Vec::new(),
            dirty: Vec::new(),
            dirty_mark: vec![0; n_cells],
            pending_pins: vec![Vec::new(); n_cells],
            epoch: 0,
            watches: Vec::new(),
            circuit,
        };
        for i in 0..sim.circuit.cells.len() {
            sim.eval_cell(CellId(i as u32), &[]);
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The netlist being simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Present value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Packs an LSB-first bus into an integer; `None` if any bit is `X`.
    pub fn bus_value(&self, bus: &[NetId]) -> Option<u64> {
        let bits: Vec<Logic> = bus.iter().map(|&n| self.value(n)).collect();
        bits_to_u64(&bits)
    }

    /// Drives a primary input to `value` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the net has a driver — forcing driven nets hides real
    /// contention bugs, so it is not allowed.
    pub fn poke(&mut self, net: NetId, value: Logic) {
        self.poke_after(net, value, SimTime::ZERO);
    }

    /// Drives a primary input to `value` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if the net has a driver.
    pub fn poke_after(&mut self, net: NetId, value: Logic, delay: SimTime) {
        assert!(
            self.circuit.nets[net.index()].driver.is_none(),
            "cannot poke net `{}`: it is driven by a cell",
            self.circuit.nets[net.index()].name
        );
        self.schedule(net, value, delay, DriveMode::Inertial);
    }

    /// Drives each bit of an LSB-first bus from an integer (inputs only).
    pub fn poke_bus(&mut self, bus: &[NetId], value: u64) {
        for (i, &net) in bus.iter().enumerate() {
            self.poke(net, Logic::from_bool(value >> i & 1 == 1));
        }
    }

    /// Enables waveform recording on a net.
    pub fn trace_net(&mut self, net: NetId) {
        self.trace.enable(net);
        self.observers = true;
    }

    /// Discards the recorded waveform entries, keeping the traced-net set.
    /// Long-lived testbenches that replay the trace after every run call
    /// this between runs so the recording does not grow without bound.
    pub fn clear_trace(&mut self) {
        self.trace.clear_entries();
    }

    /// Stops waveform recording on a net (recorded entries are kept).
    pub fn untrace_net(&mut self, net: NetId) {
        self.trace.disable(net);
        self.observers = self.trace.any_enabled() || !self.watches.is_empty();
    }

    /// `true` while the net is being recorded.
    pub fn is_traced(&self, net: NetId) -> bool {
        self.trace.is_enabled(net)
    }

    /// Enables waveform recording on every net (verbose; prefer
    /// [`Simulator::trace_net`] on the handful of nets of interest).
    pub fn trace_all(&mut self) {
        for i in 0..self.circuit.nets.len() {
            self.trace.enable(NetId(i as u32));
        }
        self.observers = true;
    }

    /// Timing/protocol violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Kernel statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-domain energy snapshot.
    pub fn energy_report(&self) -> EnergyReport {
        self.energy.report(&self.circuit.domains)
    }

    /// Total switching energy so far.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Clears the energy counters (not the waveform or violations).
    pub fn reset_energy(&mut self) {
        self.energy.reset();
    }

    /// Replaces the runaway-protection event budget used by
    /// [`Simulator::run_to_quiescence`] and the other bounded run methods.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// The configured runaway-protection event budget.
    pub fn event_cap(&self) -> u64 {
        self.event_cap
    }

    /// Processes one **delta cycle**: every queued event scheduled at the
    /// earliest pending timestamp is drained and applied, then each
    /// affected cell is evaluated once. Returns the current time after the
    /// cycle, or `None` when the queue is empty.
    ///
    /// Useful for testbenches that must interleave stimulus with fine-
    /// grained observation (e.g. feeding a pipelined stream).
    pub fn step(&mut self) -> Option<SimTime> {
        if self.queue.is_empty() {
            return None;
        }
        self.delta_cycle();
        Some(self.now)
    }

    /// Runs until the queue drains, returning the time of the last event.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted first,
    /// which indicates a combinational loop or unstable handshake.
    pub fn run_to_quiescence(&mut self) -> Result<SimTime, OscillationError> {
        let mut consumed: u64 = 0;
        while !self.queue.is_empty() {
            if consumed >= self.event_cap {
                return Err(OscillationError {
                    events: consumed,
                    time: self.queue.earliest_time().expect("queue is non-empty"),
                });
            }
            consumed += self.delta_cycle();
        }
        Ok(self.now)
    }

    /// Runs until simulation time `horizon` (inclusive). Events scheduled
    /// later stay queued. Returns how the run ended.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.earliest_time() {
                Some(t) if t <= horizon => {
                    self.delta_cycle();
                }
                Some(_) => {
                    self.now = horizon;
                    return RunOutcome::TimeLimit;
                }
                None => {
                    let t = self.now;
                    self.now = horizon.max(t);
                    return RunOutcome::Quiescent(t);
                }
            }
        }
    }

    /// Runs until `net` takes `value` or the event queue drains.
    ///
    /// Returns the time of the transition, or `None` if the circuit went
    /// quiescent without it (callers decide whether that is a failure).
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted.
    pub fn run_until_net(
        &mut self,
        net: NetId,
        value: Logic,
    ) -> Result<Option<SimTime>, OscillationError> {
        if self.value(net) == value {
            return Ok(Some(self.now));
        }
        match self.run_until_edges(&[(net, value)])? {
            EdgeWaitOutcome::Seen(t) => Ok(Some(t)),
            EdgeWaitOutcome::Quiescent(_) => Ok(None),
        }
    }

    /// Runs until every `(net, value)` pair has been observed
    /// *transitioning to* its value, in any order. A net already sitting
    /// at its target level does **not** count — an actual edge must be
    /// seen, which is what four-phase handshake testbenches need (level
    /// polling races with the previous token's identical levels).
    ///
    /// Watched nets are checked only when they actually transition, so
    /// this costs nothing per event — unlike stepping the simulator and
    /// re-reading every watched net after each step.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted with
    /// edges still missing; `events` reports the events actually consumed
    /// by this call.
    pub fn run_until_edges(
        &mut self,
        conds: &[(NetId, Logic)],
    ) -> Result<EdgeWaitOutcome, OscillationError> {
        if conds.is_empty() {
            return Ok(EdgeWaitOutcome::Seen(self.now));
        }
        debug_assert!(self.watches.is_empty(), "run_until_edges re-entered");
        self.watches.extend(conds.iter().map(|&(net, value)| Watch {
            net,
            value,
            seen: false,
        }));
        self.observers = true;
        let mut consumed: u64 = 0;
        let outcome = loop {
            if self.watches.iter().all(|w| w.seen) {
                break Ok(EdgeWaitOutcome::Seen(self.now));
            }
            let Some(head_time) = self.queue.earliest_time() else {
                break Ok(EdgeWaitOutcome::Quiescent(self.now));
            };
            if consumed >= self.event_cap {
                break Err(OscillationError {
                    events: consumed,
                    time: head_time,
                });
            }
            consumed += self.delta_cycle();
        };
        self.watches.clear();
        self.observers = self.trace.any_enabled();
        outcome
    }

    /// Renders the recorded waveform as a VCD document.
    pub fn write_vcd(&self) -> String {
        self.trace.to_vcd(&self.circuit)
    }

    /// The recorded waveform entries, in time order.
    pub fn trace_entries(&self) -> &[crate::trace::TraceEntry] {
        self.trace.entries()
    }

    fn schedule(&mut self, net: NetId, value: Logic, delay: SimTime, mode: DriveMode) {
        Self::schedule_split(
            &mut self.gens,
            &mut self.seq,
            &mut self.queue,
            &mut self.stats,
            self.now,
            net,
            value,
            delay,
            mode,
        );
    }

    /// [`Simulator::schedule`] over explicit field borrows, so the eval
    /// drain loop can keep its shared borrows of the circuit alive while
    /// scheduling.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn schedule_split(
        gens: &mut [u32],
        seq: &mut u64,
        queue: &mut EventQueue,
        stats: &mut SimStats,
        now: SimTime,
        net: NetId,
        value: Logic,
        delay: SimTime,
        mode: DriveMode,
    ) {
        let gen = match mode {
            DriveMode::Inertial => {
                let g = &mut gens[net.index()];
                *g = g.wrapping_add(1);
                *g
            }
            DriveMode::Transport => gens[net.index()],
        };
        *seq += 1;
        queue.push(Event {
            time: now + delay,
            seq: *seq,
            net,
            value,
            gen,
        });
        stats.max_queue = stats.max_queue.max(queue.len());
    }

    /// Executes one delta cycle: drains every event at the earliest queued
    /// timestamp, applies the surviving net updates, then evaluates each
    /// dirty cell exactly once with the full set of changed pins. Returns
    /// the number of events popped (for budget accounting).
    ///
    /// Zero-delay drives issued during the evaluation phase land at the
    /// same timestamp and are processed by the *next* delta cycle, so a
    /// caller looping on this method regains control between rounds even
    /// inside a zero-delay feedback knot.
    fn delta_cycle(&mut self) -> u64 {
        self.stats.delta_cycles += 1;
        let t = self
            .queue
            .earliest_time()
            .expect("delta_cycle on empty queue");
        debug_assert!(t >= self.now, "event time went backwards");
        // Everything scheduled at `t`: the front-lane event (always the
        // lowest seq at its timestamp) and/or the bucket.
        let front_ev = self.queue.take_front_at(t);
        let bucket = self.queue.pop_bucket_at(t);
        let popped = u64::from(front_ev.is_some()) + bucket.as_ref().map_or(0, |b| b.len() as u64);
        self.stats.events_popped += popped;
        match (front_ev, bucket) {
            (Some(ev), None) => self.singleton_cycle(t, ev),
            (None, Some(bucket)) if bucket.len() == 1 => {
                let ev = bucket[0];
                self.queue.recycle(bucket);
                self.singleton_cycle(t, ev);
            }
            (front_ev, bucket) => {
                // Batched path — phase A: apply every event scheduled at
                // `t` in seq order, marking the fanout cells of each
                // changed net dirty. Events pushed during phase B land in
                // a fresh bucket at the same timestamp and are processed
                // by the next delta cycle.
                self.epoch += 1;
                if let Some(ev) = front_ev {
                    self.apply_batched(t, &ev);
                }
                if let Some(bucket) = bucket {
                    for ev in bucket.iter() {
                        self.apply_batched(t, ev);
                    }
                    self.queue.recycle(bucket);
                }
                // Phase B.
                self.eval_dirty();
            }
        }
        popped
    }

    /// The delta cycle of exactly one event — the dominant wavefront case.
    /// Bit-identical to the batched path, but with no dirty-set
    /// bookkeeping: each fanout cell is evaluated directly with its single
    /// changed pin.
    #[inline]
    fn singleton_cycle(&mut self, t: SimTime, ev: Event) {
        let ni = ev.net.index();
        if ev.gen != self.gens[ni] {
            self.stats.events_stale += 1;
            return;
        }
        self.now = t;
        if self.values[ni] == ev.value {
            return;
        }
        self.apply_transition(&ev);
        match self.fanout_fast[ni] {
            // Compiled fanout: the whole evaluation of a single listening
            // simple gate, without touching the cell instance.
            FanoutFast::Unary {
                out,
                timing,
                invert,
            } => {
                self.stats.evals += 1;
                let v = if invert { !ev.value } else { ev.value };
                Self::schedule_split(
                    &mut self.gens,
                    &mut self.seq,
                    &mut self.queue,
                    &mut self.stats,
                    t,
                    out,
                    v,
                    timing.for_value(v),
                    DriveMode::Inertial,
                );
            }
            FanoutFast::Binary {
                out,
                timing,
                op,
                other,
            } => {
                self.stats.evals += 1;
                let v = op.apply(ev.value, self.values[other.index()]);
                Self::schedule_split(
                    &mut self.gens,
                    &mut self.seq,
                    &mut self.queue,
                    &mut self.stats,
                    t,
                    out,
                    v,
                    timing.for_value(v),
                    DriveMode::Inertial,
                );
            }
            FanoutFast::Generic => {
                if self.net_hot[ni].fanout_dup {
                    // Rare: one cell listens on several pins of this net,
                    // so the dedup machinery must coalesce its
                    // evaluations.
                    self.epoch += 1;
                    self.mark_fanout_dirty(ni);
                    self.eval_dirty();
                } else {
                    let n_fanout = self.circuit.nets[ni].fanout.len();
                    for k in 0..n_fanout {
                        let (cell, pin) = self.circuit.nets[ni].fanout[k];
                        self.eval_cell(cell, &[pin]);
                    }
                }
            }
        }
    }

    /// Phase-A handling of one event on the batched path: apply the
    /// surviving change and stamp its fanout dirty.
    #[inline]
    fn apply_batched(&mut self, t: SimTime, ev: &Event) {
        let ni = ev.net.index();
        if ev.gen != self.gens[ni] {
            self.stats.events_stale += 1;
            return;
        }
        self.now = t;
        if self.values[ni] == ev.value {
            return;
        }
        self.apply_transition(ev);
        self.mark_fanout_dirty(ni);
    }

    /// Commits a surviving net change: value store, transition statistics,
    /// energy attribution, optional waveform capture and edge watches.
    #[inline]
    fn apply_transition(&mut self, ev: &Event) {
        self.values[ev.net.index()] = ev.value;
        self.stats.transitions += 1;
        self.record_edge(ev.net, ev.value);
        if self.observers {
            if self.trace.any_enabled() {
                self.trace.record(ev.time, ev.net, ev.value);
            }
            for w in &mut self.watches {
                if !w.seen && w.net == ev.net && w.value == ev.value {
                    w.seen = true;
                }
            }
        }
    }

    /// Stamps every fanout cell of net `ni` dirty in the current epoch and
    /// records which pin saw the change.
    fn mark_fanout_dirty(&mut self, ni: usize) {
        let epoch = self.epoch;
        for &(cell, pin) in &self.circuit.nets[ni].fanout {
            let ci = cell.index();
            if self.dirty_mark[ci] != epoch {
                self.dirty_mark[ci] = epoch;
                self.dirty.push(cell);
            }
            self.pending_pins[ci].push(pin);
        }
    }

    /// Evaluates each dirty cell once. Evaluations only schedule future
    /// events, so the dirty list cannot grow while we walk it.
    fn eval_dirty(&mut self) {
        let n_dirty = self.dirty.len();
        for k in 0..n_dirty {
            let cell = self.dirty[k];
            let ci = cell.index();
            let mut pins = std::mem::take(&mut self.pending_pins[ci]);
            // Canonical ascending pin order (application order is event
            // order, which is a scheduling artefact cells must not see).
            pins.sort_unstable();
            self.eval_cell(cell, &pins);
            pins.clear();
            self.pending_pins[ci] = pins;
        }
        self.dirty.clear();
    }

    fn record_edge(&mut self, net: NetId, new_value: Logic) {
        let hot = &self.net_hot[net.index()];
        match new_value {
            Logic::High => self.energy.record(hot.domain, hot.rise),
            Logic::Low => self.energy.record(hot.domain, hot.fall),
            Logic::X => {}
        }
    }

    fn eval_cell(&mut self, cell: CellId, triggers: &[usize]) {
        self.stats.evals += 1;
        let ci = cell.index();
        // Compiled simple gates evaluate straight off the value table.
        match self.cell_fast[ci] {
            CellFast::Unary {
                input,
                out,
                timing,
                invert,
            } => {
                let v0 = self.values[input.index()];
                let v = if invert { !v0 } else { v0 };
                Self::schedule_split(
                    &mut self.gens,
                    &mut self.seq,
                    &mut self.queue,
                    &mut self.stats,
                    self.now,
                    out,
                    v,
                    timing.for_value(v),
                    DriveMode::Inertial,
                );
                return;
            }
            CellFast::Binary {
                a,
                b,
                out,
                timing,
                op,
            } => {
                let v = op.apply(self.values[a.index()], self.values[b.index()]);
                Self::schedule_split(
                    &mut self.gens,
                    &mut self.seq,
                    &mut self.queue,
                    &mut self.stats,
                    self.now,
                    out,
                    v,
                    timing.for_value(v),
                    DriveMode::Inertial,
                );
                return;
            }
            CellFast::Generic => {}
        }
        // Snapshot the input values into the reusable scratch arena; the
        // borrows below are all of disjoint `Simulator` fields, so the
        // whole evaluation is allocation-free.
        let inst = &mut self.circuit.cells[ci];
        self.input_buf.clear();
        self.input_buf
            .extend(inst.inputs.iter().map(|n| self.values[n.index()]));
        // Combinational single-output gates that are not table-compiled
        // (3- and 4-input NAND/NOR, muxes) still short-circuit past the
        // evaluation context.
        if let Some((value, delay)) = inst.cell.gate_response(&self.input_buf) {
            let net = inst.outputs[0];
            Self::schedule_split(
                &mut self.gens,
                &mut self.seq,
                &mut self.queue,
                &mut self.stats,
                self.now,
                net,
                value,
                delay,
                DriveMode::Inertial,
            );
            return;
        }
        let mut ctx = EvalCtx {
            now: self.now,
            input_values: &self.input_buf,
            triggers,
            drives: &mut self.drive_buf,
            violations: &mut self.violations,
            cell_name: &inst.name,
        };
        inst.cell.eval(&mut ctx);
        // Drain the requested drives. `add_cell` validated the pin counts
        // when the netlist was built; a cell driving a pin it does not
        // have is a bug in the cell itself, caught by the indexing below
        // (and by this check in debug builds). The borrows are disjoint
        // `Simulator` fields, so nothing is re-indexed per drive.
        let outputs = &self.circuit.cells[ci].outputs;
        for d in self.drive_buf.iter() {
            debug_assert!(
                d.out_pin < outputs.len(),
                "cell `{}` drove pin {} but has only {} outputs",
                self.circuit.cells[ci].name,
                d.out_pin,
                outputs.len()
            );
            Self::schedule_split(
                &mut self.gens,
                &mut self.seq,
                &mut self.queue,
                &mut self.stats,
                self.now,
                outputs[d.out_pin],
                d.value,
                d.delay,
                d.mode,
            );
        }
        self.drive_buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::library::CellLibrary;
    use maddpipe_tech::prelude::*;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(CellLibrary::new(
            Technology::n22(),
            OperatingPoint::default(),
        ))
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut b = builder();
        let a = b.input("a");
        let n1 = b.inv("u0", a);
        let n2 = b.inv("u1", n1);
        let n3 = b.inv("u2", n2);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        let t = sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(n3), Logic::High);
        assert!(t > SimTime::ZERO, "three gate delays take nonzero time");
        // Flip the input; output follows after roughly 3 inverter delays.
        let before = sim.now();
        sim.poke(a, Logic::High);
        let t2 = sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(n3), Logic::Low);
        assert!(t2 > before);
    }

    #[test]
    fn determinism_bit_for_bit() {
        let run = || {
            let mut b = builder();
            let a = b.input("a");
            let x = b.inv("u0", a);
            let y = b.nand2("u1", [x, a]);
            let z = b.xor2("u2", [y, x]);
            let mut sim = Simulator::new(b.build());
            sim.poke(a, Logic::Low);
            sim.run_to_quiescence().unwrap();
            sim.poke(a, Logic::High);
            sim.run_to_quiescence().unwrap();
            (sim.now(), sim.value(z), sim.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ring_oscillator_reports_oscillation() {
        let mut b = builder();
        // Enable-gated ring oscillator. With three-valued logic a plain
        // inverter ring just sits at X, so the ring is kicked through a NAND:
        // while `enable` is low the loop holds at a known value, and raising
        // `enable` starts free oscillation.
        let enable = b.input("enable");
        let loop_net = b.net("ring");
        let n0 = b.nand2("u0", [enable, loop_net]);
        let n1 = b.inv("u1", n0);
        let t = b.library_mut().timing(crate::library::CellClass::Inv);
        b.add_cell(
            "u2",
            Box::new(crate::cells::Inverter::new(t)),
            &[n1],
            &[loop_net],
        );
        let mut sim = Simulator::new(b.build());
        sim.poke(enable, Logic::Low);
        sim.run_to_quiescence().unwrap(); // stable while disabled
        sim.set_event_cap(10_000);
        sim.poke(enable, Logic::High);
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("did not reach quiescence"));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut b = builder();
        let a = b.input("a");
        let slow = b.delay_line("wire", a, SimTime::from_nanos(5.0));
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::High);
        let outcome = sim.run_until(SimTime::from_nanos(1.0));
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.value(slow), Logic::X, "event still pending");
        let outcome = sim.run_until(SimTime::from_nanos(10.0));
        assert!(matches!(outcome, RunOutcome::Quiescent(_)));
        assert_eq!(sim.value(slow), Logic::High);
    }

    #[test]
    fn run_until_net_finds_transition_time() {
        let mut b = builder();
        let a = b.input("a");
        let d = b.delay_line("wire", a, SimTime::from_nanos(2.0));
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::High);
        let t = sim.run_until_net(d, Logic::High).unwrap().unwrap();
        assert_eq!(t, SimTime::from_nanos(2.0));
    }

    #[test]
    fn run_until_net_none_when_quiescent_without_match() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        // y will go High; asking for Low-after-quiescence yields None.
        let got = sim.run_until_net(y, Logic::Low).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn glitch_shorter_than_gate_delay_is_filtered() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let transitions_before = sim.stats().transitions;
        // Pulse far narrower than the inverter delay: schedule H then L 1 fs
        // apart. The second inertial drive supersedes the first.
        sim.poke(a, Logic::High);
        sim.poke_after(a, Logic::Low, SimTime::from_femtos(1));
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(y), Logic::High, "output never saw the glitch");
        let delta = sim.stats().transitions - transitions_before;
        // Only the input wiggle itself may register; the inverter output
        // must not double-toggle.
        assert!(delta <= 2, "saw {delta} transitions");
    }

    #[test]
    fn poke_driven_net_panics() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.poke(y, Logic::Low);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn bus_helpers_round_trip() {
        let mut b = builder();
        let bus = b.bus("d", 8);
        let outs: Vec<NetId> = bus
            .iter()
            .enumerate()
            .map(|(i, &n)| b.inv(&format!("u{i}"), n))
            .collect();
        let mut sim = Simulator::new(b.build());
        sim.poke_bus(&bus, 0xA5);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.bus_value(&bus), Some(0xA5));
        assert_eq!(sim.bus_value(&outs), Some(0x5A));
    }

    #[test]
    fn energy_accrues_on_transitions_only() {
        let mut b = builder();
        let a = b.input("a");
        let _y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let e1 = sim.total_energy();
        // No stimulus, no energy.
        sim.run_until(SimTime::from_nanos(100.0));
        assert_eq!(sim.total_energy(), e1);
        sim.poke(a, Logic::High);
        sim.run_to_quiescence().unwrap();
        assert!(sim.total_energy() > e1);
    }

    #[test]
    fn energy_lands_in_the_right_domain() {
        let mut b = builder();
        let a = b.input("a");
        b.set_domain("enc");
        let y = b.inv("u0", a);
        b.set_domain("dec");
        let _z = b.inv("u1", y);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.reset_energy();
        sim.poke(a, Logic::High);
        sim.run_to_quiescence().unwrap();
        let report = sim.energy_report();
        assert!(report.energy_of("enc").value() > 0.0);
        assert!(report.energy_of("dec").value() > 0.0);
        // The input net `a` lives in the default domain.
        assert!(report.energy_of("top").value() > 0.0);
    }

    #[test]
    fn latch_in_circuit_captures_on_falling_enable() {
        let mut b = builder();
        let d = b.input("d");
        let g = b.input("g");
        let q = b.latch("lat", d, g);
        let mut sim = Simulator::new(b.build());
        sim.poke(d, Logic::High);
        sim.poke(g, Logic::High);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Logic::High);
        // Close the latch, then change D: Q must hold.
        sim.poke(g, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.poke(d, Logic::Low);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(q), Logic::High, "latch holds captured value");
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
    }

    #[test]
    fn stats_are_populated() {
        let mut b = builder();
        let a = b.input("a");
        let _ = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        let s = sim.stats();
        assert!(s.events_popped > 0 && s.transitions > 0 && s.evals > 0);
        assert!(s.max_queue >= 1);
    }
}
