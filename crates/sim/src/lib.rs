//! # maddpipe-sim
//!
//! A deterministic event-driven digital-logic simulator with per-cell timing
//! annotation, per-domain energy metering, latch setup checking and VCD
//! export — the discrete-event stand-in for the HSPICE post-layout flow the
//! paper's evaluation is built on.
//!
//! The simulator is deliberately small but complete:
//!
//! * [`logic`] — three-valued logic (`0`, `1`, `X`).
//! * [`time`] — integral femtosecond timestamps (exact event ordering).
//! * [`cell`] — the open [`cell::Cell`] trait; downstream crates implement
//!   macro-cells such as SRAM columns and dual-rail dynamic comparators.
//! * [`cells`] — timing-annotated standard cells: gates, full adder,
//!   D-latch with setup checking, Muller C-element, pulse generator.
//! * [`library`] — alpha-power-law characterisation of cells at an
//!   operating point, with optional local mismatch sampling.
//! * [`circuit`] — netlist construction with energy domains.
//! * [`engine`] — the event kernel: inertial/transport delays, oscillation
//!   detection, deterministic replay; delta-cycle batched, allocation-free
//!   on the hot path.
//! * [`reference`](mod@reference) — a deliberately naive kernel with identical semantics,
//!   kept as the executable specification for golden-equivalence tests.
//! * [`energy`] — per-domain switched-energy accounting (regenerates the
//!   paper's Fig. 7 energy breakdown).
//! * [`trace`] — waveform capture and VCD export.
//!
//! ## Example: a C-element half of a handshake
//!
//! ```
//! use maddpipe_sim::prelude::*;
//!
//! let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
//! let mut b = CircuitBuilder::new(lib);
//! let req = b.input("req");
//! let ack_in = b.input("ack_in");
//! let grant = b.c_element("c0", req, ack_in, Logic::Low);
//!
//! let mut sim = Simulator::new(b.build());
//! sim.poke(req, Logic::High);
//! sim.poke(ack_in, Logic::High);
//! sim.run_to_quiescence()?;
//! assert_eq!(sim.value(grant), Logic::High);
//! # Ok::<(), maddpipe_sim::engine::OscillationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod cells;
pub mod circuit;
pub mod energy;
pub mod engine;
pub mod library;
pub mod logic;
pub mod reference;
pub mod time;
pub mod trace;

pub use cell::{Cell, Drive, DriveMode, EvalCtx, Violation, ViolationKind};
pub use cells::CellKind;
pub use circuit::{Circuit, CircuitBuilder, DomainId, NetId};
pub use engine::{EdgeWaitOutcome, RunOutcome, SimStats, Simulator};
pub use library::{CellClass, CellLibrary, SampledTiming};
pub use logic::Logic;
pub use time::SimTime;

/// Common imports for building and simulating netlists.
pub mod prelude {
    pub use crate::cell::{Cell, EvalCtx, ViolationKind};
    pub use crate::cells::CellKind;
    pub use crate::circuit::{Circuit, CircuitBuilder, DomainId, NetId};
    pub use crate::engine::{EdgeWaitOutcome, RunOutcome, Simulator};
    pub use crate::library::{CellClass, CellLibrary, SampledTiming};
    pub use crate::logic::Logic;
    pub use crate::time::SimTime;
    pub use maddpipe_tech::prelude::*;
}
