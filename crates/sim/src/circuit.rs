//! Netlist construction: nets, cell instances, energy domains.
//!
//! A [`CircuitBuilder`] accumulates nets and cells, tracks which *energy
//! domain* each net belongs to (encoder / decoder / control / …, mirroring
//! the component groups of the paper's Fig. 7 breakdown), computes the
//! switched capacitance of every net from the connected pins plus explicit
//! wire loading, and finally seals everything into an immutable [`Circuit`]
//! ready for simulation.

use crate::cell::Cell;
use crate::cells::CellKind;
use crate::library::CellLibrary;
use maddpipe_tech::units::Farads;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net within one circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Index into the circuit's net table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a cell instance within one circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Index into the circuit's cell table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an energy-accounting domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainId(pub(crate) u16);

impl DomainId {
    /// The default domain every circuit starts with.
    pub const TOP: DomainId = DomainId(0);
}

#[derive(Debug)]
pub(crate) struct Net {
    pub(crate) name: String,
    pub(crate) cap: Farads,
    pub(crate) extra_cap: Farads,
    pub(crate) domain: DomainId,
    pub(crate) driver: Option<CellId>,
    pub(crate) fanout: Vec<(CellId, usize)>,
    /// `true` when the same cell appears more than once in `fanout` (it
    /// listens on several pins of this net) — the kernel's singleton-event
    /// fast path must then fall back to the dedup machinery. Sealed by
    /// [`CircuitBuilder::build`].
    pub(crate) fanout_dup: bool,
}

pub(crate) struct CellInstance {
    pub(crate) name: String,
    pub(crate) cell: CellKind,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
}

impl fmt::Debug for CellInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellInstance")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

/// A sealed netlist, ready to be handed to
/// [`Simulator::new`](crate::engine::Simulator::new).
#[derive(Debug)]
pub struct Circuit {
    pub(crate) nets: Vec<Net>,
    pub(crate) cells: Vec<CellInstance>,
    pub(crate) domains: Vec<String>,
    pub(crate) library: CellLibrary,
}

impl Circuit {
    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.index()].name
    }

    /// Looks a net up by exact name. Linear scan — intended for tests and
    /// debugging, not hot paths.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Names of all registered energy domains, indexed by [`DomainId`].
    pub fn domain_names(&self) -> &[String] {
        &self.domains
    }

    /// Total switched capacitance hanging on `net` (pins + wire).
    pub fn net_cap(&self, id: NetId) -> Farads {
        self.nets[id.index()].cap
    }

    /// `true` if nothing drives `net` (it is a primary input).
    pub fn is_primary_input(&self, id: NetId) -> bool {
        self.nets[id.index()].driver.is_none()
    }
}

/// Incremental netlist builder.
///
/// ```
/// use maddpipe_sim::prelude::*;
///
/// let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
/// let mut b = CircuitBuilder::new(lib);
/// let a = b.input("a");
/// let y = b.inv("u0", a);
/// let c = b.build();
/// assert_eq!(c.cell_count(), 1);
/// assert!(c.is_primary_input(a) && !c.is_primary_input(y));
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    nets: Vec<Net>,
    cells: Vec<CellInstance>,
    domains: Vec<String>,
    domain_index: HashMap<String, DomainId>,
    current_domain: DomainId,
    pub(crate) library: CellLibrary,
}

impl CircuitBuilder {
    /// Starts a new netlist characterised by `library`.
    pub fn new(library: CellLibrary) -> CircuitBuilder {
        let mut domain_index = HashMap::new();
        domain_index.insert("top".to_owned(), DomainId::TOP);
        CircuitBuilder {
            nets: Vec::new(),
            cells: Vec::new(),
            domains: vec!["top".to_owned()],
            domain_index,
            current_domain: DomainId::TOP,
            library,
        }
    }

    /// Mutable access to the library (e.g. to sample custom delays while
    /// constructing macro-cells).
    pub fn library_mut(&mut self) -> &mut CellLibrary {
        &mut self.library
    }

    /// Shared access to the library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Switches the *current energy domain*; nets created afterwards are
    /// attributed to it. Returns the previous domain so callers can restore
    /// scope.
    pub fn set_domain(&mut self, name: &str) -> DomainId {
        let prev = self.current_domain;
        if let Some(&id) = self.domain_index.get(name) {
            self.current_domain = id;
        } else {
            let id = DomainId(
                u16::try_from(self.domains.len()).expect("more than 65535 energy domains"),
            );
            self.domains.push(name.to_owned());
            self.domain_index.insert(name.to_owned(), id);
            self.current_domain = id;
        }
        prev
    }

    /// Restores a domain previously returned by [`CircuitBuilder::set_domain`].
    pub fn restore_domain(&mut self, id: DomainId) {
        assert!(
            (id.0 as usize) < self.domains.len(),
            "unknown domain {id:?}"
        );
        self.current_domain = id;
    }

    /// Creates a fresh undriven net.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(u32::try_from(self.nets.len()).expect("more than u32::MAX nets"));
        self.nets.push(Net {
            name: name.into(),
            cap: Farads::ZERO,
            extra_cap: Farads::ZERO,
            domain: self.current_domain,
            driver: None,
            fanout: Vec::new(),
            fanout_dup: false,
        });
        id
    }

    /// Creates a named primary input (alias of [`CircuitBuilder::net`],
    /// kept for intent).
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.net(name)
    }

    /// Creates a bus of `width` nets named `name[0..width]`, LSB first.
    pub fn bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.net(format!("{name}[{i}]")))
            .collect()
    }

    /// Adds explicit wire capacitance to a net (long routes, bitlines).
    pub fn add_wire_cap(&mut self, net: NetId, cap: Farads) {
        assert!(cap.0 >= 0.0, "wire capacitance must be non-negative");
        self.nets[net.index()].extra_cap += cap;
    }

    /// Instantiates an arbitrary boxed [`Cell`] through the
    /// [`CellKind::Dynamic`] escape hatch. Downstream crates modelling
    /// macro-cells (SRAM columns, dual-rail comparators, handshake
    /// controllers) use this; the shipped standard cells go through
    /// [`CircuitBuilder::add_cell_kind`] (or the gate sugar), which the
    /// kernel dispatches without a virtual call.
    ///
    /// # Panics
    ///
    /// Panics if pin counts disagree with the cell, or if any output net
    /// already has a driver (multi-driver nets are not supported; model
    /// shared dynamic nodes as a single behavioural cell instead).
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell: Box<dyn Cell>,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> CellId {
        self.add_cell_kind(name, cell, inputs, outputs)
    }

    /// Instantiates a cell by behaviour [`CellKind`] (any shipped cell
    /// struct converts via `Into`); this is the statically-dispatched fast
    /// path of the event kernel.
    ///
    /// # Panics
    ///
    /// Panics if pin counts disagree with the cell, or if any output net
    /// already has a driver.
    pub fn add_cell_kind(
        &mut self,
        name: impl Into<String>,
        cell: impl Into<CellKind>,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> CellId {
        let name = name.into();
        let cell = cell.into();
        assert_eq!(
            cell.num_inputs(),
            inputs.len(),
            "cell `{name}` expects {} inputs, got {}",
            cell.num_inputs(),
            inputs.len()
        );
        assert_eq!(
            cell.num_outputs(),
            outputs.len(),
            "cell `{name}` expects {} outputs, got {}",
            cell.num_outputs(),
            outputs.len()
        );
        let id = CellId(u32::try_from(self.cells.len()).expect("more than u32::MAX cells"));
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].fanout.push((id, pin));
        }
        for &net in outputs {
            let existing = self.nets[net.index()].driver;
            assert!(
                existing.is_none(),
                "net `{}` already driven by cell {existing:?}; cell `{name}` would double-drive it",
                self.nets[net.index()].name,
            );
            self.nets[net.index()].driver = Some(id);
        }
        self.cells.push(CellInstance {
            name,
            cell,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        id
    }

    /// Seals the netlist: resolves per-net capacitance (driver self-cap +
    /// fanout pin caps + explicit wire cap) and returns the [`Circuit`].
    pub fn build(mut self) -> Circuit {
        // Pin capacitance estimate: every fanout pin contributes a gate-unit
        // load; drivers contribute self-capacitance. Custom macro-cells get
        // the same default treatment, which callers refine with
        // `add_wire_cap` where it matters (bitlines, wordlines).
        let unit = self.library.technology().cap_gate_unit;
        for net in &mut self.nets {
            let pin_cap = Farads(unit.0 * 1.2 * net.fanout.len() as f64);
            let self_cap = if net.driver.is_some() {
                Farads(unit.0 * 0.6)
            } else {
                Farads::ZERO
            };
            net.cap = pin_cap + self_cap + net.extra_cap;
            // Flag nets whose fanout lists the same cell on several pins;
            // the kernel's singleton-event fast path keys off this.
            net.fanout_dup = net
                .fanout
                .iter()
                .enumerate()
                .any(|(i, &(cell, _))| net.fanout[..i].iter().any(|&(c, _)| c == cell));
        }
        Circuit {
            nets: self.nets,
            cells: self.cells,
            domains: self.domains,
            library: self.library,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::Inverter;
    use maddpipe_tech::prelude::*;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(CellLibrary::new(
            Technology::n22(),
            OperatingPoint::default(),
        ))
    }

    #[test]
    fn nets_and_buses_get_names() {
        let mut b = builder();
        let n = b.net("clk");
        let bus = b.bus("data", 4);
        let c = b.build();
        assert_eq!(c.net_name(n), "clk");
        assert_eq!(c.net_name(bus[3]), "data[3]");
        assert_eq!(c.find_net("data[2]"), Some(bus[2]));
        assert_eq!(c.find_net("nope"), None);
    }

    #[test]
    fn domains_are_interned() {
        let mut b = builder();
        let top = b.set_domain("encoder");
        assert_eq!(top, DomainId::TOP);
        let enc = b.set_domain("decoder"); // previous was "encoder"
        let dec = b.set_domain("encoder"); // previous was "decoder"
        assert_ne!(enc, dec);
        b.restore_domain(enc);
        let dec_again = b.set_domain("decoder");
        assert_eq!(dec_again, enc, "restore_domain put us back in `encoder`");
        let c = b.build();
        // Re-entering existing names must not create duplicates.
        assert_eq!(c.domain_names(), &["top", "encoder", "decoder"]);
    }

    #[test]
    fn capacitance_accumulates_from_fanout() {
        let mut b = builder();
        let a = b.input("a");
        let mid = {
            let t = b.library_mut().timing(crate::library::CellClass::Inv);
            let y = b.net("y");
            b.add_cell("u0", Box::new(Inverter::new(t)), &[a], &[y]);
            y
        };
        // Two more loads on `mid`.
        for i in 0..2 {
            let t = b.library_mut().timing(crate::library::CellClass::Inv);
            let o = b.net(format!("o{i}"));
            b.add_cell(
                format!("u{}", i + 1),
                Box::new(Inverter::new(t)),
                &[mid],
                &[o],
            );
        }
        b.add_wire_cap(mid, Farads::from_femtos(1.0));
        let c = b.build();
        let loaded = c.net_cap(mid);
        let unloaded = c.net_cap(a);
        assert!(loaded.0 > unloaded.0);
        assert!(loaded.as_femtos() > 1.0, "includes explicit wire cap");
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driving_panics() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.net("y");
        let t1 = b.library_mut().timing(crate::library::CellClass::Inv);
        let t2 = b.library_mut().timing(crate::library::CellClass::Inv);
        b.add_cell("u0", Box::new(Inverter::new(t1)), &[a], &[y]);
        b.add_cell("u1", Box::new(Inverter::new(t2)), &[a], &[y]);
    }

    #[test]
    #[should_panic(expected = "expects 1 inputs")]
    fn wrong_pin_count_panics() {
        let mut b = builder();
        let a = b.input("a");
        let bnet = b.input("b");
        let y = b.net("y");
        let t = b.library_mut().timing(crate::library::CellClass::Inv);
        b.add_cell("u0", Box::new(Inverter::new(t)), &[a, bnet], &[y]);
    }
}
