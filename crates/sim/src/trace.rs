//! Waveform recording and VCD export.
//!
//! Tracing is opt-in per net: enable the handful of nets you care about
//! (handshake wires, RCD signals, latch enables) and export a Value Change
//! Dump viewable in GTKWave — the event-level stand-in for the paper's
//! HSPICE waveforms (Fig. 5 B timing chart).

use crate::circuit::{Circuit, NetId};
use crate::logic::Logic;
use crate::time::SimTime;

/// One recorded value change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the change happened.
    pub time: SimTime,
    /// Which net changed.
    pub net: NetId,
    /// The new value.
    pub value: Logic,
}

/// Sparse waveform recorder.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: Vec<bool>,
    any_enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a recorder for a circuit with `net_count` nets; nothing is
    /// traced until [`Trace::enable`] is called.
    pub fn new(net_count: usize) -> Trace {
        Trace {
            enabled: vec![false; net_count],
            any_enabled: false,
            entries: Vec::new(),
        }
    }

    /// Starts recording a net.
    pub fn enable(&mut self, net: NetId) {
        self.enabled[net.index()] = true;
        self.any_enabled = true;
    }

    /// Stops recording a net (already-recorded entries are kept). When the
    /// last net is disabled the kernel's fully-untraced fast path is
    /// restored.
    pub fn disable(&mut self, net: NetId) {
        self.enabled[net.index()] = false;
        self.any_enabled = self.enabled.iter().any(|&e| e);
    }

    /// `true` if the net is being recorded.
    pub fn is_enabled(&self, net: NetId) -> bool {
        self.enabled[net.index()]
    }

    /// `true` once any net has been enabled. The kernel reads this single
    /// flag per transition so fully-untraced simulations — the common
    /// bench configuration — skip the recording path entirely.
    #[inline]
    pub fn any_enabled(&self) -> bool {
        self.any_enabled
    }

    /// Records a change if the net is enabled (called by the kernel).
    #[inline]
    pub fn record(&mut self, time: SimTime, net: NetId, value: Logic) {
        if self.enabled[net.index()] {
            self.entries.push(TraceEntry { time, net, value });
        }
    }

    /// All recorded entries in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Discards the recorded entries while keeping the enabled-net set —
    /// testbenches that observe the same nets over many runs reset the
    /// recording between runs instead of accumulating entries forever.
    pub fn clear_entries(&mut self) {
        self.entries.clear();
    }

    /// Entries for one net, in time order.
    pub fn of_net(&self, net: NetId) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.net == net)
            .collect()
    }

    /// Renders a VCD document (timescale 1 fs) for all enabled nets.
    pub fn to_vcd(&self, circuit: &Circuit) -> String {
        let mut out = String::new();
        out.push_str("$date maddpipe simulation $end\n");
        out.push_str("$version maddpipe-sim $end\n");
        out.push_str("$timescale 1fs $end\n");
        out.push_str("$scope module top $end\n");
        let mut ids: Vec<Option<String>> = vec![None; self.enabled.len()];
        for (i, &on) in self.enabled.iter().enumerate() {
            if on {
                let id = vcd_identifier(i);
                let name = sanitize(circuit.net_name(NetId(i as u32)));
                out.push_str(&format!("$var wire 1 {id} {name} $end\n"));
                ids[i] = Some(id);
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Initial values: everything starts X.
        out.push_str("$dumpvars\n");
        for id in ids.iter().flatten() {
            out.push_str(&format!("x{id}\n"));
        }
        out.push_str("$end\n");
        let mut last_time: Option<SimTime> = None;
        for e in &self.entries {
            if last_time != Some(e.time) {
                out.push_str(&format!("#{}\n", e.time.as_femtos()));
                last_time = Some(e.time);
            }
            if let Some(id) = &ids[e.net.index()] {
                out.push(e.value.vcd_char());
                out.push_str(id);
                out.push('\n');
            }
        }
        out
    }
}

/// Maps a net index to a compact printable VCD identifier (base-94 over the
/// printable ASCII range `!`..`~`).
fn vcd_identifier(mut index: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    s
}

/// VCD identifiers may not contain whitespace; net names with brackets are
/// fine, but replace any stray spaces.
fn sanitize(name: &str) -> String {
    name.replace(' ', "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::engine::Simulator;
    use crate::library::CellLibrary;
    use crate::logic::Logic;
    use maddpipe_tech::prelude::*;

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let id = vcd_identifier(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id:?}");
            assert!(seen.insert(id), "duplicate identifier at {i}");
        }
    }

    #[test]
    fn any_enabled_flips_on_first_enable() {
        let mut t = Trace::new(3);
        assert!(!t.any_enabled(), "fresh trace records nothing");
        t.enable(NetId(2));
        assert!(t.any_enabled());
    }

    #[test]
    fn disabled_nets_record_nothing() {
        let mut t = Trace::new(2);
        t.enable(NetId(1));
        t.record(SimTime::ZERO, NetId(0), Logic::High);
        t.record(SimTime::ZERO, NetId(1), Logic::High);
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.entries()[0].net, NetId(1));
        assert!(t.is_enabled(NetId(1)) && !t.is_enabled(NetId(0)));
    }

    #[test]
    fn vcd_export_contains_header_and_changes() {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let a = b.input("a");
        let y = b.inv("u0", a);
        let mut sim = Simulator::new(b.build());
        sim.trace_net(a);
        sim.trace_net(y);
        sim.poke(a, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.poke(a, Logic::High);
        sim.run_to_quiescence().unwrap();
        let vcd = sim.write_vcd();
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("u0.y"), "{vcd}");
        assert!(vcd.lines().any(|l| l.starts_with('#')), "has timestamps");
    }

    #[test]
    fn of_net_filters() {
        let mut t = Trace::new(2);
        t.enable(NetId(0));
        t.enable(NetId(1));
        t.record(SimTime::from_femtos(1), NetId(0), Logic::High);
        t.record(SimTime::from_femtos(2), NetId(1), Logic::Low);
        t.record(SimTime::from_femtos(3), NetId(0), Logic::Low);
        let n0 = t.of_net(NetId(0));
        assert_eq!(n0.len(), 2);
        assert!(n0.iter().all(|e| e.net == NetId(0)));
    }
}
