//! A deliberately naive event kernel — the executable specification the
//! optimized [`crate::engine::Simulator`] is tested against.
//!
//! The production kernel earns its throughput with a bucketed event queue,
//! an epoch-stamped dirty set, compiled fanout tables and a reusable
//! scratch arena. Every one of those is an *implementation* trick; none is
//! allowed to change semantics. This module implements the same
//! delta-cycle semantics in the most transparent way available — an
//! unordered event list scanned for its minimum, freshly allocated
//! buffers, linear-searched dirty tracking — so a golden-equivalence
//! property test (`tests/kernel_equivalence.rs`) can replay random
//! netlists on both kernels and demand identical final net values,
//! quiescence times and switching energy, femtojoule for femtojoule.
//!
//! The shared pieces are deliberate: both kernels evaluate the *same*
//! [`CellKind`](crate::cells::CellKind) behaviours over the *same*
//! [`Circuit`]. What this module independently re-implements — and what
//! the property test therefore actually checks — is the event scheduling
//! machinery: `(time, seq)` ordering, inertial generation cancellation,
//! delta batching, per-delta cell-evaluation dedup, trigger-pin
//! collection, and energy attribution order.

use crate::cell::{Drive, DriveMode, EvalCtx, Violation};
use crate::circuit::{CellId, Circuit, NetId};
use crate::engine::OscillationError;
use crate::logic::Logic;
use crate::time::SimTime;
use maddpipe_tech::units::Joules;

#[derive(Debug, Clone, Copy)]
struct RefEvent {
    time: SimTime,
    seq: u64,
    net: NetId,
    value: Logic,
    gen: u32,
}

/// The naive reference simulator. Mirrors the subset of the
/// [`Simulator`](crate::engine::Simulator) API the equivalence test needs.
#[derive(Debug)]
pub struct ReferenceSimulator {
    circuit: Circuit,
    values: Vec<Logic>,
    gens: Vec<u32>,
    /// Pending events, deliberately unordered; every delta cycle scans for
    /// the minimum `(time, seq)`.
    events: Vec<RefEvent>,
    now: SimTime,
    seq: u64,
    /// Switching energy per domain, accumulated in transition order.
    energy_by_domain: Vec<Joules>,
    edge_energy: Vec<(Joules, Joules)>,
    violations: Vec<Violation>,
    event_cap: u64,
}

impl ReferenceSimulator {
    /// Creates the reference simulator and performs the power-up
    /// evaluation of every cell at time zero.
    pub fn new(circuit: Circuit) -> ReferenceSimulator {
        let n_nets = circuit.nets.len();
        let edge_energy = circuit
            .nets
            .iter()
            .map(|net| circuit.library.edge_energy(net.cap))
            .collect();
        let mut sim = ReferenceSimulator {
            values: vec![Logic::X; n_nets],
            gens: vec![0; n_nets],
            events: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            energy_by_domain: vec![Joules::ZERO; circuit.domains.len()],
            edge_energy,
            violations: Vec::new(),
            event_cap: 50_000_000,
            circuit,
        };
        for i in 0..sim.circuit.cells.len() {
            sim.eval_cell(CellId(i as u32), &[]);
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Present value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Total switching energy so far.
    pub fn total_energy(&self) -> Joules {
        self.energy_by_domain.iter().copied().sum()
    }

    /// Timing/protocol violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Replaces the runaway-protection event budget.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Drives a primary input to `value` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the net has a driver.
    pub fn poke(&mut self, net: NetId, value: Logic) {
        assert!(
            self.circuit.nets[net.index()].driver.is_none(),
            "cannot poke net `{}`: it is driven by a cell",
            self.circuit.nets[net.index()].name
        );
        self.schedule(net, value, SimTime::ZERO, DriveMode::Inertial);
    }

    /// Runs until the queue drains, returning the time of the last event.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if the event budget is exhausted.
    pub fn run_to_quiescence(&mut self) -> Result<SimTime, OscillationError> {
        let mut consumed: u64 = 0;
        while !self.events.is_empty() {
            if consumed >= self.event_cap {
                let t = self.events.iter().map(|e| e.time).min().expect("non-empty");
                return Err(OscillationError {
                    events: consumed,
                    time: t,
                });
            }
            consumed += self.delta_cycle();
        }
        Ok(self.now)
    }

    /// One delta cycle, spelled out: take every event at the earliest
    /// pending timestamp in seq order, apply the survivors, then evaluate
    /// each affected cell once with its ascending changed-pin set.
    fn delta_cycle(&mut self) -> u64 {
        let t = self
            .events
            .iter()
            .map(|e| e.time)
            .min()
            .expect("delta_cycle on empty queue");
        let mut batch: Vec<RefEvent> = Vec::new();
        let mut rest: Vec<RefEvent> = Vec::new();
        for ev in self.events.drain(..) {
            if ev.time == t {
                batch.push(ev);
            } else {
                rest.push(ev);
            }
        }
        self.events = rest;
        batch.sort_by_key(|e| e.seq);
        // Phase A: apply in seq order, collecting (cell, changed pins) in
        // first-marking order.
        let mut dirty: Vec<(CellId, Vec<usize>)> = Vec::new();
        for ev in &batch {
            let ni = ev.net.index();
            if ev.gen != self.gens[ni] {
                continue; // stale: superseded by a later inertial drive
            }
            self.now = t;
            if self.values[ni] == ev.value {
                continue;
            }
            self.values[ni] = ev.value;
            let (rise, fall) = self.edge_energy[ni];
            let domain = self.circuit.nets[ni].domain.0 as usize;
            match ev.value {
                Logic::High => self.energy_by_domain[domain] += rise,
                Logic::Low => self.energy_by_domain[domain] += fall,
                Logic::X => {}
            }
            for &(cell, pin) in &self.circuit.nets[ni].fanout {
                match dirty.iter_mut().find(|(c, _)| *c == cell) {
                    Some((_, pins)) => pins.push(pin),
                    None => dirty.push((cell, vec![pin])),
                }
            }
        }
        // Phase B: one evaluation per dirty cell, ascending pin order.
        for (cell, mut pins) in dirty {
            pins.sort_unstable();
            self.eval_cell(cell, &pins);
        }
        batch.len() as u64
    }

    fn eval_cell(&mut self, cell: CellId, triggers: &[usize]) {
        let mut drives: Vec<Drive> = Vec::new();
        {
            let inst = &mut self.circuit.cells[cell.index()];
            let input_values: Vec<Logic> =
                inst.inputs.iter().map(|n| self.values[n.index()]).collect();
            let mut ctx = EvalCtx::for_test(
                self.now,
                &input_values,
                triggers,
                &mut drives,
                &mut self.violations,
                &inst.name,
            );
            inst.cell.eval(&mut ctx);
        }
        for d in drives {
            let net = self.circuit.cells[cell.index()].outputs[d.out_pin];
            self.schedule(net, d.value, d.delay, d.mode);
        }
    }

    fn schedule(&mut self, net: NetId, value: Logic, delay: SimTime, mode: DriveMode) {
        let gen = match mode {
            DriveMode::Inertial => {
                let g = &mut self.gens[net.index()];
                *g = g.wrapping_add(1);
                *g
            }
            DriveMode::Transport => self.gens[net.index()],
        };
        self.seq += 1;
        self.events.push(RefEvent {
            time: self.now + delay,
            seq: self.seq,
            net,
            value,
            gen,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::library::CellLibrary;
    use maddpipe_tech::prelude::*;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(CellLibrary::new(
            Technology::n22(),
            OperatingPoint::default(),
        ))
    }

    #[test]
    fn reference_inverter_chain_behaves() {
        let mut b = builder();
        let a = b.input("a");
        let n1 = b.inv("u0", a);
        let n2 = b.inv("u1", n1);
        let mut sim = ReferenceSimulator::new(b.build());
        sim.poke(a, Logic::Low);
        let t = sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(n2), Logic::Low);
        assert!(t > SimTime::ZERO);
        assert!(sim.total_energy().value() > 0.0);
    }

    #[test]
    fn reference_detects_oscillation() {
        let mut b = builder();
        let enable = b.input("enable");
        let loop_net = b.net("ring");
        let n0 = b.nand2("u0", [enable, loop_net]);
        let n1 = b.inv("u1", n0);
        let t = b.library_mut().timing(crate::library::CellClass::Inv);
        b.add_cell(
            "u2",
            Box::new(crate::cells::Inverter::new(t)),
            &[n1],
            &[loop_net],
        );
        let mut sim = ReferenceSimulator::new(b.build());
        sim.poke(enable, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.set_event_cap(5_000);
        sim.poke(enable, Logic::High);
        assert!(sim.run_to_quiescence().is_err());
    }
}
