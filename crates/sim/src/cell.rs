//! The [`Cell`] trait — the unit of behaviour in a netlist.
//!
//! A cell is anything with input pins, output pins and (possibly stateful)
//! behaviour: a NAND gate, a latch, a pulse generator, or a user-defined
//! macro-cell such as the paper's dual-rail dynamic-logic comparator. Cells
//! are deliberately *open for implementation* by downstream crates
//! (`maddpipe-sram` models whole SRAM columns as one cell; `maddpipe-core`
//! models the DLC), so the trait and its evaluation context are public.

use crate::logic::Logic;
use crate::time::SimTime;
use core::fmt;

/// How a scheduled output transition interacts with ones already in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Inertial delay: this drive supersedes (cancels) every pending
    /// transition on the same output. Standard-cell behaviour — pulses
    /// shorter than the gate delay are swallowed.
    Inertial,
    /// Transport delay: queue behind pending transitions without cancelling
    /// them. Needed by cells that emit multi-edge waveforms from a single
    /// trigger (e.g. a pulse generator schedules both its rising and falling
    /// edge at once).
    Transport,
}

/// One output transition requested by a cell during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drive {
    /// Index of the output pin being driven.
    pub out_pin: usize,
    /// Level the pin will take.
    pub value: Logic,
    /// Delay from *now* until the transition.
    pub delay: SimTime,
    /// Scheduling semantics.
    pub mode: DriveMode,
}

/// Category of a recorded timing violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Data changed inside the setup window of a sequential cell.
    Setup,
    /// Data changed inside the hold window of a sequential cell.
    Hold,
    /// Cell-specific illegal stimulus (e.g. write and read asserted at once).
    Protocol,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::Setup => "setup",
            ViolationKind::Hold => "hold",
            ViolationKind::Protocol => "protocol",
        })
    }
}

/// A timing/protocol violation recorded during simulation.
///
/// Violations do not stop the simulation — they are collected so tests and
/// experiments (e.g. the replica-RCD ablation) can assert on their presence
/// or absence.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the violation was detected.
    pub time: SimTime,
    /// Instance name of the offending cell.
    pub cell: String,
    /// Violation category.
    pub kind: ViolationKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} violation in `{}`: {}",
            self.time, self.kind, self.cell, self.detail
        )
    }
}

/// Evaluation context handed to [`Cell::eval`].
///
/// Provides the current time, resolved input-pin values, which pins
/// triggered the evaluation, and sinks for output drives and violation
/// reports.
///
/// The kernel batches all events of one timestamp into a *delta cycle* and
/// evaluates each affected cell once per delta, so several input pins may
/// have changed together: `triggers` lists every changed pin (ascending pin
/// order). An empty list marks the power-up evaluation at time zero.
pub struct EvalCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) input_values: &'a [Logic],
    pub(crate) triggers: &'a [usize],
    pub(crate) drives: &'a mut Vec<Drive>,
    pub(crate) violations: &'a mut Vec<Violation>,
    pub(crate) cell_name: &'a str,
}

impl<'a> EvalCtx<'a> {
    /// Builds a standalone context for unit-testing a [`Cell`]
    /// implementation outside a simulator. Drives and violations are
    /// appended to the provided buffers; `triggers` lists the input pins
    /// that changed this delta (empty = power-up).
    pub fn for_test(
        now: SimTime,
        input_values: &'a [Logic],
        triggers: &'a [usize],
        drives: &'a mut Vec<Drive>,
        violations: &'a mut Vec<Violation>,
        cell_name: &'a str,
    ) -> EvalCtx<'a> {
        EvalCtx {
            now,
            input_values,
            triggers,
            drives,
            violations,
            cell_name,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Value currently on input pin `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for this cell.
    #[inline]
    pub fn input(&self, pin: usize) -> Logic {
        self.input_values[pin]
    }

    /// All input values, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[Logic] {
        self.input_values
    }

    /// The lowest-numbered input pin whose transition caused this
    /// evaluation, or `None` for the power-up evaluation at time zero.
    ///
    /// When several pins changed in the same delta cycle, prefer
    /// [`EvalCtx::changed`] / [`EvalCtx::is_edge`], which see every
    /// triggering pin rather than just the first.
    #[inline]
    pub fn trigger(&self) -> Option<usize> {
        self.triggers.first().copied()
    }

    /// Every input pin that changed this delta cycle, ascending pin order.
    /// Empty for the power-up evaluation.
    #[inline]
    pub fn triggers(&self) -> &[usize] {
        self.triggers
    }

    /// `true` when input `pin` changed value this delta cycle.
    #[inline]
    pub fn changed(&self, pin: usize) -> bool {
        self.triggers.contains(&pin)
    }

    /// `true` when `pin` just transitioned to `level` (edge detection).
    #[inline]
    pub fn is_edge(&self, pin: usize, level: Logic) -> bool {
        self.changed(pin) && self.input(pin) == level
    }

    /// Schedules an inertial transition on output `out_pin` after `delay`.
    #[inline]
    pub fn drive(&mut self, out_pin: usize, value: Logic, delay: SimTime) {
        self.drives.push(Drive {
            out_pin,
            value,
            delay,
            mode: DriveMode::Inertial,
        });
    }

    /// Schedules a transport-delay transition (queues behind pending edges).
    #[inline]
    pub fn drive_transport(&mut self, out_pin: usize, value: Logic, delay: SimTime) {
        self.drives.push(Drive {
            out_pin,
            value,
            delay,
            mode: DriveMode::Transport,
        });
    }

    /// Records a timing/protocol violation against this cell.
    pub fn report(&mut self, kind: ViolationKind, detail: impl Into<String>) {
        self.violations.push(Violation {
            time: self.now,
            cell: self.cell_name.to_owned(),
            kind,
            detail: detail.into(),
        });
    }
}

impl fmt::Debug for EvalCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalCtx")
            .field("now", &self.now)
            .field("cell", &self.cell_name)
            .field("inputs", &self.input_values)
            .field("triggers", &self.triggers)
            .finish()
    }
}

/// Behaviour of a netlist cell.
///
/// Implementations may keep internal state (latches, dynamic nodes, FSMs).
/// [`Cell::eval`] is called once at time zero with `trigger == None`, and
/// then whenever any connected input net changes value.
///
/// # Example
///
/// A two-input majority-with-memory cell (a Muller C-element) is about ten
/// lines; see [`crate::cells::CElement`] for the shipped implementation.
pub trait Cell: fmt::Debug {
    /// Number of input pins. Pin indices `0..num_inputs()` are valid.
    fn num_inputs(&self) -> usize;

    /// Number of output pins.
    fn num_outputs(&self) -> usize;

    /// Reacts to an input change (or to power-up when
    /// [`EvalCtx::trigger`] is `None`) by scheduling output drives.
    fn eval(&mut self, ctx: &mut EvalCtx<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_contains_everything() {
        let v = Violation {
            time: SimTime::from_picos(10.0),
            cell: "lat0".into(),
            kind: ViolationKind::Setup,
            detail: "D moved 3 ps before G fell".into(),
        };
        let s = v.to_string();
        assert!(
            s.contains("setup") && s.contains("lat0") && s.contains("3 ps"),
            "{s}"
        );
    }

    #[test]
    fn ctx_edge_detection() {
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        let inputs = [Logic::High, Logic::Low];
        let ctx = EvalCtx {
            now: SimTime::ZERO,
            input_values: &inputs,
            triggers: &[0],
            drives: &mut drives,
            violations: &mut violations,
            cell_name: "t",
        };
        assert!(ctx.is_edge(0, Logic::High));
        assert!(!ctx.is_edge(0, Logic::Low));
        assert!(!ctx.is_edge(1, Logic::Low), "pin 1 did not trigger");
        assert_eq!(ctx.trigger(), Some(0));
        assert!(ctx.changed(0) && !ctx.changed(1));
    }

    #[test]
    fn ctx_multi_pin_delta_triggers() {
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        let inputs = [Logic::High, Logic::Low, Logic::High];
        let ctx = EvalCtx {
            now: SimTime::ZERO,
            input_values: &inputs,
            triggers: &[0, 2],
            drives: &mut drives,
            violations: &mut violations,
            cell_name: "t",
        };
        assert_eq!(ctx.trigger(), Some(0), "first changed pin");
        assert_eq!(ctx.triggers(), &[0, 2]);
        assert!(ctx.is_edge(0, Logic::High) && ctx.is_edge(2, Logic::High));
        assert!(!ctx.is_edge(1, Logic::Low), "pin 1 held its value");
    }

    #[test]
    fn ctx_drive_accumulates_in_order() {
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        let inputs = [Logic::Low];
        let mut ctx = EvalCtx {
            now: SimTime::ZERO,
            input_values: &inputs,
            triggers: &[],
            drives: &mut drives,
            violations: &mut violations,
            cell_name: "t",
        };
        ctx.drive(0, Logic::High, SimTime::from_picos(5.0));
        ctx.drive_transport(0, Logic::Low, SimTime::from_picos(9.0));
        assert_eq!(drives.len(), 2);
        assert_eq!(drives[0].mode, DriveMode::Inertial);
        assert_eq!(drives[1].mode, DriveMode::Transport);
    }
}
