//! Timing/energy characterisation of the standard-cell set.
//!
//! A [`CellLibrary`] binds the technology model to an operating point and
//! hands out *sampled* per-instance delays: every query scales a nominal
//! (0.8 V / TTG / 25 °C) arc delay by the alpha-power-law corner factor and
//! by one draw of the local-mismatch distribution. Building the same netlist
//! with the same mismatch seed therefore reproduces the same silicon
//! instance, while different seeds give Monte-Carlo samples — exactly the
//! methodology of a transistor-level corner/mismatch simulation, at event
//! granularity.

use crate::time::SimTime;
use maddpipe_tech::prelude::*;
use maddpipe_tech::units::Seconds;

/// Identifies a characterised standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Inverter.
    Inv,
    /// Buffer (two inverters).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// Mirror-adder full adder (sum arc; the carry arc is faster).
    FullAdder,
    /// Level-sensitive D-latch.
    Latch,
    /// Muller C-element (2-input).
    CElement,
}

impl CellClass {
    /// Nominal propagation delay in picoseconds at 0.8 V / TTG / 25 °C.
    ///
    /// Representative of a placed-and-routed 22 nm standard cell driving a
    /// fanout-of-2 load.
    pub fn nominal_delay_ps(self) -> f64 {
        match self {
            CellClass::Inv => 9.0,
            CellClass::Buf => 16.0,
            CellClass::Nand2 => 13.0,
            CellClass::Nand3 => 17.0,
            CellClass::Nand4 => 21.0,
            CellClass::Nor2 => 15.0,
            CellClass::Nor3 => 20.0,
            CellClass::And2 => 20.0,
            CellClass::Or2 => 22.0,
            CellClass::Xor2 => 28.0,
            CellClass::Mux2 => 24.0,
            CellClass::FullAdder => 55.0,
            CellClass::Latch => 26.0,
            CellClass::CElement => 22.0,
        }
    }

    /// Input capacitance of one pin.
    pub fn input_cap(self) -> Farads {
        let gates = match self {
            CellClass::Inv | CellClass::Buf => 1.0,
            CellClass::Nand2 | CellClass::Nor2 | CellClass::And2 | CellClass::Or2 => 1.2,
            CellClass::Nand3 | CellClass::Nor3 => 1.4,
            CellClass::Nand4 => 1.6,
            CellClass::Xor2 | CellClass::Mux2 => 2.2,
            CellClass::FullAdder => 2.6,
            CellClass::Latch => 1.8,
            CellClass::CElement => 1.6,
        };
        Farads(Technology::n22().cap_gate_unit.0 * gates)
    }

    /// Parasitic output (self) capacitance.
    pub fn output_cap(self) -> Farads {
        Farads(self.input_cap().0 * 0.6)
    }

    /// Transistor count, used by the area model.
    pub fn transistors(self) -> f64 {
        match self {
            CellClass::Inv => 2.0,
            CellClass::Buf => 4.0,
            CellClass::Nand2 | CellClass::Nor2 => 4.0,
            CellClass::Nand3 | CellClass::Nor3 => 6.0,
            CellClass::Nand4 => 8.0,
            CellClass::And2 | CellClass::Or2 => 6.0,
            CellClass::Xor2 => 10.0,
            CellClass::Mux2 => 12.0,
            CellClass::FullAdder => 28.0,
            CellClass::Latch => 16.0,
            CellClass::CElement => 12.0,
        }
    }
}

/// Per-instance timing arcs sampled from a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledTiming {
    /// Output rise delay (PMOS-limited).
    pub rise: SimTime,
    /// Output fall delay (NMOS-limited).
    pub fall: SimTime,
}

impl SampledTiming {
    /// Delay for a transition to `value_is_high`.
    #[inline]
    pub fn for_edge(self, value_is_high: bool) -> SimTime {
        if value_is_high {
            self.rise
        } else {
            self.fall
        }
    }

    /// The slower of the two arcs (used when driving `X`).
    #[inline]
    pub fn worst(self) -> SimTime {
        self.rise.max(self.fall)
    }

    /// The arc a transition to `value` uses: rise for `High`, fall for
    /// `Low`, the worst arc for `X`. This is the single delay-selection
    /// rule of every combinational standard cell, shared so the
    /// enum-dispatched kernel fast path and the boxed escape hatch cannot
    /// drift apart.
    #[inline]
    pub fn for_value(self, value: crate::logic::Logic) -> SimTime {
        match value {
            crate::logic::Logic::High => self.rise,
            crate::logic::Logic::Low => self.fall,
            crate::logic::Logic::X => self.worst(),
        }
    }
}

/// A characterised, operating-point-bound cell library.
///
/// ```
/// use maddpipe_sim::library::{CellClass, CellLibrary};
/// use maddpipe_tech::prelude::*;
///
/// let mut lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
/// let t = lib.timing(CellClass::Nand2);
/// assert!(t.rise.as_picos() > 0.0 && t.fall.as_picos() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    tech: Technology,
    op: OperatingPoint,
    mismatch: MismatchSampler,
}

impl CellLibrary {
    /// Creates a library at `op` with no local mismatch.
    pub fn new(tech: Technology, op: OperatingPoint) -> CellLibrary {
        CellLibrary {
            tech,
            op,
            mismatch: Mismatch::none().sampler(),
        }
    }

    /// Creates a library whose per-instance delays are drawn with local
    /// mismatch `mm`.
    pub fn with_mismatch(tech: Technology, op: OperatingPoint, mm: &Mismatch) -> CellLibrary {
        CellLibrary {
            tech,
            op,
            mismatch: mm.sampler(),
        }
    }

    /// The operating point this library was characterised at.
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// The underlying technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Samples the timing arcs of one new instance of `class`.
    ///
    /// Each call draws fresh mismatch, so two instances of the same class
    /// generally differ slightly — as they do on silicon.
    pub fn timing(&mut self, class: CellClass) -> SampledTiming {
        self.timing_scaled(class, 1.0)
    }

    /// Samples timing arcs with an extra deterministic multiplier (used for
    /// derated or up-sized instances, e.g. long-wire drivers).
    pub fn timing_scaled(&mut self, class: CellClass, multiplier: f64) -> SampledTiming {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "delay multiplier must be positive, got {multiplier}"
        );
        let nominal = Seconds::from_picos(class.nominal_delay_ps() * multiplier);
        let mm = self.mismatch.sample();
        let rise = self.tech.scale_delay(nominal, self.op, DriveKind::PullUp) * mm;
        let fall = self.tech.scale_delay(nominal, self.op, DriveKind::PullDown) * mm;
        SampledTiming {
            rise: SimTime::from_seconds(rise),
            fall: SimTime::from_seconds(fall),
        }
    }

    /// Samples a raw delay from a nominal value limited by `kind` devices.
    pub fn delay(&mut self, nominal: Seconds, kind: DriveKind) -> SimTime {
        let mm = self.mismatch.sample();
        SimTime::from_seconds(self.tech.scale_delay(nominal, self.op, kind) * mm)
    }

    /// Per-edge supply energy of a full transition pair on `cap`, split as
    /// (rise-edge, fall-edge).
    ///
    /// The rising edge draws the full `C·V²` from the supply; the
    /// short-circuit charge is split evenly across both edges.
    pub fn edge_energy(&self, cap: Farads) -> (Joules, Joules) {
        let total = self.tech.switching_energy(cap, self.op);
        let dynamic = cap.switching_energy(self.op.vdd);
        let sc_half = (total - dynamic) * 0.5;
        (dynamic + sc_half, sc_half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_at(vdd: f64, corner: Corner) -> CellLibrary {
        CellLibrary::new(Technology::n22(), OperatingPoint::new(Volts(vdd), corner))
    }

    #[test]
    fn lower_supply_slows_cells() {
        let mut nominal = lib_at(0.8, Corner::Ttg);
        let mut low = lib_at(0.5, Corner::Ttg);
        let tn = nominal.timing(CellClass::Nand2);
        let tl = low.timing(CellClass::Nand2);
        assert!(tl.fall > tn.fall);
        let ratio = tl.fall.as_picos() / tn.fall.as_picos();
        assert!(
            (4.0..8.0).contains(&ratio),
            "0.5 V / 0.8 V delay ratio {ratio}, expected ≈5.6 (alpha-power)"
        );
    }

    #[test]
    fn mixed_corner_splits_rise_and_fall() {
        // SFG: slow NMOS (fall slower), fast PMOS (rise faster).
        let mut sfg = lib_at(0.8, Corner::Sfg);
        let mut ttg = lib_at(0.8, Corner::Ttg);
        let ts = sfg.timing(CellClass::Inv);
        let tt = ttg.timing(CellClass::Inv);
        assert!(ts.fall > tt.fall, "slow NMOS ⇒ slower fall");
        assert!(ts.rise < tt.rise, "fast PMOS ⇒ faster rise");
    }

    #[test]
    fn mismatch_spreads_instances() {
        let mm = Mismatch::new(0.05, 11);
        let mut lib = CellLibrary::with_mismatch(Technology::n22(), OperatingPoint::default(), &mm);
        let samples: Vec<u64> = (0..32)
            .map(|_| lib.timing(CellClass::Inv).fall.as_femtos())
            .collect();
        let distinct = {
            let mut s = samples.clone();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        assert!(
            distinct > 20,
            "expected spread, got {distinct} distinct values"
        );
    }

    #[test]
    fn no_mismatch_is_deterministic() {
        let mut a = lib_at(0.8, Corner::Ttg);
        let mut b = lib_at(0.8, Corner::Ttg);
        for _ in 0..8 {
            assert_eq!(a.timing(CellClass::Xor2), b.timing(CellClass::Xor2));
        }
    }

    #[test]
    fn edge_energy_sums_to_pair_energy() {
        let lib = lib_at(0.5, Corner::Ttg);
        let cap = Farads::from_femtos(2.0);
        let (r, f) = lib.edge_energy(cap);
        let total = lib
            .technology()
            .switching_energy(cap, lib.operating_point());
        assert!(((r + f).as_femtos() - total.as_femtos()).abs() < 1e-9);
        assert!(r.as_femtos() > f.as_femtos(), "rise edge carries C·V²");
    }

    #[test]
    fn complex_cells_are_slower_and_bigger() {
        assert!(CellClass::FullAdder.nominal_delay_ps() > CellClass::Nand2.nominal_delay_ps());
        assert!(CellClass::FullAdder.transistors() > CellClass::Inv.transistors());
        assert!(CellClass::Xor2.input_cap().0 > CellClass::Inv.input_cap().0);
    }

    #[test]
    fn for_edge_selects_arc() {
        let t = SampledTiming {
            rise: SimTime::from_picos(10.0),
            fall: SimTime::from_picos(7.0),
        };
        assert_eq!(t.for_edge(true), t.rise);
        assert_eq!(t.for_edge(false), t.fall);
        assert_eq!(t.worst(), t.rise);
        assert_eq!(t.for_value(crate::logic::Logic::High), t.rise);
        assert_eq!(t.for_value(crate::logic::Logic::Low), t.fall);
        assert_eq!(t.for_value(crate::logic::Logic::X), t.worst());
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn zero_multiplier_rejected() {
        let mut lib = lib_at(0.8, Corner::Ttg);
        let _ = lib.timing_scaled(CellClass::Inv, 0.0);
    }
}
