//! Three-valued digital logic.
//!
//! Nets carry [`Logic::Low`], [`Logic::High`] or [`Logic::X`] (unknown).
//! `X` models uninitialised state and un-precharged dynamic nodes; it
//! propagates pessimistically through the standard-cell operators defined
//! here (e.g. `NAND(X, Low) = High` because one controlling input decides the
//! output, but `NAND(X, High) = X`).

use core::fmt;
use core::ops::Not;

/// A three-valued logic level.
///
/// ```
/// use maddpipe_sim::logic::Logic;
///
/// assert_eq!(Logic::High & Logic::X, Logic::X);   // unknown dominates
/// assert_eq!(Logic::Low & Logic::X, Logic::Low);  // controlling value wins
/// assert_eq!(!Logic::Low, Logic::High);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic 0 / VSS.
    Low,
    /// Logic 1 / VDD.
    High,
    /// Unknown or uninitialised.
    #[default]
    X,
}

impl Logic {
    /// Converts a `bool` to a logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::High
        } else {
            Logic::Low
        }
    }

    /// `Some(bool)` when the level is known, `None` for `X`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Low => Some(false),
            Logic::High => Some(true),
            Logic::X => None,
        }
    }

    /// `true` only for [`Logic::High`].
    #[inline]
    pub fn is_high(self) -> bool {
        self == Logic::High
    }

    /// `true` only for [`Logic::Low`].
    #[inline]
    pub fn is_low(self) -> bool {
        self == Logic::Low
    }

    /// `true` for [`Logic::X`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Logic::X
    }

    /// Three-valued AND over an iterator (identity [`Logic::High`]).
    pub fn and_all<I: IntoIterator<Item = Logic>>(levels: I) -> Logic {
        levels.into_iter().fold(Logic::High, |a, b| a & b)
    }

    /// Three-valued OR over an iterator (identity [`Logic::Low`]).
    pub fn or_all<I: IntoIterator<Item = Logic>>(levels: I) -> Logic {
        levels.into_iter().fold(Logic::Low, |a, b| a | b)
    }

    /// The single character VCD uses for this level.
    #[inline]
    pub fn vcd_char(self) -> char {
        match self {
            Logic::Low => '0',
            Logic::High => '1',
            Logic::X => 'x',
        }
    }
}

impl Not for Logic {
    type Output = Logic;
    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Low => Logic::High,
            Logic::High => Logic::Low,
            Logic::X => Logic::X,
        }
    }
}

impl core::ops::BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Low, _) | (_, Logic::Low) => Logic::Low,
            (Logic::High, Logic::High) => Logic::High,
            _ => Logic::X,
        }
    }
}

impl core::ops::BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::High, _) | (_, Logic::High) => Logic::High,
            (Logic::Low, Logic::Low) => Logic::Low,
            _ => Logic::X,
        }
    }
}

impl core::ops::BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Low => "0",
            Logic::High => "1",
            Logic::X => "x",
        })
    }
}

/// Packs a little-endian slice of logic levels into an integer.
///
/// Returns `None` if any bit is `X`.
///
/// ```
/// use maddpipe_sim::logic::{bits_to_u64, Logic};
/// let bits = [Logic::High, Logic::Low, Logic::High]; // LSB first: 0b101
/// assert_eq!(bits_to_u64(&bits), Some(5));
/// ```
pub fn bits_to_u64(bits: &[Logic]) -> Option<u64> {
    assert!(bits.len() <= 64, "too many bits for u64: {}", bits.len());
    let mut acc = 0u64;
    for (i, b) in bits.iter().enumerate() {
        match b.to_bool() {
            Some(true) => acc |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(acc)
}

/// Unpacks the low `n` bits of `value` into little-endian logic levels.
///
/// ```
/// use maddpipe_sim::logic::{u64_to_bits, Logic};
/// assert_eq!(u64_to_bits(5, 3), vec![Logic::High, Logic::Low, Logic::High]);
/// ```
pub fn u64_to_bits(value: u64, n: usize) -> Vec<Logic> {
    assert!(n <= 64, "too many bits for u64: {n}");
    (0..n)
        .map(|i| Logic::from_bool(value >> i & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 3] = [Logic::Low, Logic::High, Logic::X];

    #[test]
    fn not_truth_table() {
        assert_eq!(!Logic::Low, Logic::High);
        assert_eq!(!Logic::High, Logic::Low);
        assert_eq!(!Logic::X, Logic::X);
    }

    #[test]
    fn and_controlling_low_wins_over_x() {
        assert_eq!(Logic::Low & Logic::X, Logic::Low);
        assert_eq!(Logic::X & Logic::Low, Logic::Low);
        assert_eq!(Logic::High & Logic::X, Logic::X);
        assert_eq!(Logic::High & Logic::High, Logic::High);
    }

    #[test]
    fn or_controlling_high_wins_over_x() {
        assert_eq!(Logic::High | Logic::X, Logic::High);
        assert_eq!(Logic::X | Logic::High, Logic::High);
        assert_eq!(Logic::Low | Logic::X, Logic::X);
        assert_eq!(Logic::Low | Logic::Low, Logic::Low);
    }

    #[test]
    fn xor_is_strict_about_x() {
        assert_eq!(Logic::High ^ Logic::Low, Logic::High);
        assert_eq!(Logic::High ^ Logic::High, Logic::Low);
        assert_eq!(Logic::High ^ Logic::X, Logic::X);
    }

    #[test]
    fn demorgan_holds_in_three_valued_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn reductions() {
        assert_eq!(
            Logic::and_all([Logic::High, Logic::High, Logic::High]),
            Logic::High
        );
        assert_eq!(
            Logic::and_all([Logic::High, Logic::Low, Logic::X]),
            Logic::Low
        );
        assert_eq!(Logic::or_all([Logic::Low, Logic::X]), Logic::X);
        assert_eq!(Logic::and_all([]), Logic::High);
        assert_eq!(Logic::or_all([]), Logic::Low);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::from(true), Logic::High);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for v in [0u64, 1, 5, 0xAB, 0xFFFF] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 16)), Some(v & 0xFFFF));
        }
        assert_eq!(bits_to_u64(&[Logic::X]), None);
    }
}
