//! The complete accelerator macro at the event-driven netlist level, plus
//! a testbench that drives tokens through it.
//!
//! `NS` compute blocks are chained: block `s` receives its own subvector
//! (input channel `s` of the CNN mapping, Fig. 3) and the carry-save
//! partial sums of block `s−1`; four-phase request/acknowledge wires run
//! alongside. After the last block, one 16-bit ripple-carry adder per
//! decoder chain collapses the carry-save pair and an output register
//! captures the result (Fig. 2).
//!
//! The testbench measures, per token: functional outputs (checked against
//! the algorithmic reference elsewhere), latency, and per-domain energy.

use crate::adder::{build_rca, tie_low};
use crate::block::{build_block, BlockPorts};
use crate::config::{MacroConfig, ACC_BITS, K, LEVELS, SUBVECTOR_LEN};
use crate::dlc::to_offset_binary;
use core::fmt;
use maddpipe_amm::bdt::QuantizedBdt;
use maddpipe_amm::maddness::MaddnessMatmul;
use maddpipe_sim::cells::DelayLine;
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_sim::engine::{EdgeWaitOutcome, OscillationError, Simulator};
use maddpipe_sim::library::CellLibrary;
use maddpipe_sim::logic::{u64_to_bits, Logic};
use maddpipe_sim::time::SimTime;
use maddpipe_sram::model::SramModel;
use maddpipe_tech::process::DriveKind;
use maddpipe_tech::units::Joules;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything that must be programmed into a macro before inference: one
/// hash tree per pipeline stage and one 16-entry LUT per (stage, decoder).
#[derive(Debug, Clone)]
pub struct MacroProgram {
    /// One quantised BDT per compute block (pipeline stage / subspace).
    pub trees: Vec<QuantizedBdt>,
    /// `luts[s][j]` = the 16 signed bytes of stage `s`, decoder `j`.
    pub luts: Vec<Vec<[i8; K]>>,
}

impl MacroProgram {
    /// Number of pipeline stages.
    pub fn ns(&self) -> usize {
        self.trees.len()
    }

    /// Decoders per block.
    pub fn ndec(&self) -> usize {
        self.luts.first().map_or(0, Vec::len)
    }

    /// Extracts the program of a trained [`MaddnessMatmul`] operator: one
    /// stage per subspace, one decoder per output feature.
    ///
    /// # Panics
    ///
    /// Panics if the operator was not trained with the hardware shape
    /// (4 levels, subvectors of at most 9 dimensions).
    pub fn from_maddness(op: &MaddnessMatmul) -> MacroProgram {
        assert_eq!(
            op.params().levels,
            LEVELS,
            "hardware encoder is {LEVELS}-level"
        );
        assert!(
            op.params().subspace_len <= SUBVECTOR_LEN,
            "hardware input buffer holds {SUBVECTOR_LEN} elements"
        );
        let trees = op.quantized_encoders().to_vec();
        let lut = op.lut_i8();
        let luts = (0..lut.num_subspaces())
            .map(|s| {
                (0..lut.out_features())
                    .map(|j| {
                        let mut entries = [0i8; K];
                        for (k, e) in entries.iter_mut().enumerate() {
                            *e = lut.entry(s, k, j);
                        }
                        entries
                    })
                    .collect()
            })
            .collect();
        MacroProgram { trees, luts }
    }

    /// Generates a random but well-formed program (for property tests):
    /// random split dimensions, sorted-ish random thresholds, random LUT
    /// bytes.
    pub fn random(ndec: usize, ns: usize, seed: u64) -> MacroProgram {
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..ns)
            .map(|_| {
                let dims: Vec<usize> = (0..LEVELS)
                    .map(|_| rng.gen_range(0..SUBVECTOR_LEN))
                    .collect();
                let thresholds: Vec<f32> = (0..(1 << LEVELS) - 1)
                    .map(|_| rng.gen_range(-100.0..100.0))
                    .collect();
                maddpipe_amm::bdt::BdtEncoder::from_parts(dims, thresholds)
                    .expect("shape is valid by construction")
                    .quantize(maddpipe_amm::quant::QuantScale::UNIT)
            })
            .collect();
        let luts = (0..ns)
            .map(|_| {
                (0..ndec)
                    .map(|_| {
                        let mut entries = [0i8; K];
                        for e in entries.iter_mut() {
                            *e = rng.gen_range(-128i32..=127) as i8;
                        }
                        entries
                    })
                    .collect()
            })
            .collect();
        MacroProgram { trees, luts }
    }

    /// The algorithmic reference output for one token: per decoder chain,
    /// the wrapping 16-bit sum of the selected LUT bytes — exactly what
    /// the CSA chain + RCA compute.
    ///
    /// # Panics
    ///
    /// Panics if the token does not provide one subvector per stage.
    pub fn reference_output(&self, token: &[[i8; SUBVECTOR_LEN]]) -> Vec<i16> {
        assert_eq!(token.len(), self.ns(), "one subvector per stage");
        let ndec = self.ndec();
        let mut out = vec![0i16; ndec];
        for (s, x) in token.iter().enumerate() {
            let code = self.trees[s].encode_one(x);
            for (j, o) in out.iter_mut().enumerate() {
                *o = o.wrapping_add(self.luts[s][j][code] as i16);
            }
        }
        out
    }

    /// Builds the struct-of-arrays batched view of this program (see
    /// [`crate::batched::BatchedProgram`]). Build it once and reuse it:
    /// the view precomputes the widened LUT rows and transposed bit-planes
    /// that the lane kernels gather from.
    pub fn batched(&self) -> crate::batched::BatchedProgram {
        crate::batched::BatchedProgram::new(self)
    }

    /// Batched counterpart of [`MacroProgram::reference_output`]: one
    /// output vector per token, bit-identical to mapping the scalar
    /// reference over `tokens`, evaluated a [`crate::batched::LANE`] of
    /// tokens at a time (bit-sliced when the `simd` feature is on,
    /// portable otherwise).
    ///
    /// Callers with a long-lived program should prefer building
    /// [`MacroProgram::batched`] once and calling
    /// [`crate::batched::BatchedProgram::evaluate`]; this convenience
    /// rebuilds the view per call.
    ///
    /// # Panics
    ///
    /// Panics if a token does not provide one subvector per stage.
    pub fn reference_output_batch<T: AsRef<[[i8; SUBVECTOR_LEN]]>>(
        &self,
        tokens: &[T],
    ) -> Vec<Vec<i16>> {
        self.batched().evaluate(tokens)
    }
}

/// Per-token measurement from the RTL testbench.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenResult {
    /// One 16-bit result per decoder chain.
    pub outputs: Vec<i16>,
    /// Time from request to output-register capture.
    pub latency: SimTime,
    /// Switching energy spent during this token (all domains).
    pub energy: Joules,
}

/// Typed error for driving tokens through [`AcceleratorRtl`] — malformed
/// stimulus and netlist-settling failures, previously a mix of `assert!`
/// panics and raw [`OscillationError`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// A token does not provide one subvector per pipeline stage.
    ShapeMismatch {
        /// Index of the offending token within the offered stream.
        token: usize,
        /// Pipeline stages the macro was built with.
        expected: usize,
        /// Subvectors the token actually carries.
        got: usize,
    },
    /// An empty token stream was offered to the pipeline.
    EmptyStream,
    /// The netlist failed to settle, which indicates a handshake bug or a
    /// combinational loop.
    Oscillation(OscillationError),
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::ShapeMismatch {
                token,
                expected,
                got,
            } => write!(
                f,
                "token {token} carries {got} subvectors but the macro has {expected} stages"
            ),
            TokenError::EmptyStream => write!(f, "empty token stream"),
            TokenError::Oscillation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TokenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TokenError::Oscillation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OscillationError> for TokenError {
    fn from(e: OscillationError) -> TokenError {
        TokenError::Oscillation(e)
    }
}

/// Per-token observations from one pipelined streaming run
/// ([`AcceleratorRtl::run_pipelined_observed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinedRun {
    /// One output vector per input token, sampled at that token's
    /// output-register strobe — not just the final token's.
    pub outputs: Vec<Vec<i16>>,
    /// Per-token latency: offer (request raised) to output-register
    /// capture, including any time spent queued behind earlier tokens.
    pub latencies: Vec<SimTime>,
    /// When each token's outputs were captured, relative to the start of
    /// the stream (consecutive differences are the achieved pipeline beat).
    pub completions: Vec<SimTime>,
    /// Total makespan of the stream, first offer to final drain.
    pub makespan: SimTime,
    /// Switching energy spent by the whole stream (all domains).
    pub energy: Joules,
}

/// The macro netlist plus testbench state.
#[derive(Debug)]
pub struct AcceleratorRtl {
    sim: Simulator,
    program: MacroProgram,
    req0: NetId,
    ack0: NetId,
    x_inputs: Vec<Vec<Vec<NetId>>>,
    out_bus: Vec<Vec<NetId>>,
    out_strobe: NetId,
    blocks: Vec<BlockPorts>,
}

impl AcceleratorRtl {
    /// Builds the netlist for `cfg` and programs it with `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program shape disagrees with the configuration.
    pub fn build(cfg: &MacroConfig, program: &MacroProgram) -> AcceleratorRtl {
        assert_eq!(program.ns(), cfg.ns, "program stages vs config NS");
        assert_eq!(program.ndec(), cfg.ndec, "program decoders vs config Ndec");
        let cal = &cfg.calibration;
        let lib =
            CellLibrary::with_mismatch(maddpipe_tech::Technology::n22(), cfg.op, &cfg.mismatch);
        let mut b = CircuitBuilder::new(lib);
        let tie = tie_low(&mut b, "tie0");

        // Handshake wiring, pre-created so blocks can cross-reference.
        let req0 = b.input("req[0]");
        let mut req_nets = vec![req0];
        for s in 1..=cfg.ns {
            let n = b.net(format!("req[{s}]"));
            req_nets.push(n);
        }
        let ack_nets: Vec<NetId> = (0..cfg.ns).map(|s| b.net(format!("ack[{s}]"))).collect();
        let ack_sink = b.net("ack_sink");

        // Per-block raw inputs.
        let x_inputs: Vec<Vec<Vec<NetId>>> = (0..cfg.ns)
            .map(|s| {
                (0..SUBVECTOR_LEN)
                    .map(|e| b.bus(&format!("x{s}_{e}"), 8))
                    .collect()
            })
            .collect();

        // First stage accumulates from zero.
        let zeros: Vec<NetId> = (0..ACC_BITS).map(|_| tie).collect();
        let mut s_prev: Vec<Vec<NetId>> = vec![zeros.clone(); cfg.ndec];
        let mut c_prev: Vec<Vec<NetId>> = vec![zeros; cfg.ndec];

        let mut blocks = Vec::with_capacity(cfg.ns);
        for s in 0..cfg.ns {
            let luts: Vec<SramModel> = program.luts[s]
                .iter()
                .map(|entries| {
                    let mut words = [0u8; K];
                    for (w, &e) in words.iter_mut().zip(entries) {
                        *w = e as u8;
                    }
                    SramModel::from_words(words)
                })
                .collect();
            let ack_down = if s + 1 < cfg.ns {
                ack_nets[s + 1]
            } else {
                ack_sink
            };
            let ports = build_block(
                &mut b,
                &format!("blk{s}"),
                &program.trees[s],
                &luts,
                &x_inputs[s],
                &s_prev,
                &c_prev,
                req_nets[s],
                ack_down,
                ack_nets[s],
                req_nets[s + 1],
                cal,
                tie,
            );
            s_prev = ports.decoders.iter().map(|d| d.s_out.clone()).collect();
            c_prev = ports.decoders.iter().map(|d| d.c_out.clone()).collect();
            blocks.push(ports);
        }

        // Tail: auto-acknowledge the last request (the environment always
        // accepts), final RCAs, output registers.
        let t_sink = b
            .library_mut()
            .delay(cal.ctrl_overhead * 0.25, DriveKind::Complementary);
        b.add_cell(
            "ack_sink_dl",
            Box::new(DelayLine::new(t_sink)),
            &[req_nets[cfg.ns]],
            &[ack_sink],
        );
        let prev_domain = b.set_domain("ctrl");
        let t_out = b
            .library_mut()
            .delay(cal.rca_settle, DriveKind::Complementary);
        let t_out_w = b
            .library_mut()
            .delay(cal.ge_pulse_width, DriveKind::Complementary);
        let out_strobe = b.pulse_gen("out_strobe", req_nets[cfg.ns], t_out, t_out_w);
        let last = blocks.last().expect("ns >= 1");
        let out_bus: Vec<Vec<NetId>> = (0..cfg.ndec)
            .map(|j| {
                let sum = build_rca(
                    &mut b,
                    &format!("rca{j}"),
                    &last.decoders[j].s_out,
                    &last.decoders[j].c_out,
                    tie,
                );
                sum.iter()
                    .enumerate()
                    .map(|(i, &bit)| b.latch(&format!("oreg{j}_{i}"), bit, out_strobe))
                    .collect()
            })
            .collect();
        b.restore_domain(prev_domain);

        let mut sim = Simulator::new(b.build());
        sim.poke(req0, Logic::Low);
        // Settle power-up state.
        sim.run_to_quiescence().expect("power-up must settle");
        AcceleratorRtl {
            sim,
            program: program.clone(),
            req0,
            ack0: ack_nets[0],
            x_inputs,
            out_bus,
            out_strobe,
            blocks,
        }
    }

    /// The underlying simulator (for tracing, violations, statistics).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable simulator access (e.g. to enable tracing before a run).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The loaded program.
    pub fn program(&self) -> &MacroProgram {
        &self.program
    }

    /// Block-level ports (for probing handshake wires in tests).
    pub fn blocks(&self) -> &[BlockPorts] {
        &self.blocks
    }

    /// The output-register strobe net (for waveform tracing).
    pub fn output_strobe(&self) -> NetId {
        self.out_strobe
    }

    /// Validates a token's shape against the macro, reporting the typed
    /// [`TokenError::ShapeMismatch`] instead of panicking.
    fn check_token_shape(
        &self,
        index: usize,
        token: &[[i8; SUBVECTOR_LEN]],
    ) -> Result<(), TokenError> {
        if token.len() != self.x_inputs.len() {
            return Err(TokenError::ShapeMismatch {
                token: index,
                expected: self.x_inputs.len(),
                got: token.len(),
            });
        }
        Ok(())
    }

    fn poke_token_inputs(
        &mut self,
        index: usize,
        token: &[[i8; SUBVECTOR_LEN]],
    ) -> Result<(), TokenError> {
        self.check_token_shape(index, token)?;
        for (s, x) in token.iter().enumerate() {
            for (e, &v) in x.iter().enumerate() {
                let code = to_offset_binary(v);
                let bits = u64_to_bits(code as u64, 8);
                for (net, bit) in self.x_inputs[s][e].iter().zip(bits) {
                    self.sim.poke(*net, bit);
                }
            }
        }
        Ok(())
    }

    fn read_outputs(&self) -> Vec<i16> {
        self.out_bus
            .iter()
            .map(|bus| {
                self.sim
                    .bus_value(bus)
                    .expect("output register must hold known bits") as u16 as i16
            })
            .collect()
    }

    /// Pushes one token through the idle pipeline and waits for it to
    /// drain completely (sequential mode: no token overlap, exact
    /// per-token latency and energy).
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::ShapeMismatch`] when the token does not carry
    /// one subvector per stage, and [`TokenError::Oscillation`] if the
    /// netlist fails to settle, which indicates a handshake bug.
    pub fn run_token(&mut self, token: &[[i8; SUBVECTOR_LEN]]) -> Result<TokenResult, TokenError> {
        self.poke_token_inputs(0, token)?;
        self.sim.run_to_quiescence()?;
        let e0 = self.sim.total_energy();
        let t0 = self.sim.now();
        self.sim.poke(self.req0, Logic::High);
        // Four-phase: wait for the accept, then withdraw the request.
        self.sim
            .run_until_net(self.ack0, Logic::High)?
            .expect("block 0 must acknowledge");
        self.sim.poke(self.req0, Logic::Low);
        // Let the token flow to the end and the whole pipeline return to
        // idle (output strobe included).
        self.sim.run_to_quiescence()?;
        let latency = self.sim.now().since(t0);
        let energy = self.sim.total_energy() - e0;
        Ok(TokenResult {
            outputs: self.read_outputs(),
            latency,
            energy,
        })
    }

    /// Streams several tokens with pipelining: token `t+1` is offered as
    /// soon as block 0 reopens its input buffer, while token `t` is still
    /// in flight downstream. Returns the *final* token's outputs (earlier
    /// results are overwritten in the shared output register — use
    /// [`AcceleratorRtl::run_token`] for per-token verification) and the
    /// total makespan.
    ///
    /// Data hazards are impossible by construction: block `s` freezes its
    /// input buffer (`IBE` low) the moment it accepts token `t`, so the
    /// testbench may change the raw inputs for token `t+1` as soon as
    /// block 0 re-opens; downstream blocks still see their frozen copy.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::EmptyStream`] for an empty stream,
    /// [`TokenError::ShapeMismatch`] for a malformed token, and
    /// [`TokenError::Oscillation`] if the netlist fails to settle.
    pub fn run_pipelined(
        &mut self,
        tokens: &[Vec<[i8; SUBVECTOR_LEN]>],
    ) -> Result<(Vec<i16>, SimTime), TokenError> {
        let (_, makespan) = self.stream_tokens(tokens)?;
        Ok((self.read_outputs(), makespan))
    }

    /// The shared pipelined driving loop: offers every token with overlap.
    /// Returns the absolute offer times and the stream makespan.
    fn stream_tokens(
        &mut self,
        tokens: &[Vec<[i8; SUBVECTOR_LEN]>],
    ) -> Result<(Vec<SimTime>, SimTime), TokenError> {
        if tokens.is_empty() {
            return Err(TokenError::EmptyStream);
        }
        // Reject malformed streams before any stimulus is applied, so a
        // shape error cannot leave a token half-way in the pipeline.
        for (idx, token) in tokens.iter().enumerate() {
            self.check_token_shape(idx, token)?;
        }
        let t_start = self.sim.now();
        let mut offers = Vec::with_capacity(tokens.len());
        let ibe0 = self.blocks[0].ibe;
        let last_ibe = self.blocks.last().expect("ns >= 1").ibe;
        for (idx, token) in tokens.iter().enumerate() {
            self.poke_token_inputs(idx, token)?;
            offers.push(self.sim.now());
            self.sim.poke(self.req0, Logic::High);
            self.wait_edges(&[(self.ack0, Logic::High)])?;
            self.sim.poke(self.req0, Logic::Low);
            if idx + 1 == tokens.len() {
                self.sim.run_to_quiescence()?;
            } else {
                // Before presenting token t+1 on the shared raw inputs,
                // every stage must have frozen its copy of token t — the
                // last stage freezes last (its IBE falling edge) — and
                // block 0 must be ready for new data (its IBE rising
                // edge). The edges can land in either order relative to
                // the acknowledge return, so all are watched together;
                // level polling would race with the previous token's
                // states.
                let mut conds = vec![(self.ack0, Logic::Low), (ibe0, Logic::High)];
                if self.blocks.len() > 1 {
                    conds.push((last_ibe, Logic::Low));
                }
                self.wait_edges(&conds)?;
            }
        }
        Ok((offers, self.sim.now().since(t_start)))
    }

    /// Streams tokens with pipelining like [`AcceleratorRtl::run_pipelined`],
    /// but captures **every** token's outputs — not just the final one — by
    /// watching the output-register strobe: the shared register is sampled
    /// at each strobe falling edge (the latch capture instant), one strobe
    /// pulse per token.
    ///
    /// The capture rides on the waveform recorder, so this method clears
    /// any previously recorded trace entries (traced-net selections are
    /// kept). Enable tracing *after* an observed run when exporting VCDs.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::EmptyStream`] for an empty stream,
    /// [`TokenError::ShapeMismatch`] for a malformed token, and
    /// [`TokenError::Oscillation`] if the netlist fails to settle.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not produce exactly one strobe pulse per
    /// token or the register holds unknown bits at a capture — protocol
    /// bugs, like the quiescent-handshake panic of the wait helpers.
    pub fn run_pipelined_observed(
        &mut self,
        tokens: &[Vec<[i8; SUBVECTOR_LEN]>],
    ) -> Result<PipelinedRun, TokenError> {
        // Arm the observers: the strobe plus every output-register bit.
        // Remember which nets this call armed so they can be disarmed
        // afterwards — a long-lived instance must not keep paying the
        // recording cost on runs that no longer need it.
        self.sim.clear_trace();
        let mut armed = Vec::new();
        let mut arm = |sim: &mut Simulator, net: NetId| {
            if !sim.is_traced(net) {
                sim.trace_net(net);
                armed.push(net);
            }
        };
        arm(&mut self.sim, self.out_strobe);
        for bus in &self.out_bus {
            for &net in bus {
                arm(&mut self.sim, net);
            }
        }
        // Snapshot the register state *before* the stream so the trace
        // replay below starts from the correct values (the recorder only
        // logs changes).
        let mut bit_values: Vec<Vec<Logic>> = self
            .out_bus
            .iter()
            .map(|bus| bus.iter().map(|&n| self.sim.value(n)).collect())
            .collect();
        let e0 = self.sim.total_energy();
        let t_start = self.sim.now();
        let streamed = self.stream_tokens(tokens);
        // Disarm before error propagation so a rejected stream leaves the
        // recorder exactly as it was found.
        for net in armed {
            self.sim.untrace_net(net);
        }
        let (offers, makespan) = streamed?;
        let energy = self.sim.total_energy() - e0;

        // Replay the recording: maintain the register image and sample it
        // at each strobe falling edge. Latch outputs settle strictly
        // between the strobe's rising and falling edges (the pulse width
        // covers the latch D→Q delay), so in-order replay is exact.
        let net_slot: std::collections::HashMap<NetId, (usize, usize)> = self
            .out_bus
            .iter()
            .enumerate()
            .flat_map(|(j, bus)| bus.iter().enumerate().map(move |(i, &n)| (n, (j, i))))
            .collect();
        let mut outputs = Vec::with_capacity(tokens.len());
        let mut completions = Vec::with_capacity(tokens.len());
        let mut strobe_level = Logic::Low;
        for entry in self.sim.trace_entries() {
            if entry.net == self.out_strobe {
                let was_high = strobe_level == Logic::High;
                strobe_level = entry.value;
                if was_high && entry.value == Logic::Low {
                    let sample: Vec<i16> = bit_values
                        .iter()
                        .map(|bits| {
                            let mut word = 0u16;
                            for (i, &bit) in bits.iter().enumerate() {
                                match bit {
                                    Logic::High => word |= 1 << i,
                                    Logic::Low => {}
                                    Logic::X => {
                                        panic!("output register holds X at strobe capture")
                                    }
                                }
                            }
                            word as i16
                        })
                        .collect();
                    outputs.push(sample);
                    completions.push(entry.time.since(t_start));
                }
            } else if let Some(&(j, i)) = net_slot.get(&entry.net) {
                bit_values[j][i] = entry.value;
            }
        }
        assert_eq!(
            outputs.len(),
            tokens.len(),
            "expected one output strobe per token"
        );
        let latencies = completions
            .iter()
            .zip(&offers)
            .map(|(&c, &o)| (t_start + c).since(o))
            .collect();
        // The capture is complete; drop the recording so the next run (or
        // a user-enabled waveform) starts clean.
        self.sim.clear_trace();
        Ok(PipelinedRun {
            outputs,
            latencies,
            completions,
            makespan,
            energy,
        })
    }

    /// Runs the simulation until every `(net, value)` pair has been
    /// observed *transitioning to* its value (edges seen in any order).
    ///
    /// Delegates to the kernel's [`Simulator::run_until_edges`], which
    /// checks watched nets only when they actually transition — the
    /// testbench no longer re-reads every watched net after every step.
    /// The runaway budget is the simulator's configured event cap (see
    /// [`Simulator::set_event_cap`]), not a constant of its own.
    ///
    /// # Panics
    ///
    /// Panics if the circuit goes quiescent first — that means the
    /// expected handshake edge can never arrive, i.e. a protocol bug.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] when the event budget is exhausted;
    /// its `events` field reports the events actually consumed.
    fn wait_edges(&mut self, conds: &[(NetId, Logic)]) -> Result<(), OscillationError> {
        match self.sim.run_until_edges(conds)? {
            EdgeWaitOutcome::Seen(_) => Ok(()),
            EdgeWaitOutcome::Quiescent(_) => {
                panic!("circuit went quiescent while waiting for handshake edges {conds:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::units::Volts;

    fn random_token(ns: usize, seed: u64) -> Vec<[i8; SUBVECTOR_LEN]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ns)
            .map(|_| {
                let mut x = [0i8; SUBVECTOR_LEN];
                for v in x.iter_mut() {
                    *v = rng.gen_range(-128i32..=127) as i8;
                }
                x
            })
            .collect()
    }

    fn small_cfg() -> MacroConfig {
        MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg))
    }

    #[test]
    fn single_token_matches_reference() {
        let cfg = small_cfg();
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        for seed in 0..5 {
            let token = random_token(cfg.ns, seed);
            let result = rtl.run_token(&token).unwrap();
            let expected = program.reference_output(&token);
            assert_eq!(result.outputs, expected, "seed {seed}");
            assert!(result.latency > SimTime::ZERO);
            assert!(result.energy.value() > 0.0);
        }
    }

    #[test]
    fn three_stage_accumulation_is_exact() {
        let cfg = MacroConfig::new(1, 3).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        for seed in 10..14 {
            let token = random_token(cfg.ns, seed);
            let result = rtl.run_token(&token).unwrap();
            assert_eq!(result.outputs, program.reference_output(&token));
        }
    }

    #[test]
    fn latency_depends_on_input_data() {
        let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        // All thresholds at 0 → an input equal to 0 everywhere walks every
        // comparator to the last bit (worst case); a large input decides
        // at the MSB (best case).
        let tree = maddpipe_amm::bdt::BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
            .unwrap()
            .quantize(maddpipe_amm::quant::QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[1i8; K]]],
        };
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let fast = rtl.run_token(&[[100i8; SUBVECTOR_LEN]]).unwrap();
        let slow = rtl.run_token(&[[0i8; SUBVECTOR_LEN]]).unwrap();
        assert!(
            slow.latency > fast.latency,
            "boundary input {} must be slower than decisive input {}",
            slow.latency,
            fast.latency
        );
    }

    #[test]
    fn no_timing_violations_across_corners() {
        for (vdd, corner) in [(0.5, Corner::Ssg), (0.8, Corner::Ttg), (1.0, Corner::Ffg)] {
            let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(vdd), corner));
            let program = MacroProgram::random(cfg.ndec, cfg.ns, 3);
            let mut rtl = AcceleratorRtl::build(&cfg, &program);
            let token = random_token(cfg.ns, 1);
            let result = rtl.run_token(&token).unwrap();
            assert_eq!(result.outputs, program.reference_output(&token));
            assert!(
                rtl.simulator().violations().is_empty(),
                "{vdd} V {corner}: {:?}",
                rtl.simulator().violations()
            );
        }
    }

    #[test]
    fn pipelining_overlaps_stages() {
        let cfg = MacroConfig::new(1, 4).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 11);
        // Sequential: three tokens, each fully drained.
        let mut seq = AcceleratorRtl::build(&cfg, &program);
        let tokens: Vec<Vec<[i8; SUBVECTOR_LEN]>> =
            (0..3).map(|s| random_token(cfg.ns, 20 + s)).collect();
        let mut t_seq = SimTime::ZERO;
        for t in &tokens {
            t_seq += seq.run_token(t).unwrap().latency;
        }
        // Pipelined: same tokens with overlap.
        let mut pip = AcceleratorRtl::build(&cfg, &program);
        let (final_out, makespan) = pip.run_pipelined(&tokens).unwrap();
        assert!(
            makespan < t_seq,
            "pipelined makespan {makespan} must beat sequential {t_seq}"
        );
        // The last token's outputs are read after the full drain.
        assert_eq!(final_out, program.reference_output(&tokens[2]));
    }

    #[test]
    fn pipelined_observed_reports_every_token() {
        let cfg = MacroConfig::new(2, 3).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 23);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let tokens: Vec<Vec<[i8; SUBVECTOR_LEN]>> =
            (0..5).map(|s| random_token(cfg.ns, 40 + s)).collect();
        let run = rtl.run_pipelined_observed(&tokens).unwrap();
        assert_eq!(run.outputs.len(), tokens.len());
        for (t, token) in tokens.iter().enumerate() {
            assert_eq!(run.outputs[t], program.reference_output(token), "token {t}");
        }
        // Completions are strictly ordered and latencies are positive.
        for w in run.completions.windows(2) {
            assert!(w[0] < w[1], "completions must be strictly increasing");
        }
        assert_eq!(run.latencies.len(), tokens.len());
        for (t, &l) in run.latencies.iter().enumerate() {
            assert!(l > SimTime::ZERO, "token {t} latency");
        }
        assert!(run.makespan >= *run.completions.last().unwrap());
        assert!(run.energy.value() > 0.0);
        // A second observed stream on the same instance starts clean.
        let again = rtl.run_pipelined_observed(&tokens[..2]).unwrap();
        assert_eq!(again.outputs[0], program.reference_output(&tokens[0]));
        assert_eq!(again.outputs[1], program.reference_output(&tokens[1]));
        // The observers are disarmed afterwards — later runs must not keep
        // paying the recording cost.
        let strobe = rtl.output_strobe();
        assert!(!rtl.simulator().is_traced(strobe));
        assert!(rtl.simulator().trace_entries().is_empty());
        // A net the caller traced *before* an observed run stays traced.
        rtl.simulator_mut().trace_net(strobe);
        let _ = rtl.run_pipelined_observed(&tokens[..2]).unwrap();
        assert!(rtl.simulator().is_traced(strobe));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error_not_a_panic() {
        let cfg = small_cfg();
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 1);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let short = random_token(cfg.ns - 1, 3);
        assert_eq!(
            rtl.run_token(&short),
            Err(TokenError::ShapeMismatch {
                token: 0,
                expected: cfg.ns,
                got: cfg.ns - 1,
            })
        );
        // Streams report the offending token's index and reject the whole
        // stream before any stimulus is applied.
        let good = random_token(cfg.ns, 4);
        let err = rtl
            .run_pipelined(&[good.clone(), short.clone()])
            .unwrap_err();
        assert_eq!(
            err,
            TokenError::ShapeMismatch {
                token: 1,
                expected: cfg.ns,
                got: cfg.ns - 1,
            }
        );
        assert_eq!(rtl.run_pipelined(&[]).unwrap_err(), TokenError::EmptyStream);
        // The instance is still usable after a rejected stream.
        let ok = rtl.run_token(&good).unwrap();
        assert_eq!(ok.outputs, program.reference_output(&good));
    }

    #[test]
    fn energy_fractions_are_decoder_dominated() {
        let cfg = MacroConfig::new(4, 2).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 9);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        rtl.simulator_mut().reset_energy();
        for seed in 0..4 {
            let token = random_token(cfg.ns, 30 + seed);
            let _ = rtl.run_token(&token).unwrap();
        }
        let report = rtl.simulator().energy_report();
        let dec = report.fraction("decoder");
        let enc = report.fraction("encoder");
        assert!(
            dec > 0.5 && dec > enc,
            "decoder must dominate: decoder {dec:.2}, encoder {enc:.2}\n{report}"
        );
    }

    #[test]
    fn program_from_trained_operator_runs() {
        use maddpipe_amm::linalg::Mat;
        use maddpipe_amm::maddness::{MaddnessMatmul, MaddnessParams};
        // 2 subspaces × 9 dims = 18 input features, 2 outputs.
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f32>> = (0..160)
            .map(|_| (0..18).map(|_| rng.gen_range(-4.0..4.0)).collect())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Mat::from_rows(&refs);
        let mut w = Mat::zeros(18, 2);
        for r in 0..18 {
            for c in 0..2 {
                w[(r, c)] = ((r + c) % 5) as f32 / 5.0 - 0.4;
            }
        }
        let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).unwrap();
        let program = MacroProgram::from_maddness(&op);
        assert_eq!(program.ns(), 2);
        assert_eq!(program.ndec(), 2);
        let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        // Run one calibration row through the macro and compare with the
        // operator's own integer decode.
        let row = x.row(0);
        let scale = op.input_scale();
        let mut token = vec![[0i8; SUBVECTOR_LEN]; 2];
        for (s, chunk) in row.chunks(9).enumerate() {
            for (e, &v) in chunk.iter().enumerate() {
                token[s][e] = scale.quantize(v);
            }
        }
        let result = rtl.run_token(&token).unwrap();
        let enc = op.encode_quantized(&Mat::from_rows(&[row]));
        let expected = op.decode_i16_wrapping(&enc);
        assert_eq!(result.outputs, expected[0]);
    }
}
