//! The compute block: input buffer, encoder, `Ndec` decoders, block-level
//! completion, and the four-phase self-synchronous controller (Fig. 2).
//!
//! The controller is the heart of the "self-synchronous pipeline": no
//! global clock exists anywhere in the macro. A block's life cycle is
//!
//! ```text
//! Idle ──req_in↑──▶ Eval ──rcd↑──▶ Hold ──req_in↓ ∧ ack_down↑──▶ Return ──rcd↓──▶ Idle
//!  (precharged)   (CALCE high)   (REQ/ACK out)   (precharge again)
//! ```
//!
//! The forward request to the next stage is issued only after this block's
//! own read-completion tree has reported and the latch-enable pulse has
//! closed — timing is derived from the data path itself, which is what
//! makes the pipeline PVT-invariant.

use crate::calib::Calibration;
use crate::config::SUBVECTOR_LEN;
use crate::decoder::{build_decoder, DecoderPorts};
use crate::encoder::{build_encoder, EncoderPorts};
use maddpipe_amm::bdt::QuantizedBdt;
use maddpipe_sim::cell::{Cell, EvalCtx};
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_sim::logic::Logic;
use maddpipe_sim::time::SimTime;
use maddpipe_sram::model::SramModel;
use maddpipe_sram::rcd::build_completion_tree;
use maddpipe_tech::process::DriveKind;

/// Controller state (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlState {
    Idle,
    Eval,
    Hold,
    Return,
}

/// The four-phase handshake controller as a behavioural cell.
///
/// * Inputs: 0 = `req_in`, 1 = `ack_down`, 2 = `rcd` (block completion).
/// * Outputs: 0 = `ack_up`, 1 = `req_out`, 2 = `pche`, 3 = `calce`,
///   4 = `ibe` (input-buffer enable; transparent while idle).
#[derive(Debug)]
pub struct HandshakeCtrl {
    state: CtrlState,
    upstream_done: bool,
    downstream_done: bool,
    /// Sequencing delay of one control transition.
    t_seq: SimTime,
    /// Completion-to-request delay: covers the GE pulse (delay + width) so
    /// the forward request is issued only after the CSA latches closed.
    t_req: SimTime,
    /// CALCE-low to PCHE-high gap: covers the DLC tree's cascade precharge
    /// so the wordlines are guaranteed low before the bitlines precharge.
    t_pchg_gap: SimTime,
}

impl HandshakeCtrl {
    /// Creates a controller with sampled timing.
    pub fn new(t_seq: SimTime, t_req: SimTime, t_pchg_gap: SimTime) -> HandshakeCtrl {
        HandshakeCtrl {
            state: CtrlState::Idle,
            upstream_done: false,
            downstream_done: false,
            t_seq,
            t_req,
            t_pchg_gap,
        }
    }

    fn start_token(&mut self, ctx: &mut EvalCtx<'_>) {
        // Freeze the input buffer, release precharge, then fire the
        // encoder.
        ctx.drive(4, Logic::Low, self.t_seq);
        ctx.drive(2, Logic::Low, self.t_seq);
        let t2 = self.t_seq + self.t_seq;
        ctx.drive(3, Logic::High, t2);
        self.state = CtrlState::Eval;
    }
}

impl Cell for HandshakeCtrl {
    fn num_inputs(&self) -> usize {
        3
    }

    fn num_outputs(&self) -> usize {
        5
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        if ctx.trigger().is_none() {
            // Power-up: precharged and idle.
            ctx.drive(0, Logic::Low, SimTime::ZERO);
            ctx.drive(1, Logic::Low, SimTime::ZERO);
            ctx.drive(2, Logic::High, SimTime::ZERO);
            ctx.drive(3, Logic::Low, SimTime::ZERO);
            ctx.drive(4, Logic::High, SimTime::ZERO);
            self.state = CtrlState::Idle;
            return;
        }
        // Edge checks rather than a single-trigger match: the kernel
        // batches same-timestamp events into one delta cycle, so e.g. the
        // upstream request withdrawal and the downstream acknowledge can
        // land in one evaluation and both must be honoured.
        match self.state {
            CtrlState::Idle => {
                if ctx.is_edge(0, Logic::High) {
                    self.start_token(ctx);
                }
            }
            CtrlState::Eval => {
                if ctx.is_edge(2, Logic::High) {
                    // Data latched after the GE pulse: hand it forward and
                    // acknowledge upstream.
                    ctx.drive(1, Logic::High, self.t_req);
                    ctx.drive(0, Logic::High, self.t_req);
                    self.upstream_done = false;
                    self.downstream_done = false;
                    self.state = CtrlState::Hold;
                }
            }
            CtrlState::Hold => {
                if ctx.is_edge(0, Logic::Low) {
                    ctx.drive(0, Logic::Low, self.t_seq);
                    self.upstream_done = true;
                }
                if ctx.is_edge(1, Logic::High) {
                    ctx.drive(1, Logic::Low, self.t_seq);
                    self.downstream_done = true;
                }
                if self.upstream_done && self.downstream_done {
                    // Return to zero: stop the encoder, then precharge
                    // after the DLC cascade has released the wordlines.
                    ctx.drive(3, Logic::Low, self.t_seq);
                    ctx.drive(2, Logic::High, self.t_seq + self.t_pchg_gap);
                    self.state = CtrlState::Return;
                }
            }
            CtrlState::Return => {
                if ctx.is_edge(2, Logic::Low) {
                    ctx.drive(4, Logic::High, self.t_seq);
                    self.state = CtrlState::Idle;
                    if ctx.input(0) == Logic::High {
                        // Upstream already queued the next token.
                        self.start_token(ctx);
                    }
                }
            }
        }
    }
}

/// Nets exposed by one built compute block.
#[derive(Debug, Clone)]
pub struct BlockPorts {
    /// Buffered (post-input-latch) subvector element nets, for debugging.
    pub x_buffered: Vec<Vec<NetId>>,
    /// Acknowledge to the upstream stage.
    pub ack_up: NetId,
    /// Request to the downstream stage.
    pub req_out: NetId,
    /// Block-level completion.
    pub rcd: NetId,
    /// Input-buffer enable (high = block idle and accepting data).
    pub ibe: NetId,
    /// The encoder's nets.
    pub encoder: EncoderPorts,
    /// Per-decoder ports (carry-save outputs feed the next stage).
    pub decoders: Vec<DecoderPorts>,
}

/// Builds one compute block.
///
/// `x_elems` are the raw (pre-buffer) offset-binary element buses;
/// `s_prev`/`c_prev` are the upstream carry-save buses per decoder;
/// `ack_up`/`req_out` must be pre-created nets (they participate in the
/// neighbour's wiring).
///
/// # Panics
///
/// Panics on inconsistent bus shapes.
#[allow(clippy::too_many_arguments)]
pub fn build_block(
    b: &mut CircuitBuilder,
    name: &str,
    tree: &QuantizedBdt,
    luts: &[SramModel],
    x_elems: &[Vec<NetId>],
    s_prev: &[Vec<NetId>],
    c_prev: &[Vec<NetId>],
    req_in: NetId,
    ack_down: NetId,
    ack_up: NetId,
    req_out: NetId,
    cal: &Calibration,
    tie_low: NetId,
) -> BlockPorts {
    let ndec = luts.len();
    assert!(ndec > 0, "a block needs at least one decoder");
    assert_eq!(s_prev.len(), ndec, "one s_prev bus per decoder");
    assert_eq!(c_prev.len(), ndec, "one c_prev bus per decoder");
    assert_eq!(
        x_elems.len(),
        SUBVECTOR_LEN,
        "the input buffer holds {SUBVECTOR_LEN} elements"
    );

    let prev_domain = b.set_domain("ctrl");
    let pche = b.net(format!("{name}.pche"));
    let calce = b.net(format!("{name}.calce"));
    let ibe = b.net(format!("{name}.ibe"));

    // Input buffer: one latch per bit, transparent while idle.
    let x_buffered: Vec<Vec<NetId>> = x_elems
        .iter()
        .enumerate()
        .map(|(e, bits)| {
            bits.iter()
                .enumerate()
                .map(|(i, &bit)| b.latch(&format!("{name}.ib{e}_{i}"), bit, ibe))
                .collect()
        })
        .collect();
    b.restore_domain(prev_domain);

    let encoder = build_encoder(b, &format!("{name}.enc"), tree, &x_buffered, calce, cal);

    let decoders: Vec<DecoderPorts> = (0..ndec)
        .map(|j| {
            build_decoder(
                b,
                &format!("{name}.dec{j}"),
                &encoder.rwl,
                pche,
                &s_prev[j],
                &c_prev[j],
                &luts[j],
                cal,
                tie_low,
            )
        })
        .collect();

    let prev_domain = b.set_domain("ctrl");
    let rcd_inputs: Vec<NetId> = decoders.iter().map(|d| d.rcd_lut).collect();
    let rcd = build_completion_tree(b, &format!("{name}.rcd"), &rcd_inputs);

    let quarter = cal.ctrl_overhead * 0.25;
    let t_seq = b.library_mut().delay(quarter, DriveKind::Complementary);
    let t_req = b.library_mut().delay(
        cal.ge_pulse_delay + cal.ge_pulse_width,
        DriveKind::Complementary,
    );
    let t_gap = b
        .library_mut()
        .delay(cal.dlc_precharge * 6.0, DriveKind::PullUp);
    b.add_cell(
        format!("{name}.ctrl"),
        Box::new(HandshakeCtrl::new(t_seq, t_req, t_gap)),
        &[req_in, ack_down, rcd],
        &[ack_up, req_out, pche, calce, ibe],
    );
    b.restore_domain(prev_domain);

    BlockPorts {
        x_buffered,
        ack_up,
        req_out,
        rcd,
        ibe,
        encoder,
        decoders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(
        cell: &mut HandshakeCtrl,
        inputs: [Logic; 3],
        triggers: &[usize],
    ) -> Vec<maddpipe_sim::Drive> {
        let mut drives = Vec::new();
        let mut violations = Vec::new();
        let mut ctx = EvalCtx::for_test(
            SimTime::from_picos(1000.0),
            &inputs,
            triggers,
            &mut drives,
            &mut violations,
            "ctrl",
        );
        cell.eval(&mut ctx);
        drives
    }

    fn fresh() -> HandshakeCtrl {
        HandshakeCtrl::new(
            SimTime::from_picos(80.0),
            SimTime::from_picos(400.0),
            SimTime::from_picos(700.0),
        )
    }

    #[test]
    fn powers_up_precharged_and_idle() {
        let mut c = fresh();
        let drives = eval(&mut c, [Logic::X; 3], &[]);
        // pche high, calce low, ack low, req low, ibe high.
        let find = |pin: usize| drives.iter().find(|d| d.out_pin == pin).unwrap().value;
        assert_eq!(find(2), Logic::High, "pche");
        assert_eq!(find(3), Logic::Low, "calce");
        assert_eq!(find(0), Logic::Low, "ack");
        assert_eq!(find(1), Logic::Low, "req_out");
        assert_eq!(find(4), Logic::High, "ibe");
    }

    #[test]
    fn request_starts_evaluation() {
        let mut c = fresh();
        let _ = eval(&mut c, [Logic::X; 3], &[]);
        let drives = eval(&mut c, [Logic::High, Logic::Low, Logic::Low], &[0]);
        // ibe low, pche low, calce high — in that causal order.
        let ibe = drives.iter().find(|d| d.out_pin == 4).unwrap();
        let pche = drives.iter().find(|d| d.out_pin == 2).unwrap();
        let calce = drives.iter().find(|d| d.out_pin == 3).unwrap();
        assert_eq!(ibe.value, Logic::Low);
        assert_eq!(pche.value, Logic::Low);
        assert_eq!(calce.value, Logic::High);
        assert!(
            calce.delay > pche.delay,
            "CALCE must trail precharge release"
        );
    }

    #[test]
    fn completion_raises_req_and_ack_together() {
        let mut c = fresh();
        let _ = eval(&mut c, [Logic::X; 3], &[]);
        let _ = eval(&mut c, [Logic::High, Logic::Low, Logic::Low], &[0]);
        let drives = eval(&mut c, [Logic::High, Logic::Low, Logic::High], &[2]);
        let req = drives.iter().find(|d| d.out_pin == 1).unwrap();
        let ack = drives.iter().find(|d| d.out_pin == 0).unwrap();
        assert_eq!(req.value, Logic::High);
        assert_eq!(ack.value, Logic::High);
        assert_eq!(req.delay, ack.delay);
        assert_eq!(req.delay, SimTime::from_picos(400.0), "covers GE pulse");
    }

    #[test]
    fn return_to_zero_requires_both_neighbours() {
        let mut c = fresh();
        let _ = eval(&mut c, [Logic::X; 3], &[]);
        let _ = eval(&mut c, [Logic::High, Logic::Low, Logic::Low], &[0]);
        let _ = eval(&mut c, [Logic::High, Logic::Low, Logic::High], &[2]);
        // Upstream drops first — no precharge yet.
        let d1 = eval(&mut c, [Logic::Low, Logic::Low, Logic::High], &[0]);
        assert!(
            !d1.iter().any(|d| d.out_pin == 2 && d.value == Logic::High),
            "must not precharge before downstream acks"
        );
        // Downstream acks — now the return sequence fires.
        let d2 = eval(&mut c, [Logic::Low, Logic::High, Logic::High], &[1]);
        let pche = d2.iter().find(|d| d.out_pin == 2).unwrap();
        let calce = d2.iter().find(|d| d.out_pin == 3).unwrap();
        assert_eq!(pche.value, Logic::High);
        assert_eq!(calce.value, Logic::Low);
        assert!(
            pche.delay > calce.delay,
            "precharge must wait for the DLC cascade gap"
        );
    }

    #[test]
    fn queued_request_restarts_immediately_after_return() {
        let mut c = fresh();
        let _ = eval(&mut c, [Logic::X; 3], &[]);
        let _ = eval(&mut c, [Logic::High, Logic::Low, Logic::Low], &[0]);
        let _ = eval(&mut c, [Logic::High, Logic::Low, Logic::High], &[2]);
        let _ = eval(&mut c, [Logic::Low, Logic::Low, Logic::High], &[0]);
        let _ = eval(&mut c, [Logic::Low, Logic::High, Logic::High], &[1]);
        // Next token already waiting (req high) when RCD falls:
        let drives = eval(&mut c, [Logic::High, Logic::Low, Logic::Low], &[2]);
        assert!(
            drives
                .iter()
                .any(|d| d.out_pin == 3 && d.value == Logic::High),
            "CALCE must rise again for the queued token"
        );
    }
}
