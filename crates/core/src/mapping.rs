//! Mapping CNN layers onto the macro (paper Fig. 3).
//!
//! A 3×3 convolution with `C_in` input channels and `C_out` kernels maps
//! directly: each compute block consumes the 9-element patch of one input
//! channel (`NS` channels in parallel), each decoder accumulates for one
//! kernel (`Ndec` kernels in parallel), and every output pixel is one
//! token through the pipeline. Layers larger than the macro are tiled.

use crate::config::{MacroConfig, SUBVECTOR_LEN};
use crate::model::MacroModel;
use core::fmt;
use maddpipe_tech::units::Seconds;

/// Geometry of one convolutional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (kernels).
    pub out_channels: usize,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
}

impl ConvShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_channels: usize, out_channels: usize, out_h: usize, out_w: usize) -> ConvShape {
        assert!(
            in_channels > 0 && out_channels > 0 && out_h > 0 && out_w > 0,
            "all convolution dimensions must be positive"
        );
        ConvShape {
            in_channels,
            out_channels,
            out_h,
            out_w,
        }
    }

    /// Output pixels per image.
    pub fn pixels(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Splits the layer into per-macro sub-layers along the output-channel
    /// axis: contiguous groups of at most `max_out` kernels, all other
    /// dimensions unchanged. The last group carries the remainder when
    /// `out_channels` is not a multiple of `max_out` — exactly how the
    /// `tiles_out` tiling of [`ConvMapping`] assigns kernels to macros, and
    /// the geometry behind the runtime's sharded serving plan.
    ///
    /// # Panics
    ///
    /// Panics if `max_out` is zero.
    pub fn split_out_channels(&self, max_out: usize) -> Vec<ConvShape> {
        assert!(max_out > 0, "a shard must own at least one output channel");
        (0..self.out_channels)
            .step_by(max_out)
            .map(|start| ConvShape {
                in_channels: self.in_channels,
                out_channels: max_out.min(self.out_channels - start),
                out_h: self.out_h,
                out_w: self.out_w,
            })
            .collect()
    }

    /// Exact multiply–accumulate operation count of the layer (3×3
    /// kernels), counted as 2 ops per MAC.
    pub fn ops(&self) -> usize {
        2 * SUBVECTOR_LEN * self.in_channels * self.out_channels * self.pixels()
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv3x3 {}→{} @ {}×{}",
            self.in_channels, self.out_channels, self.out_h, self.out_w
        )
    }
}

/// How one layer tiles onto one macro configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvMapping {
    /// Channel tiles: `ceil(C_in / NS)`.
    pub tiles_in: usize,
    /// Kernel tiles: `ceil(C_out / Ndec)`.
    pub tiles_out: usize,
    /// Tokens through the macro per image (`pixels × tiles`).
    pub tokens: usize,
    /// Fraction of the macro's lookups that do useful work (1.0 when the
    /// layer dimensions divide the macro dimensions exactly).
    pub utilization: f64,
}

impl ConvMapping {
    /// Computes the tiling of `shape` on `cfg`.
    pub fn new(shape: ConvShape, cfg: &MacroConfig) -> ConvMapping {
        let tiles_in = shape.in_channels.div_ceil(cfg.ns);
        let tiles_out = shape.out_channels.div_ceil(cfg.ndec);
        let tokens = shape.pixels() * tiles_in * tiles_out;
        let useful = shape.ops() as f64;
        let issued = (tokens * cfg.ops_per_token()) as f64;
        ConvMapping {
            tiles_in,
            tiles_out,
            tokens,
            utilization: useful / issued,
        }
    }

    /// The sharded tiling of `shape` on `cfg`: one `(sub-layer, mapping)`
    /// pair per output-channel tile, each sub-layer narrow enough
    /// (`out_channels ≤ cfg.ndec`, so `tiles_out == 1`) to be served by its
    /// own macro instance. Pixel tokens fan out to every shard in parallel
    /// instead of being serialised through `tiles_out` passes on a single
    /// macro — the organisation the runtime's `ShardedBackend` executes.
    pub fn sharded(shape: ConvShape, cfg: &MacroConfig) -> Vec<(ConvShape, ConvMapping)> {
        shape
            .split_out_channels(cfg.ndec)
            .into_iter()
            .map(|sub| (sub, ConvMapping::new(sub, cfg)))
            .collect()
    }

    /// Wall-clock time for one image at the model's average beat.
    pub fn image_latency(&self, model: &MacroModel) -> Seconds {
        let best = model.block_latency_best().total();
        let worst = model.block_latency_worst().total();
        let beat = (best + worst) * 0.5;
        // Pipelined: one beat per token plus the fill of NS stages.
        beat * (self.tokens as f64 + model.config().ns as f64)
    }

    /// Effective useful throughput in TOPS for this layer (utilization-
    /// corrected).
    pub fn effective_tops(&self, model: &MacroModel) -> f64 {
        let report = model.evaluate();
        report.tops_avg() * self.utilization
    }
}

impl fmt::Display for ConvMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}×{} tiles, {} tokens/image, {:.0}% utilised",
            self.tiles_in,
            self.tiles_out,
            self.tokens,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_has_full_utilization() {
        let cfg = MacroConfig::new(16, 32);
        let shape = ConvShape::new(32, 16, 8, 8);
        let m = ConvMapping::new(shape, &cfg);
        assert_eq!(m.tiles_in, 1);
        assert_eq!(m.tiles_out, 1);
        assert_eq!(m.tokens, 64);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_layers_tile() {
        let cfg = MacroConfig::new(16, 32);
        let shape = ConvShape::new(128, 64, 16, 16);
        let m = ConvMapping::new(shape, &cfg);
        assert_eq!(m.tiles_in, 4);
        assert_eq!(m.tiles_out, 4);
        assert_eq!(m.tokens, 256 * 16);
        assert!(
            (m.utilization - 1.0).abs() < 1e-12,
            "exact multiples stay full"
        );
    }

    #[test]
    fn ragged_layers_lose_utilization() {
        let cfg = MacroConfig::new(16, 32);
        let shape = ConvShape::new(33, 17, 4, 4); // 1 past each boundary
        let m = ConvMapping::new(shape, &cfg);
        assert_eq!(m.tiles_in, 2);
        assert_eq!(m.tiles_out, 2);
        assert!(m.utilization < 0.5, "ragged tiling wastes lookups");
        // Ops accounting stays conserved: useful = issued × utilization.
        let issued = m.tokens * cfg.ops_per_token();
        let useful = (issued as f64 * m.utilization).round() as usize;
        assert_eq!(useful, shape.ops());
    }

    #[test]
    fn image_latency_scales_with_tokens() {
        let cfg = MacroConfig::new(16, 32);
        let model = MacroModel::new(cfg.clone());
        let small = ConvMapping::new(ConvShape::new(32, 16, 4, 4), &cfg);
        let large = ConvMapping::new(ConvShape::new(32, 16, 16, 16), &cfg);
        assert!(large.image_latency(&model) > small.image_latency(&model));
    }

    #[test]
    fn effective_tops_never_exceeds_peak() {
        let cfg = MacroConfig::new(16, 32);
        let model = MacroModel::new(cfg.clone());
        let peak = model.evaluate().tops_avg();
        let m = ConvMapping::new(ConvShape::new(33, 17, 4, 4), &cfg);
        assert!(m.effective_tops(&model) <= peak);
    }

    #[test]
    fn ops_match_hand_count() {
        // conv3x3, 2→3 channels, 5×5 output: 2·9·2·3·25 = 2700 ops.
        let shape = ConvShape::new(2, 3, 5, 5);
        assert_eq!(shape.ops(), 2 * 9 * 2 * 3 * 25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = ConvShape::new(0, 1, 1, 1);
    }

    #[test]
    fn split_out_channels_covers_the_layer() {
        let shape = ConvShape::new(32, 37, 8, 8);
        let subs = shape.split_out_channels(16);
        assert_eq!(
            subs.iter().map(|s| s.out_channels).collect::<Vec<_>>(),
            vec![16, 16, 5],
            "last shard carries the remainder"
        );
        for sub in &subs {
            assert_eq!(sub.in_channels, 32);
            assert_eq!((sub.out_h, sub.out_w), (8, 8));
        }
        // A split wider than the layer degenerates to a single shard.
        assert_eq!(shape.split_out_channels(64), vec![shape]);
    }

    #[test]
    fn sharded_mapping_matches_single_macro_tiling() {
        let cfg = MacroConfig::new(16, 32);
        let shape = ConvShape::new(32, 37, 8, 8);
        let single = ConvMapping::new(shape, &cfg);
        let shards = ConvMapping::sharded(shape, &cfg);
        assert_eq!(shards.len(), single.tiles_out, "one shard per kernel tile");
        for (sub, m) in &shards {
            assert_eq!(m.tiles_out, 1, "each shard fits one macro");
            assert_eq!(m.tiles_in, single.tiles_in);
            assert_eq!(m.tokens, shape.pixels() * m.tiles_in);
            assert!(sub.out_channels <= cfg.ndec);
        }
        // Ops are conserved: the shard sub-layers partition the kernels.
        let total: usize = shards.iter().map(|(s, _)| s.out_channels).sum();
        assert_eq!(total, shape.out_channels);
    }

    #[test]
    #[should_panic(expected = "at least one output channel")]
    fn zero_width_shards_rejected() {
        let _ = ConvShape::new(1, 4, 1, 1).split_out_channels(0);
    }
}
