//! The analytic PPA model of the proposed macro.
//!
//! Fast closed-form latency / energy / area evaluation used for the
//! paper-scale sweeps (Fig. 6, Fig. 7, Table I, Table II). The model is
//! *structural*: every term corresponds to a circuit component of Fig. 2,
//! with nominal constants from [`Calibration`] scaled to the operating
//! point by the technology model. Its agreement with the event-driven RTL
//! netlist is enforced by integration tests (`tests/model_vs_rtl.rs`).
//!
//! Timing convention: the pipeline beat is the forward latency of one
//! compute block (encoder walk + LUT read + completion + latch strobe +
//! control), matching the paper's frequency arithmetic — e.g. the 0.5 V
//! worst case of 32.1 ns ↔ 31.2 MHz in Table II. Handshake return and
//! precharge overlap the neighbour's evaluation.

use crate::calib::Calibration;
use crate::config::{MacroConfig, LEVELS};
use core::fmt;
use maddpipe_sram::rcd::completion_tree_depth;
use maddpipe_tech::process::DriveKind;
use maddpipe_tech::units::{Area, Hertz, Joules, Seconds, Watts};

/// Per-block latency decomposition (Fig. 7 B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// BDT encoder (4 DLC levels).
    pub encoder: Seconds,
    /// Decoder read path: RWL, bitline, CSA, RCD trees, GE pulse, latch.
    pub decoder: Seconds,
    /// Handshake controller overhead.
    pub ctrl: Seconds,
}

impl LatencyBreakdown {
    /// Total block latency.
    pub fn total(&self) -> Seconds {
        self.encoder + self.decoder + self.ctrl
    }

    /// Encoder's share of the block latency (0–1).
    pub fn encoder_fraction(&self) -> f64 {
        self.encoder / self.total()
    }
}

/// Per-block-token energy decomposition (Fig. 7 A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// All `Ndec` decoders: SRAM read cycles, CSA, latches, RCD, RWL wire.
    pub decoder: Joules,
    /// Encoder classification (4 active DLCs).
    pub encoder: Joules,
    /// Control, handshake, input buffer.
    pub ctrl: Joules,
}

impl EnergyBreakdown {
    /// Total energy of one token traversing one block.
    pub fn total(&self) -> Joules {
        self.decoder + self.encoder + self.ctrl
    }

    /// Decoder share (0–1) — the paper reports > 94 %.
    pub fn decoder_fraction(&self) -> f64 {
        self.decoder / self.total()
    }
}

/// Macro area decomposition (Fig. 7 C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// All decoders (`ndec · ns`).
    pub decoder: Area,
    /// All encoders (`ns`).
    pub encoder: Area,
    /// Per-block control and buffers (`ns`).
    pub ctrl: Area,
    /// Global: write drivers, per-chain RCAs, output registers.
    pub global: Area,
}

impl AreaBreakdown {
    /// Total macro area.
    pub fn total(&self) -> Area {
        self.decoder + self.encoder + self.ctrl + self.global
    }

    /// Decoder share (0–1) — the paper reports 50–80 % depending on Ndec.
    pub fn decoder_fraction(&self) -> f64 {
        self.decoder / self.total()
    }
}

/// Complete PPA evaluation of one configuration at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PpaReport {
    /// The evaluated configuration.
    pub ndec: usize,
    /// The evaluated configuration.
    pub ns: usize,
    /// Best-case block latency (all DLC levels decide at the MSB).
    pub latency_best: LatencyBreakdown,
    /// Worst-case block latency (all DLC levels ripple through 8 bits).
    pub latency_worst: LatencyBreakdown,
    /// Pipeline beat frequency range (worst-case latency → min frequency).
    pub freq_min: Hertz,
    /// Best-case beat frequency.
    pub freq_max: Hertz,
    /// Throughput at worst-case latency.
    pub tops_min: f64,
    /// Throughput at best-case latency.
    pub tops_max: f64,
    /// Energy of one token traversing one block.
    pub block_energy: EnergyBreakdown,
    /// Energy per equivalent operation.
    pub energy_per_op: Joules,
    /// Energy efficiency in TOPS/W.
    pub tops_per_watt: f64,
    /// Macro area.
    pub area: AreaBreakdown,
    /// Area efficiency in TOPS/mm², using the best/worst average
    /// throughput (the paper's black-dashed-line convention in Fig. 6).
    pub tops_per_mm2: f64,
    /// Static leakage power of the whole macro (reported separately; the
    /// paper's efficiency numbers are dynamic-dominated).
    pub leakage: Watts,
}

impl PpaReport {
    /// Average of best- and worst-case throughput (paper's Fig. 6 dashed
    /// line).
    pub fn tops_avg(&self) -> f64 {
        0.5 * (self.tops_min + self.tops_max)
    }
}

impl fmt::Display for PpaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ndec={} NS={}", self.ndec, self.ns)?;
        writeln!(
            f,
            "  latency  best {} / worst {}  ({:.1}–{:.1} MHz)",
            self.latency_best.total(),
            self.latency_worst.total(),
            self.freq_min.as_mega_hertz(),
            self.freq_max.as_mega_hertz()
        )?;
        writeln!(
            f,
            "  throughput {:.3}–{:.3} TOPS (avg {:.3})",
            self.tops_min,
            self.tops_max,
            self.tops_avg()
        )?;
        writeln!(
            f,
            "  energy {:.3} fJ/op → {:.1} TOPS/W",
            self.energy_per_op.as_femtos(),
            self.tops_per_watt
        )?;
        write!(
            f,
            "  area {:.3} mm² → {:.2} TOPS/mm²",
            self.area.total().as_mm2(),
            self.tops_per_mm2
        )
    }
}

/// The analytic model, bound to one [`MacroConfig`].
#[derive(Debug, Clone)]
pub struct MacroModel {
    cfg: MacroConfig,
}

impl MacroModel {
    /// Creates a model for the configuration.
    pub fn new(cfg: MacroConfig) -> MacroModel {
        MacroModel { cfg }
    }

    /// The bound configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.cfg
    }

    fn cal(&self) -> &Calibration {
        &self.cfg.calibration
    }

    fn scale(&self, kind: DriveKind) -> f64 {
        let tech = maddpipe_tech::Technology::n22();
        tech.delay_scale(self.cfg.op, kind)
    }

    /// Encoder latency for the given per-level DLC ripple depths (number
    /// of comparator bit stages traversed, 1–8 each).
    ///
    /// # Panics
    ///
    /// Panics if a ripple depth is outside `1..=8`.
    pub fn encoder_latency(&self, ripples: &[usize]) -> Seconds {
        assert_eq!(ripples.len(), LEVELS, "one ripple depth per tree level");
        let c = self.cal();
        let s = self.scale(DriveKind::PullDown);
        let mut t = Seconds::ZERO;
        for &r in ripples {
            assert!((1..=8).contains(&r), "ripple depth {r} out of 1..=8");
            t += (c.dlc_base + c.dlc_per_bit * r as f64) * s;
        }
        t
    }

    /// Decoder-path latency (RWL driver + WL wire across `ndec` decoders +
    /// bitline discharge + CSA + RCD trees + GE pulse + latch).
    pub fn decoder_latency(&self) -> Seconds {
        let c = self.cal();
        let s_n = self.scale(DriveKind::PullDown);
        let s_c = self.scale(DriveKind::Complementary);
        let rcd_levels = completion_tree_depth(8) + completion_tree_depth(self.cfg.ndec);
        let gates = c.rwl_driver
            + c.rwl_wire_per_decoder * self.cfg.ndec as f64
            + c.fa_delay
            + c.rcd_col
            + c.rcd_tree_level * rcd_levels as f64
            + c.ge_pulse_delay
            + c.latch_dq;
        gates * s_c + c.bl_discharge * s_n
    }

    /// Handshake-control overhead.
    pub fn ctrl_latency(&self) -> Seconds {
        self.cal().ctrl_overhead * self.scale(DriveKind::Complementary)
    }

    /// Block latency for explicit DLC ripple depths.
    pub fn block_latency(&self, ripples: &[usize]) -> LatencyBreakdown {
        LatencyBreakdown {
            encoder: self.encoder_latency(ripples),
            decoder: self.decoder_latency(),
            ctrl: self.ctrl_latency(),
        }
    }

    /// Best-case block latency (every level decides at the first bit).
    pub fn block_latency_best(&self) -> LatencyBreakdown {
        self.block_latency(&[1; LEVELS])
    }

    /// Worst-case block latency (every level ripples through all 8 bits).
    pub fn block_latency_worst(&self) -> LatencyBreakdown {
        self.block_latency(&[8; LEVELS])
    }

    /// Energy of one token traversing one block.
    pub fn block_energy(&self) -> EnergyBreakdown {
        let c = self.cal();
        let tech = maddpipe_tech::Technology::n22();
        let e = |cap| tech.switching_energy(cap, self.cfg.op);
        let per_decoder = e(c.cap_decoder_read) + e(c.cap_rwl_per_decoder);
        EnergyBreakdown {
            decoder: per_decoder * self.cfg.ndec as f64,
            encoder: e(c.cap_encoder_classify),
            ctrl: e(c.cap_ctrl_token),
        }
    }

    /// Macro area.
    pub fn area(&self) -> AreaBreakdown {
        let c = self.cal();
        let ns = self.cfg.ns as f64;
        let ndec = self.cfg.ndec as f64;
        AreaBreakdown {
            decoder: c.area_decoder * (ndec * ns),
            encoder: c.area_encoder * ns,
            ctrl: c.area_ctrl * ns,
            global: c.area_global + c.area_global_per_decoder * ndec,
        }
    }

    /// Full PPA evaluation.
    pub fn evaluate(&self) -> PpaReport {
        let best = self.block_latency_best();
        let worst = self.block_latency_worst();
        let ops = self.cfg.ops_per_token() as f64;
        let tops_max = ops / best.total().value() / 1e12;
        let tops_min = ops / worst.total().value() / 1e12;
        let block_energy = self.block_energy();
        let ops_per_block = (crate::config::OPS_PER_LOOKUP * self.cfg.ndec) as f64;
        let energy_per_op = block_energy.total() / ops_per_block;
        let tops_per_watt = 1.0 / energy_per_op.as_femtos() * 1e3;
        let area = self.area();
        let tops_avg = 0.5 * (tops_min + tops_max);
        let tech = maddpipe_tech::Technology::n22();
        // Leakage: approximate the macro as its transistor population.
        let transistor_units = area.total().value() / tech.area_per_transistor.value() / 4.0;
        let leakage = tech.leakage_power(transistor_units, self.cfg.op);
        PpaReport {
            ndec: self.cfg.ndec,
            ns: self.cfg.ns,
            latency_best: best,
            latency_worst: worst,
            freq_min: worst.total().to_frequency(),
            freq_max: best.total().to_frequency(),
            tops_min,
            tops_max,
            block_energy,
            energy_per_op,
            tops_per_watt,
            tops_per_mm2: tops_avg / area.total().as_mm2(),
            area,
            leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::units::Volts;

    fn at(ndec: usize, ns: usize, vdd: f64, corner: Corner) -> PpaReport {
        MacroModel::new(MacroConfig::new(ndec, ns).with_op(OperatingPoint::new(Volts(vdd), corner)))
            .evaluate()
    }

    /// Paper Fig. 7 / Table II: block latency at 0.5 V TTG, Ndec=16 is
    /// best 17.8 ns / worst 32.1 ns (31.2–56.2 MHz).
    #[test]
    fn flagship_block_latency_matches_paper() {
        let r = at(16, 32, 0.5, Corner::Ttg);
        let best = r.latency_best.total().as_nanos();
        let worst = r.latency_worst.total().as_nanos();
        assert!((best - 17.8).abs() < 1.0, "best {best} ns (paper 17.8)");
        assert!((worst - 32.1).abs() < 1.5, "worst {worst} ns (paper 32.1)");
    }

    /// Paper Table II: 0.28–0.51 TOPS and 174 TOPS/W at 0.5 V;
    /// 2.01 TOPS/mm² on a 0.20 mm² core.
    #[test]
    fn flagship_headline_numbers() {
        let r = at(16, 32, 0.5, Corner::Ttg);
        assert!((r.tops_min - 0.28).abs() < 0.03, "tops_min {}", r.tops_min);
        assert!((r.tops_max - 0.51).abs() < 0.05, "tops_max {}", r.tops_max);
        assert!(
            (r.tops_per_watt - 174.0).abs() < 8.0,
            "TOPS/W {}",
            r.tops_per_watt
        );
        assert!(
            (r.area.total().as_mm2() - 0.20).abs() < 0.01,
            "area {}",
            r.area.total().as_mm2()
        );
        assert!(
            (r.tops_per_mm2 - 2.01).abs() < 0.15,
            "TOPS/mm² {}",
            r.tops_per_mm2
        );
    }

    /// Paper Table II nominal-voltage column: 75.1 TOPS/W, 11.34 TOPS/mm²
    /// at 0.8 V.
    #[test]
    fn flagship_at_nominal_voltage() {
        let r = at(16, 32, 0.8, Corner::Ttg);
        assert!(
            (r.tops_per_watt - 75.1).abs() < 4.0,
            "TOPS/W {}",
            r.tops_per_watt
        );
        assert!(
            (r.tops_per_mm2 - 11.34).abs() < 1.3,
            "TOPS/mm² {}",
            r.tops_per_mm2
        );
    }

    /// Paper Fig. 7: energy is decoder-dominated (>94 %), latency is
    /// encoder-dominated in the worst case (40–70 %).
    #[test]
    fn breakdown_shapes_match_fig7() {
        for ndec in [4usize, 16] {
            let r = at(ndec, 32, 0.5, Corner::Ttg);
            let e_frac = r.block_energy.decoder_fraction();
            assert!(e_frac > 0.93, "Ndec={ndec}: decoder energy {e_frac}");
            let l_frac = r.latency_worst.encoder_fraction();
            assert!(
                (0.40..=0.70).contains(&l_frac),
                "Ndec={ndec}: encoder latency share {l_frac}"
            );
        }
        // Area: decoder share grows with Ndec (57 % → 83 % in the paper).
        let a4 = at(4, 32, 0.5, Corner::Ttg).area.decoder_fraction();
        let a16 = at(16, 32, 0.5, Corner::Ttg).area.decoder_fraction();
        assert!((a4 - 0.569).abs() < 0.04, "Ndec=4 decoder area {a4}");
        assert!((a16 - 0.829).abs() < 0.04, "Ndec=16 decoder area {a16}");
    }

    /// Paper Table I: both efficiencies improve monotonically with Ndec,
    /// with diminishing returns past 16.
    #[test]
    fn table1_trends() {
        let rs: Vec<PpaReport> = [4, 8, 16, 32]
            .iter()
            .map(|&n| at(n, 32, 0.5, Corner::Ttg))
            .collect();
        for w in rs.windows(2) {
            assert!(
                w[1].tops_per_watt > w[0].tops_per_watt,
                "energy efficiency must rise with Ndec"
            );
        }
        assert!(rs[1].tops_per_mm2 > rs[0].tops_per_mm2);
        assert!(rs[2].tops_per_mm2 > rs[1].tops_per_mm2);
        // Diminishing returns: 16→32 gain smaller than 4→8 gain.
        let gain_small = rs[1].tops_per_watt / rs[0].tops_per_watt;
        let gain_large = rs[3].tops_per_watt / rs[2].tops_per_watt;
        assert!(gain_large < gain_small);
        // Paper values at 0.5 V: 167.5 / 171.8 / 174.0 / 174.9 TOPS/W.
        for (r, paper) in rs.iter().zip([167.5, 171.8, 174.0, 174.9]) {
            let err = (r.tops_per_watt - paper).abs() / paper;
            assert!(
                err < 0.03,
                "Ndec={}: {} vs paper {paper}",
                r.ndec,
                r.tops_per_watt
            );
        }
        // Paper area efficiencies at 0.5 V: 1.4 / 1.8 / 2.0 / 2.0.
        for (r, paper) in rs.iter().zip([1.4, 1.8, 2.0, 2.0]) {
            let err = (r.tops_per_mm2 - paper).abs() / paper;
            assert!(
                err < 0.08,
                "Ndec={}: {} vs paper {paper}",
                r.ndec,
                r.tops_per_mm2
            );
        }
    }

    /// Fig. 6 anchor points (Ndec=4, NS=4, TTG average).
    #[test]
    fn fig6_voltage_sweep() {
        let paper = [
            (0.5, 164.0, 1.45),
            (0.6, 123.0, 3.46),
            (0.7, 92.8, 5.94),
            (0.8, 72.2, 8.55),
            (0.9, 57.5, 11.03),
            (1.0, 46.6, 13.25),
        ];
        for (vdd, tops_w, tops_mm2) in paper {
            let r = at(4, 4, vdd, Corner::Ttg);
            let ew = (r.tops_per_watt - tops_w).abs() / tops_w;
            assert!(
                ew < 0.06,
                "{vdd} V: {} TOPS/W vs paper {tops_w}",
                r.tops_per_watt
            );
            // The calibration is anchored on the flagship Ndec=16/NS=32
            // macro; the small Fig. 6 config sits systematically ~10 %
            // below the paper's density. Shape (monotone rise, ~9× total
            // gain) is what matters here.
            let ea = (r.tops_per_mm2 - tops_mm2).abs() / tops_mm2;
            assert!(
                ea < 0.16,
                "{vdd} V: {} TOPS/mm² vs paper {tops_mm2}",
                r.tops_per_mm2
            );
        }
    }

    /// Energy efficiency is nearly corner-independent; speed is not.
    #[test]
    fn corners_move_speed_not_efficiency() {
        let ttg = at(16, 32, 0.5, Corner::Ttg);
        let ssg = at(16, 32, 0.5, Corner::Ssg);
        let ffg = at(16, 32, 0.5, Corner::Ffg);
        assert_eq!(ttg.tops_per_watt, ssg.tops_per_watt);
        assert!(ssg.tops_min < ttg.tops_min && ttg.tops_min < ffg.tops_min);
    }

    #[test]
    fn encoder_latency_monotone_in_ripple() {
        let m = MacroModel::new(MacroConfig::fig6());
        let fast = m.encoder_latency(&[1, 1, 1, 1]);
        let mid = m.encoder_latency(&[4, 4, 4, 4]);
        let slow = m.encoder_latency(&[8, 8, 8, 8]);
        assert!(fast < mid && mid < slow);
    }

    #[test]
    #[should_panic(expected = "ripple depth")]
    fn out_of_range_ripple_panics() {
        let m = MacroModel::new(MacroConfig::fig6());
        let _ = m.encoder_latency(&[0, 1, 1, 1]);
    }

    #[test]
    fn leakage_is_small_but_positive() {
        let r = at(16, 32, 0.5, Corner::Ttg);
        assert!(r.leakage.0 > 0.0);
        // Dynamic power at worst-case throughput dwarfs leakage at 25 °C.
        let dynamic = r.block_energy.total() * (r.ns as f64) / r.latency_worst.total();
        assert!(
            r.leakage.0 < dynamic.0 * 0.2,
            "leakage {} vs dynamic {}",
            r.leakage,
            dynamic
        );
    }

    #[test]
    fn report_display_is_complete() {
        let s = at(16, 32, 0.5, Corner::Ttg).to_string();
        assert!(s.contains("TOPS/W") && s.contains("TOPS/mm²") && s.contains("latency"));
    }
}
