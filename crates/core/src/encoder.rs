//! The self-synchronous BDT encoder — 15 DLCs in a tournament (Fig. 4 A).
//!
//! The root comparator evaluates when the controller raises `CALCE`; each
//! rail discharge enables exactly one child through an inverter, so only
//! the four comparators on the decision path ever evaluate — the property
//! that gives the encoder its 95 % energy reduction over the clocked
//! design of Stella Nera (§IV). The eight leaf comparators' rails, through
//! the RWL driver inverters, form the 16 one-hot read wordlines.

use crate::calib::Calibration;
use crate::config::LEVELS;
use crate::dlc::{to_offset_binary, DlcCell};
use maddpipe_amm::bdt::QuantizedBdt;
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_tech::process::DriveKind;

/// Nets exposed by a built encoder.
#[derive(Debug, Clone)]
pub struct EncoderPorts {
    /// The 16 active-high one-hot read wordlines, leaf order (RWL\[k\]
    /// asserts for prototype `k`).
    pub rwl: Vec<NetId>,
    /// The dual rails of every DLC node, heap order, for waveform probing:
    /// `rails[i] = (yp, yn)`.
    pub rails: Vec<(NetId, NetId)>,
}

/// Builds the 4-level encoder for one compute block.
///
/// * `tree` — the trained, quantised hash function (must be 4 levels).
/// * `x_bits` — per subvector element, the 8 offset-binary bit nets (LSB
///   first); elements are indexed by the tree's split dimensions.
/// * `calce` — the controller's compute-enable (low = precharge).
///
/// # Panics
///
/// Panics if the tree is not 4 levels deep, if a split dimension has no
/// corresponding element, or if an element has a width other than 8 bits.
pub fn build_encoder(
    b: &mut CircuitBuilder,
    name: &str,
    tree: &QuantizedBdt,
    x_bits: &[Vec<NetId>],
    calce: NetId,
    cal: &Calibration,
) -> EncoderPorts {
    assert_eq!(
        tree.levels(),
        LEVELS,
        "the hardware encoder is fixed at {LEVELS} levels"
    );
    for (dim, bits) in x_bits.iter().enumerate() {
        assert_eq!(bits.len(), 8, "element {dim} must be 8 bits");
    }
    for &dim in tree.split_dims() {
        assert!(
            dim < x_bits.len(),
            "split dimension {dim} exceeds the {}-element subvector",
            x_bits.len()
        );
    }
    let prev_domain = b.set_domain("encoder");
    let n_internal = (1usize << LEVELS) - 1;
    let thresholds = tree.thresholds();
    let mut rails: Vec<(NetId, NetId)> = Vec::with_capacity(n_internal);
    let mut clks: Vec<NetId> = vec![calce];
    for node in 0..n_internal {
        let level = (usize::BITS - (node + 1).leading_zeros() - 1) as usize;
        let dim = tree.split_dims()[level];
        let t_base = b.library_mut().delay(cal.dlc_base, DriveKind::PullDown);
        let t_bit = b.library_mut().delay(cal.dlc_per_bit, DriveKind::PullDown);
        let t_pchg = b.library_mut().delay(cal.dlc_precharge, DriveKind::PullUp);
        let cell = DlcCell::new(to_offset_binary(thresholds[node]), t_base, t_bit, t_pchg);
        let yp = b.net(format!("{name}.n{node}.yp"));
        let yn = b.net(format!("{name}.n{node}.yn"));
        // Dual-rail dynamic nodes carry the 8-stage comparator chain's
        // internal diffusion load.
        let rail_cap = maddpipe_tech::units::Farads::from_femtos(2.5);
        b.add_wire_cap(yp, rail_cap);
        b.add_wire_cap(yn, rail_cap);
        let mut inputs = vec![clks[node]];
        inputs.extend(&x_bits[dim]);
        b.add_cell(
            format!("{name}.dlc{node}"),
            Box::new(cell),
            &inputs,
            &[yp, yn],
        );
        rails.push((yp, yn));
        // Children (if any) evaluate when a rail discharges: the inverter
        // turns the active-low rail into an active-high clock.
        if 2 * node + 2 < n_internal + (1 << LEVELS) {
            let clk_left = b.inv(&format!("{name}.en{}", 2 * node + 1), yp);
            let clk_right = b.inv(&format!("{name}.en{}", 2 * node + 2), yn);
            // Heap order: children of `node` are 2n+1 and 2n+2.
            debug_assert_eq!(clks.len(), 2 * node + 1);
            clks.push(clk_left);
            clks.push(clk_right);
        }
    }
    // Leaf rails → RWL drivers. Level-3 node j (heap index 7 + j) owns
    // leaves 2j (via YP, the "<" side) and 2j + 1 (via YN, the "≥" side).
    let first_leaf_node = (1usize << (LEVELS - 1)) - 1;
    let mut rwl = Vec::with_capacity(1 << LEVELS);
    for j in 0..(1usize << (LEVELS - 1)) {
        let (yp, yn) = rails[first_leaf_node + j];
        rwl.push(b.inv(&format!("{name}.rwl{}", 2 * j), yp));
        rwl.push(b.inv(&format!("{name}.rwl{}", 2 * j + 1), yn));
    }
    b.restore_domain(prev_domain);
    EncoderPorts { rwl, rails }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_amm::bdt::BdtEncoder;
    use maddpipe_amm::quant::QuantScale;
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_sim::logic::{u64_to_bits, Logic};
    use maddpipe_tech::corner::OperatingPoint;
    use maddpipe_tech::process::Technology;

    struct Dut {
        sim: Simulator,
        calce: NetId,
        x_bits: Vec<Vec<NetId>>,
        ports: EncoderPorts,
    }

    fn tree_from(split_dims: Vec<usize>, thresholds: Vec<f32>) -> QuantizedBdt {
        BdtEncoder::from_parts(split_dims, thresholds)
            .unwrap()
            .quantize(QuantScale::UNIT)
    }

    fn dut(tree: QuantizedBdt, elems: usize) -> Dut {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let calce = b.input("calce");
        let x_bits: Vec<Vec<NetId>> = (0..elems).map(|i| b.bus(&format!("x{i}"), 8)).collect();
        let ports = build_encoder(&mut b, "enc", &tree, &x_bits, calce, &Calibration::paper());
        Dut {
            sim: Simulator::new(b.build()),
            calce,
            x_bits,
            ports,
        }
    }

    fn classify(d: &mut Dut, x: &[i8]) -> usize {
        d.sim.poke(d.calce, Logic::Low);
        for (elem, bits) in d.x_bits.iter().enumerate() {
            let code = to_offset_binary(x[elem]);
            for (net, bit) in bits.iter().zip(u64_to_bits(code as u64, 8)) {
                d.sim.poke(*net, bit);
            }
        }
        d.sim.run_to_quiescence().unwrap();
        d.sim.poke(d.calce, Logic::High);
        d.sim.run_to_quiescence().unwrap();
        let hot: Vec<usize> = d
            .ports
            .rwl
            .iter()
            .enumerate()
            .filter(|(_, &n)| d.sim.value(n) == Logic::High)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hot.len(), 1, "RWL must be one-hot, got {hot:?}");
        hot[0]
    }

    #[test]
    fn rtl_matches_algorithmic_encoder_exhaustively() {
        // A 4-level tree over a 9-element subvector with varied thresholds.
        let tree = tree_from(
            vec![0, 3, 6, 7],
            vec![
                0.0, -40.0, 40.0, -80.0, -10.0, 10.0, 80.0, -100.0, -60.0, -20.0, 5.0, 25.0, 60.0,
                90.0, 120.0,
            ],
        );
        let mut d = dut(tree.clone(), 9);
        // Probe a grid of inputs on the compared dimensions.
        let probe = [-128i8, -100, -64, -21, -20, 0, 4, 5, 39, 40, 100, 127];
        for &a in &probe {
            for &c in &probe[..6] {
                let mut x = [0i8; 9];
                x[0] = a;
                x[3] = c;
                x[6] = a.wrapping_add(c);
                x[7] = c;
                let expected = {
                    let q: Vec<i8> = x.to_vec();
                    tree.encode_one(&q)
                };
                let got = classify(&mut d, &x);
                assert_eq!(got, expected, "x = {x:?}");
            }
        }
    }

    #[test]
    fn only_the_path_comparators_fire() {
        let tree = tree_from(vec![0, 1, 2, 3], vec![0.0; 15]);
        let mut d = dut(tree, 4);
        let _ = classify(&mut d, &[100, 100, 100, 100]);
        // Count discharged rails: exactly one rail per level fired (4 of
        // 30 rails low).
        let low_rails = d
            .ports
            .rails
            .iter()
            .flat_map(|&(p, n)| [p, n])
            .filter(|&r| d.sim.value(r) == Logic::Low)
            .count();
        assert_eq!(low_rails, LEVELS, "exactly one rail per level discharges");
    }

    #[test]
    fn precharge_clears_all_wordlines() {
        let tree = tree_from(vec![0, 1, 2, 3], vec![0.0; 15]);
        let mut d = dut(tree, 4);
        let _ = classify(&mut d, &[-5, 5, -5, 5]);
        d.sim.poke(d.calce, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        for &w in &d.ports.rwl {
            assert_eq!(d.sim.value(w), Logic::Low, "RWL must drop after precharge");
        }
        for &(yp, yn) in &d.ports.rails {
            assert_eq!(d.sim.value(yp), Logic::High);
            assert_eq!(d.sim.value(yn), Logic::High);
        }
    }

    #[test]
    fn boundary_inputs_take_longer_than_decisive_ones() {
        // All thresholds 0 on dim 0..3. x far from threshold → MSB decides;
        // x equal to threshold → full ripple.
        let tree = tree_from(vec![0, 1, 2, 3], vec![0.0; 15]);
        let mut d = dut(tree.clone(), 4);
        // Decisive: large positive values (MSB of offset-binary differs).
        d.sim.poke(d.calce, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        let t0 = d.sim.now();
        let _ = classify(&mut d, &[100, 100, 100, 100]);
        let fast = d.sim.now().since(t0);
        // Equal: x == t everywhere → every DLC walks all 8 stages.
        let t1 = d.sim.now();
        let _ = classify(&mut d, &[0, 0, 0, 0]);
        let slow = d.sim.now().since(t1);
        assert!(
            slow.as_picos() > fast.as_picos() + 4.0 * 6.0 * 91.0 * 0.8,
            "worst-case walk must be slower: fast {fast}, slow {slow}"
        );
    }

    #[test]
    fn second_classification_after_precharge_is_clean() {
        let tree = tree_from(
            vec![0, 1, 2, 3],
            vec![
                0.0, -30.0, 30.0, -60.0, -15.0, 15.0, 60.0, -90.0, -45.0, -7.0, 7.0, 45.0, 75.0,
                100.0, 120.0,
            ],
        );
        let mut d = dut(tree.clone(), 4);
        for x in [
            [-100i8, -100, -100, -100],
            [100, 100, 100, 100],
            [0, 0, 0, 0],
        ] {
            let expected = tree.encode_one(&x);
            assert_eq!(classify(&mut d, &x), expected, "{x:?}");
        }
    }
}
