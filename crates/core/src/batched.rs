//! Batched, bit-sliced evaluation of a [`MacroProgram`] — the fast path
//! behind [`MacroProgram::reference_output_batch`].
//!
//! [`MacroProgram::reference_output`] walks one token at a time: a 4-level
//! BDT per stage, then one LUT byte per decoder chain, accumulated with
//! wrapping 16-bit adds. That scalar walk is the executable spec — this
//! module never changes its semantics, it only restructures the work so a
//! whole *lane* of tokens ([`LANE`] = 64) moves through each stage per
//! inner-loop iteration:
//!
//! * [`BatchedProgram`] is a struct-of-arrays view of the program: per
//!   stage, the split dimensions and heap-ordered thresholds of the tree
//!   sit in flat arrays, and the LUT bytes are widened to `i16` and
//!   transposed **code-major** — one contiguous `ndec`-wide row per leaf
//!   code — so accumulating a token is a single dense vector add over
//!   all its decoder chains instead of `ndec` scattered byte gathers.
//! * The tree walk is **bit-sliced**: each level's decisions for all 64
//!   tokens land in one `u64` mask, built from at most `2^level`
//!   threshold comparisons over the gathered input column — exactly the
//!   comparator tournament of the silicon encoder, evaluated 64 tokens at
//!   a time.
//! * Accumulation comes in two interchangeable kernels
//!   ([`LaneKernel`]): a **portable** gather loop over `i16` lanes that
//!   the autovectoriser handles well, and a **bit-sliced** kernel that
//!   keeps the 16-bit accumulators as 16 transposed `u64` bit-planes and
//!   adds LUT values with a ripple-carry over masks — no per-token
//!   arithmetic at all, mirroring the paper's multiplication-free claim
//!   in spirit. The `simd` cargo feature selects the bit-sliced kernel as
//!   the default; both are always compiled and tested.
//!
//! Both kernels are pinned bit-identical to the scalar spec by proptest
//! (`tests/backend_equivalence.rs`), including wrapping at the `i16`
//! boundaries.

use crate::config::{ACC_BITS, K, SUBVECTOR_LEN};
use crate::macro_rtl::MacroProgram;

/// Tokens evaluated per inner-loop iteration: one decision bit per token
/// packs into a `u64` mask.
pub const LANE: usize = 64;

/// Deepest tree the batched encoder supports (the quantised-BDT builder
/// enforces the same cap).
const MAX_LEVELS: usize = 8;

/// Which accumulation kernel a batched evaluation uses. Both produce
/// bit-identical results; they differ only in how the wrapping 16-bit
/// adds are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKernel {
    /// Scalar `i16` gather-accumulate over the lane, written so the
    /// compiler's autovectoriser can lift it to SIMD.
    Portable,
    /// Transposed bit-plane accumulators (`16 × u64` per decoder) with a
    /// ripple-carry add over masks: per stage and decoder, the cost is
    /// O(LUT bit-planes), independent of the number of tokens in the lane.
    BitSliced,
}

/// The kernel [`BatchedProgram::evaluate_into`] dispatches to: bit-sliced
/// when the `simd` cargo feature is enabled, portable otherwise.
pub fn default_kernel() -> LaneKernel {
    if cfg!(feature = "simd") {
        LaneKernel::BitSliced
    } else {
        LaneKernel::Portable
    }
}

/// One pipeline stage in struct-of-arrays form.
#[derive(Debug, Clone)]
struct StageSoa {
    /// Tree depth (4 for hardware-shaped programs).
    levels: usize,
    /// One split dimension per level.
    split_dims: Vec<usize>,
    /// Heap-ordered thresholds (node 0 = root, children `2i+1`/`2i+2`).
    thresholds: Vec<i8>,
    /// LUT bytes widened to `i16` and transposed code-major: row `k`
    /// (`luts_code_major[k*ndec..]`) holds every decoder's entry for leaf
    /// `k`, so one token's accumulate is one contiguous vector add.
    luts_code_major: Vec<i16>,
    /// Per decoder, bit `k` of `lut_planes[j][p]` is bit `p` of LUT byte
    /// `k` — the transposed view the bit-sliced kernel gathers from.
    lut_planes: Vec<[u16; 8]>,
}

/// Struct-of-arrays view of a [`MacroProgram`], precomputed once and
/// reused across batches.
///
/// Build it with [`MacroProgram::batched`] (or [`BatchedProgram::new`]);
/// evaluate with [`BatchedProgram::evaluate`] or the allocation-free
/// [`BatchedProgram::evaluate_into`].
#[derive(Debug, Clone)]
pub struct BatchedProgram {
    ns: usize,
    ndec: usize,
    stages: Vec<StageSoa>,
}

impl BatchedProgram {
    /// Builds the struct-of-arrays view of `program`.
    ///
    /// # Panics
    ///
    /// Panics if a tree is deeper than 8 levels (the quantised-BDT
    /// builder enforces the same bound, so this cannot fire for programs
    /// built through the public constructors).
    pub fn new(program: &MacroProgram) -> BatchedProgram {
        let ns = program.ns();
        let ndec = program.ndec();
        let stages = (0..ns)
            .map(|s| {
                let tree = &program.trees[s];
                assert!(
                    tree.levels() <= MAX_LEVELS,
                    "stage {s}: tree depth {} exceeds the batched encoder cap",
                    tree.levels()
                );
                let mut luts_code_major = vec![0i16; K * ndec];
                let mut lut_planes = Vec::with_capacity(ndec);
                for (j, entries) in program.luts[s].iter().enumerate() {
                    let mut planes = [0u16; 8];
                    for (k, &e) in entries.iter().enumerate() {
                        luts_code_major[k * ndec + j] = e as i16;
                        let byte = e as u8;
                        for (p, plane) in planes.iter_mut().enumerate() {
                            *plane |= u16::from((byte >> p) & 1) << k;
                        }
                    }
                    lut_planes.push(planes);
                }
                StageSoa {
                    levels: tree.levels(),
                    split_dims: tree.split_dims().to_vec(),
                    thresholds: tree.thresholds().to_vec(),
                    luts_code_major,
                    lut_planes,
                }
            })
            .collect();
        BatchedProgram { ns, ndec, stages }
    }

    /// Pipeline stages of the underlying program.
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// Decoder chains per stage.
    pub fn ndec(&self) -> usize {
        self.ndec
    }

    /// Evaluates `tokens` with the feature-selected default kernel
    /// ([`default_kernel`]), one output vector per token. Matches
    /// `tokens.iter().map(|t| program.reference_output(t))` bit for bit.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the scalar spec: a token that
    /// does not carry one subvector per stage, or a malformed program
    /// whose tree walk selects a leaf outside the 16-entry LUT.
    pub fn evaluate<T: AsRef<[[i8; SUBVECTOR_LEN]]>>(&self, tokens: &[T]) -> Vec<Vec<i16>> {
        self.evaluate_with(tokens, default_kernel())
    }

    /// Like [`BatchedProgram::evaluate`] with an explicit kernel choice.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BatchedProgram::evaluate`].
    pub fn evaluate_with<T: AsRef<[[i8; SUBVECTOR_LEN]]>>(
        &self,
        tokens: &[T],
        kernel: LaneKernel,
    ) -> Vec<Vec<i16>> {
        let mut flat = vec![0i16; tokens.len() * self.ndec];
        self.evaluate_into_with(tokens, kernel, &mut flat);
        if self.ndec == 0 {
            // Decoder-less programs still produce one (empty) output
            // vector per token, like the scalar spec.
            return vec![Vec::new(); tokens.len()];
        }
        flat.chunks(self.ndec).map(<[i16]>::to_vec).collect()
    }

    /// Evaluates `tokens` into a caller-provided token-major buffer
    /// (`out[i * ndec + j]` = token `i`, decoder `j`) with the default
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != tokens.len() * ndec`, plus the conditions
    /// of [`BatchedProgram::evaluate`].
    pub fn evaluate_into<T: AsRef<[[i8; SUBVECTOR_LEN]]>>(&self, tokens: &[T], out: &mut [i16]) {
        self.evaluate_into_with(tokens, default_kernel(), out);
    }

    /// Like [`BatchedProgram::evaluate_into`] with an explicit kernel.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BatchedProgram::evaluate_into`].
    pub fn evaluate_into_with<T: AsRef<[[i8; SUBVECTOR_LEN]]>>(
        &self,
        tokens: &[T],
        kernel: LaneKernel,
        out: &mut [i16],
    ) {
        assert_eq!(
            out.len(),
            tokens.len() * self.ndec,
            "output buffer must hold ndec values per token"
        );
        let rows: Vec<&[[i8; SUBVECTOR_LEN]]> = tokens.iter().map(AsRef::as_ref).collect();
        for row in &rows {
            assert_eq!(row.len(), self.ns, "one subvector per stage");
        }
        // The portable kernel accumulates straight into `out`.
        out.fill(0);
        match kernel {
            LaneKernel::Portable => self.eval_portable(&rows, out),
            LaneKernel::BitSliced => self.eval_bitsliced(&rows, out),
        }
    }

    /// Portable kernel: per token and stage, the tree walk runs on the
    /// flat SoA arrays (same comparison count as the scalar spec), and
    /// the accumulate is one dense `i16` vector add over the code-major
    /// LUT row — a contiguous `ndec`-wide `+=` the autovectoriser lifts
    /// to SIMD, replacing `ndec` scattered byte gathers per (token,
    /// stage). Where the bit-sliced kernel vectorises across *tokens*,
    /// this one vectorises across *decoder chains*.
    fn eval_portable(&self, rows: &[&[[i8; SUBVECTOR_LEN]]], out: &mut [i16]) {
        let ndec = self.ndec;
        for (row, slot) in rows.iter().zip(out.chunks_mut(ndec.max(1))) {
            for (sub, stage) in row.iter().zip(&self.stages) {
                let mut node = 0usize;
                for &dim in &stage.split_dims {
                    node = 2 * node + 1 + usize::from(sub[dim] >= stage.thresholds[node]);
                }
                let k = node - ((1 << stage.levels) - 1);
                // Out-of-range codes (trees deeper than 4 levels) panic
                // on this slice, like the scalar spec's LUT index does.
                let lut_row = &stage.luts_code_major[k * ndec..(k + 1) * ndec];
                for (a, &v) in slot.iter_mut().zip(lut_row) {
                    *a = a.wrapping_add(v);
                }
            }
        }
    }

    /// Bit-sliced kernel: the lane's 16-bit accumulators live transposed
    /// as 16 `u64` bit-planes per decoder. Per stage, the tree decisions
    /// become 16 leaf masks; each decoder ORs them through its transposed
    /// LUT into 8 value bit-planes (sign-extended to 16) and ripple-carry
    /// adds the planes into the accumulators — wrapping 16-bit adds for
    /// all 64 tokens in ~48 logical ops, with no per-token arithmetic.
    fn eval_bitsliced(&self, rows: &[&[[i8; SUBVECTOR_LEN]]], out: &mut [i16]) {
        let ndec = self.ndec;
        let mut planes = vec![[0u64; ACC_BITS]; ndec];
        let mut col = [0i8; LANE];
        for base in (0..rows.len()).step_by(LANE) {
            let n = LANE.min(rows.len() - base);
            let lane = &rows[base..base + n];
            let valid: u64 = if n == LANE { !0 } else { (1u64 << n) - 1 };
            for acc in planes.iter_mut() {
                *acc = [0u64; ACC_BITS];
            }
            for (s, stage) in self.stages.iter().enumerate() {
                let bits = encode_lane(stage, s, lane, &mut col);
                // Leaf masks: token i is in leaf k iff its decision bits
                // spell k (level 0 is the MSB, as in the scalar walk).
                let mut leaf = [0u64; K];
                for (k, mask) in leaf.iter_mut().enumerate().take(1 << stage.levels) {
                    let mut m = valid;
                    for (l, &b) in bits[..stage.levels].iter().enumerate() {
                        m &= if (k >> (stage.levels - 1 - l)) & 1 == 1 {
                            b
                        } else {
                            !b
                        };
                    }
                    *mask = m;
                }
                if stage.levels > 4 && ndec > 0 {
                    // Mirror the scalar spec's LUT-bounds panic: a deeper
                    // tree can land tokens on leaves the 16-entry LUT
                    // does not have.
                    for k in K..1 << stage.levels {
                        let mut m = valid;
                        for (l, &b) in bits[..stage.levels].iter().enumerate() {
                            m &= if (k >> (stage.levels - 1 - l)) & 1 == 1 {
                                b
                            } else {
                                !b
                            };
                        }
                        assert_eq!(m, 0, "stage {s}: leaf {k} exceeds the {K}-entry LUT");
                    }
                }
                for (j, acc) in planes.iter_mut().enumerate() {
                    let sel = &stage.lut_planes[j];
                    // Value bit-planes: bit i of vp[p] = bit p of the LUT
                    // byte token i selected.
                    let mut vp = [0u64; 8];
                    for (p, v) in vp.iter_mut().enumerate() {
                        let mut ks = sel[p];
                        while ks != 0 {
                            let k = ks.trailing_zeros() as usize;
                            ks &= ks - 1;
                            *v |= leaf[k];
                        }
                    }
                    // Ripple-carry add of the sign-extended value into the
                    // 16 accumulator planes; the dropped final carry *is*
                    // the wrapping-i16 semantics.
                    let mut carry = 0u64;
                    for (p, a) in acc.iter_mut().enumerate() {
                        let v = if p < 8 { vp[p] } else { vp[7] };
                        let axv = *a ^ v;
                        let next_carry = (*a & v) | (carry & axv);
                        *a = axv ^ carry;
                        carry = next_carry;
                    }
                }
            }
            // Untranspose: bit i of plane p is bit p of token i's result.
            for i in 0..n {
                let slot = &mut out[(base + i) * ndec..(base + i + 1) * ndec];
                for (j, o) in slot.iter_mut().enumerate() {
                    let mut word = 0u16;
                    for (p, &plane) in planes[j].iter().enumerate() {
                        word |= (((plane >> i) & 1) as u16) << p;
                    }
                    *o = word as i16;
                }
            }
        }
    }
}

/// Bit-sliced BDT walk for one stage over one lane: returns one `u64` of
/// decisions per level (bit `i` = token `i` went right). Each tree node's
/// threshold is compared against the gathered input column only for the
/// tokens whose path reaches that node.
fn encode_lane(
    stage: &StageSoa,
    s: usize,
    lane: &[&[[i8; SUBVECTOR_LEN]]],
    col: &mut [i8; LANE],
) -> [u64; MAX_LEVELS] {
    let n = lane.len();
    let valid: u64 = if n == LANE { !0 } else { (1u64 << n) - 1 };
    let mut bits = [0u64; MAX_LEVELS];
    for l in 0..stage.levels {
        let dim = stage.split_dims[l];
        for (c, row) in col[..n].iter_mut().zip(lane) {
            *c = row[s][dim];
        }
        let first = (1usize << l) - 1;
        let mut right = 0u64;
        for p in 0..1usize << l {
            // Path mask: tokens whose earlier decisions spell node p
            // (decision at level j is bit `l-1-j` of p, MSB first).
            let mut pm = valid;
            for (j, &b) in bits[..l].iter().enumerate() {
                pm &= if (p >> (l - 1 - j)) & 1 == 1 { b } else { !b };
            }
            if pm == 0 {
                continue;
            }
            let t = stage.thresholds[first + p];
            if l == 0 {
                // Every token visits the root: compare the whole column.
                let mut cmp = 0u64;
                for (i, &c) in col[..n].iter().enumerate() {
                    cmp |= u64::from(c >= t) << i;
                }
                right |= pm & cmp;
            } else {
                // Deeper nodes: compare only the tokens whose path
                // reaches this node, so the whole level still costs one
                // comparison per token.
                let mut m = pm;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    right |= u64::from(col[i] >= t) << i;
                }
            }
        }
        bits[l] = right;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tokens(ns: usize, count: usize, seed: u64) -> Vec<Vec<[i8; SUBVECTOR_LEN]>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..ns)
                    .map(|_| {
                        let mut x = [0i8; SUBVECTOR_LEN];
                        for v in x.iter_mut() {
                            *v = rng.gen_range(-128i32..=127) as i8;
                        }
                        x
                    })
                    .collect()
            })
            .collect()
    }

    fn scalar_golden(program: &MacroProgram, tokens: &[Vec<[i8; SUBVECTOR_LEN]>]) -> Vec<Vec<i16>> {
        tokens.iter().map(|t| program.reference_output(t)).collect()
    }

    #[test]
    fn both_kernels_match_the_scalar_spec_across_lane_boundaries() {
        let program = MacroProgram::random(5, 3, 11);
        let view = program.batched();
        for count in [1usize, 2, 63, 64, 65, 127, 128, 130] {
            let tokens = random_tokens(3, count, count as u64);
            let golden = scalar_golden(&program, &tokens);
            for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
                assert_eq!(
                    view.evaluate_with(&tokens, kernel),
                    golden,
                    "{kernel:?} with {count} tokens"
                );
            }
        }
    }

    #[test]
    fn empty_batch_evaluates_to_no_outputs() {
        let program = MacroProgram::random(2, 2, 3);
        let view = program.batched();
        let empty: Vec<Vec<[i8; SUBVECTOR_LEN]>> = Vec::new();
        assert!(view.evaluate(&empty).is_empty());
        for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
            assert!(view.evaluate_with(&empty, kernel).is_empty());
        }
    }

    #[test]
    fn wrapping_at_i16_extremes_is_bit_identical() {
        // Every LUT entry of decoder 0 holds -128 and of decoder 1 holds
        // +127, so whatever leaf each token walks to, 300 stages
        // accumulate -38400 / +38100 — both wrap past the i16 extremes.
        let ns = 300;
        let tree = maddpipe_amm::bdt::BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
            .unwrap()
            .quantize(maddpipe_amm::quant::QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree; ns],
            luts: vec![vec![[-128; K], [127; K]]; ns],
        };
        let tokens = random_tokens(ns, 70, 9);
        let golden = scalar_golden(&program, &tokens);
        assert_eq!(golden[0][0], (-128i32 * ns as i32) as i16);
        assert_eq!(golden[0][1], (127i32 * ns as i32) as i16);
        let view = program.batched();
        for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
            assert_eq!(view.evaluate_with(&tokens, kernel), golden, "{kernel:?}");
        }
    }

    #[test]
    fn shallow_and_deep_trees_agree_with_scalar() {
        // The batched walk must not assume 4 levels: 1..=8 are legal for
        // hand-built programs (8 needs a wider LUT, so stop at 4 plus a
        // shallow case here; deeper trees are the panic test below).
        for levels in [1usize, 2, 3] {
            let tree = maddpipe_amm::bdt::BdtEncoder::from_parts(
                (0..levels).map(|l| l % SUBVECTOR_LEN).collect(),
                vec![0.0; (1 << levels) - 1],
            )
            .unwrap()
            .quantize(maddpipe_amm::quant::QuantScale::UNIT);
            let mut lut = [0i8; K];
            for (k, e) in lut.iter_mut().enumerate() {
                *e = (k as i8).wrapping_mul(17);
            }
            let program = MacroProgram {
                trees: vec![tree],
                luts: vec![vec![lut; 3]],
            };
            let tokens = random_tokens(1, 67, levels as u64);
            let golden = scalar_golden(&program, &tokens);
            let view = program.batched();
            for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
                assert_eq!(
                    view.evaluate_with(&tokens, kernel),
                    golden,
                    "{levels} levels, {kernel:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_lut_leaf_panics_like_the_scalar_spec() {
        // A 5-level tree reaches leaf 31 — off the end of the 16-entry
        // LUT. The scalar spec panics on the LUT index; both batched
        // kernels must panic too, not return garbage.
        let tree = maddpipe_amm::bdt::BdtEncoder::from_parts(vec![0; 5], vec![-128.0; 31])
            .unwrap()
            .quantize(maddpipe_amm::quant::QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[0i8; K]]],
        };
        let tokens = random_tokens(1, 3, 1);
        assert!(std::panic::catch_unwind(|| program.reference_output(&tokens[0])).is_err());
        let view = program.batched();
        for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
            let v = view.clone();
            let t = tokens.clone();
            assert!(
                std::panic::catch_unwind(move || v.evaluate_with(&t, kernel)).is_err(),
                "{kernel:?} must reject leaves beyond the LUT"
            );
        }
    }

    #[test]
    fn evaluate_into_fills_a_token_major_buffer() {
        let program = MacroProgram::random(4, 2, 21);
        let tokens = random_tokens(2, 66, 8);
        let golden = scalar_golden(&program, &tokens);
        let view = program.batched();
        let mut flat = vec![0i16; tokens.len() * view.ndec()];
        view.evaluate_into(&tokens, &mut flat);
        for (i, g) in golden.iter().enumerate() {
            assert_eq!(&flat[i * 4..(i + 1) * 4], g.as_slice(), "token {i}");
        }
    }

    #[test]
    #[ignore = "manual throughput probe: cargo test --release -p maddpipe-core batched::tests::throughput_probe -- --ignored --nocapture"]
    fn throughput_probe() {
        let program = MacroProgram::random(16, 32, 7);
        let tokens = random_tokens(32, 1024, 11);
        let view = program.batched();
        let rate = |name: &str, f: &mut dyn FnMut() -> Vec<Vec<i16>>| {
            let mut best = f64::MAX;
            for _ in 0..7 {
                let t0 = std::time::Instant::now();
                let out = f();
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                best = best.min(dt);
            }
            println!("{name:>10}: {:>12.0} tokens/s", tokens.len() as f64 / best);
        };
        rate("scalar", &mut || {
            tokens.iter().map(|t| program.reference_output(t)).collect()
        });
        rate("portable", &mut || {
            view.evaluate_with(&tokens, LaneKernel::Portable)
        });
        rate("bitsliced", &mut || {
            view.evaluate_with(&tokens, LaneKernel::BitSliced)
        });
    }

    #[test]
    fn default_kernel_follows_the_simd_feature() {
        let expected = if cfg!(feature = "simd") {
            LaneKernel::BitSliced
        } else {
            LaneKernel::Portable
        };
        assert_eq!(default_kernel(), expected);
    }
}
