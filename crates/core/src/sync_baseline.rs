//! Globally-clocked pipeline baseline — the ablation for the paper's
//! self-synchronous architecture claim (§III-A).
//!
//! The same datapath driven by a global clock must:
//!
//! 1. **clock at the worst case** — "in a typical clock-synchronized
//!    pipeline, the longest critical path among all stages determines the
//!    latency": the period is the *worst-corner, worst-data* block latency
//!    plus a safety margin, even when the fabricated die is typical and
//!    the data decides at the first comparator bit;
//! 2. **burn clock energy** — the clock tree plus the per-stage registers
//!    (the asynchronous design replaces these with RCD-strobed latches and
//!    handshake wires, and the dynamic encoder eliminates the internal
//!    registers entirely — the source of the paper's "95 % encoder energy
//!    reduction" vs the clocked Stella Nera).
//!
//! The model reuses the calibrated datapath numbers and adds those two
//! effects, so the async-vs-sync comparison isolates exactly the paper's
//! architectural contribution.

use crate::config::MacroConfig;
use crate::model::{MacroModel, PpaReport};
use core::fmt;
use maddpipe_tech::corner::{Corner, OperatingPoint};
use maddpipe_tech::units::{Farads, Hertz, Joules, Seconds};

/// Result of evaluating the clocked baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncReport {
    /// The margined clock period.
    pub period: Seconds,
    /// Clock frequency.
    pub frequency: Hertz,
    /// Throughput (fixed by the clock, data-independent).
    pub tops: f64,
    /// Energy per op including clock/register overhead.
    pub energy_per_op: Joules,
    /// Energy efficiency.
    pub tops_per_watt: f64,
}

impl fmt::Display for SyncReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clocked: {:.1} MHz, {:.3} TOPS, {:.1} TOPS/W",
            self.frequency.as_mega_hertz(),
            self.tops,
            self.tops_per_watt
        )
    }
}

/// The clocked-pipeline baseline model.
#[derive(Debug, Clone)]
pub struct SyncPipelineModel {
    cfg: MacroConfig,
    /// Clock margin on top of the worst-corner critical path (10 % default
    /// — optimistic for a real sign-off).
    pub margin: f64,
    /// Clock tree + register switched capacitance per block per cycle.
    pub cap_clock_per_block: Farads,
}

impl SyncPipelineModel {
    /// Creates the baseline with default margin (1.1×) and clock load.
    ///
    /// The clock load per block: 32 CSA flip-flops plus the encoder's
    /// pipeline registers (which the async design eliminates) plus the
    /// local tree — ≈ 150 fF of clocked capacitance per block.
    pub fn new(cfg: MacroConfig) -> SyncPipelineModel {
        SyncPipelineModel {
            cfg,
            margin: 1.1,
            cap_clock_per_block: Farads::from_femtos(150.0),
        }
    }

    /// The clock period: worst-data latency at the *slowest corner* at
    /// this supply, times the margin. A global clock cannot adapt to the
    /// fabricated corner, so every die runs at the SSG-signed-off speed.
    pub fn signed_off_period(&self) -> Seconds {
        let worst_corner_cfg = self
            .cfg
            .clone()
            .with_op(OperatingPoint::new(self.cfg.op.vdd, Corner::Ssg));
        let worst = MacroModel::new(worst_corner_cfg).block_latency_worst();
        worst.total() * self.margin
    }

    /// Evaluates the clocked design at the configured (actual) corner.
    pub fn evaluate(&self) -> SyncReport {
        let period = self.signed_off_period();
        let ops = self.cfg.ops_per_token() as f64;
        let tops = ops / period.value() / 1e12;
        // Datapath energy: decoders unchanged, but the clocked encoder
        // needs pipeline registers and per-classification threshold
        // readout — the paper credits the dynamic DLC encoder with a 95 %
        // reduction, i.e. the clocked equivalent costs ~20×. Plus the
        // clock tree itself.
        let model = MacroModel::new(self.cfg.clone());
        let e = model.block_energy();
        let datapath = e.decoder + e.encoder * 20.0 + e.ctrl;
        let tech = maddpipe_tech::Technology::n22();
        let clock = tech.switching_energy(self.cap_clock_per_block, self.cfg.op);
        let ops_per_block = (crate::config::OPS_PER_LOOKUP * self.cfg.ndec) as f64;
        let energy_per_op = (datapath + clock) / ops_per_block;
        SyncReport {
            period,
            frequency: period.to_frequency(),
            tops,
            energy_per_op,
            tops_per_watt: 1e3 / energy_per_op.as_femtos(),
        }
    }

    /// The matching asynchronous evaluation (same config) for side-by-side
    /// comparison.
    pub fn async_counterpart(&self) -> PpaReport {
        MacroModel::new(self.cfg.clone()).evaluate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_tech::units::Volts;

    fn cfg_at(corner: Corner) -> MacroConfig {
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), corner))
    }

    #[test]
    fn async_beats_sync_on_average_throughput_at_typical_corner() {
        let sync = SyncPipelineModel::new(cfg_at(Corner::Ttg));
        let s = sync.evaluate();
        let a = sync.async_counterpart();
        assert!(
            a.tops_avg() > s.tops,
            "async avg {} TOPS must beat clocked {} TOPS",
            a.tops_avg(),
            s.tops
        );
        // Even async worst-case data beats the margined SSG clock at TTG.
        assert!(a.tops_min >= s.tops * 0.95);
    }

    #[test]
    fn async_wins_energy_efficiency() {
        let sync = SyncPipelineModel::new(cfg_at(Corner::Ttg));
        let s = sync.evaluate();
        let a = sync.async_counterpart();
        assert!(
            a.tops_per_watt > s.tops_per_watt,
            "async {} TOPS/W vs clocked {}",
            a.tops_per_watt,
            s.tops_per_watt
        );
    }

    #[test]
    fn sync_throughput_is_corner_blind_but_async_adapts() {
        let sync_ttg = SyncPipelineModel::new(cfg_at(Corner::Ttg)).evaluate();
        let sync_ffg = SyncPipelineModel::new(cfg_at(Corner::Ffg)).evaluate();
        // The signed-off clock cannot exploit fast silicon.
        assert_eq!(sync_ttg.period, sync_ffg.period);
        let async_ttg = SyncPipelineModel::new(cfg_at(Corner::Ttg)).async_counterpart();
        let async_ffg = SyncPipelineModel::new(cfg_at(Corner::Ffg)).async_counterpart();
        assert!(async_ffg.tops_avg() > async_ttg.tops_avg());
    }

    #[test]
    fn margin_slows_the_clock() {
        let mut m = SyncPipelineModel::new(cfg_at(Corner::Ttg));
        let tight = m.evaluate().tops;
        m.margin = 1.3;
        let loose = m.evaluate().tops;
        assert!(loose < tight);
    }

    #[test]
    fn report_display() {
        let s = SyncPipelineModel::new(cfg_at(Corner::Ttg))
            .evaluate()
            .to_string();
        assert!(s.contains("TOPS/W"), "{s}");
    }
}
