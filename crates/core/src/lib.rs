//! # maddpipe-core
//!
//! The paper's contribution: the LUT-based multiplication-free all-digital
//! DNN accelerator with self-synchronous pipeline accumulation
//! (DAC 2025, arXiv:2506.16800).
//!
//! Two consistent views of the same machine:
//!
//! * [`model`] — a closed-form PPA model, structurally mirroring Fig. 2
//!   and calibrated against the paper's published sweeps ([`calib`]);
//!   drives the Fig. 6 / Fig. 7 / Table I / Table II experiments.
//! * [`macro_rtl`] — the complete event-driven netlist: [`dlc`] dual-rail
//!   comparators in a 15-node tournament ([`encoder`]), 10T-SRAM decoders
//!   with carry-save accumulation ([`decoder`], [`adder`]), four-phase
//!   handshake controllers ([`block`]), final ripple-carry adders and the
//!   output register. Functionally bit-exact against
//!   [`maddpipe_amm::MaddnessMatmul::decode_i16_wrapping`].
//!
//! ```
//! use maddpipe_core::prelude::*;
//!
//! let report = MacroModel::new(MacroConfig::paper_flagship()).evaluate();
//! assert!(report.tops_per_watt > 150.0); // the paper's 174 TOPS/W regime
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod batched;
pub mod block;
pub mod calib;
pub mod config;
pub mod decoder;
pub mod dlc;
pub mod encoder;
pub mod macro_rtl;
pub mod mapping;
pub mod model;
pub mod sync_baseline;

pub use batched::{BatchedProgram, LaneKernel, LANE};
pub use calib::Calibration;
pub use config::{MacroConfig, ACC_BITS, K, LEVELS, OPS_PER_LOOKUP, SUBVECTOR_LEN};
pub use macro_rtl::{AcceleratorRtl, MacroProgram, PipelinedRun, TokenError, TokenResult};
pub use mapping::{ConvMapping, ConvShape};
pub use model::{MacroModel, PpaReport};
pub use sync_baseline::{SyncPipelineModel, SyncReport};

/// Common imports.
pub mod prelude {
    pub use crate::batched::{BatchedProgram, LaneKernel, LANE};
    pub use crate::calib::Calibration;
    pub use crate::config::{MacroConfig, K, LEVELS, SUBVECTOR_LEN};
    pub use crate::dlc::{ripple_depth, to_offset_binary};
    pub use crate::macro_rtl::{
        AcceleratorRtl, MacroProgram, PipelinedRun, TokenError, TokenResult,
    };
    pub use crate::mapping::{ConvMapping, ConvShape};
    pub use crate::model::{
        AreaBreakdown, EnergyBreakdown, LatencyBreakdown, MacroModel, PpaReport,
    };
    pub use crate::sync_baseline::{SyncPipelineModel, SyncReport};
    pub use maddpipe_tech::prelude::*;
}
