//! Calibrated model constants and their derivation.
//!
//! Absolute delays/energies/areas of the paper come from a proprietary
//! 22 nm post-layout flow we cannot run, so the analytic model anchors a
//! small set of constants to the paper's published measurements and lets
//! the technology model (alpha-power delay scaling, `C·V²` energy scaling)
//! predict everything else. The anchors and the arithmetic:
//!
//! ## Latency (nominal = 0.8 V / TTG / 25 °C; scale to 0.5 V is ×5.62)
//!
//! * Paper block latency at 0.5 V, Ndec = 16: best 17.8 ns / worst 32.1 ns
//!   (Fig. 7, consistent with Table II's 31.2–56.2 MHz).
//! * Best and worst differ only in the DLC ripple depth (1 vs 8 bit stages
//!   per level, 4 levels): `32.1 − 17.8 = 4·7·t_bit(0.5 V)` →
//!   `t_bit = 0.51 ns` at 0.5 V → **91 ps nominal**.
//! * Fig. 7's encoder-dominates-latency breakdown (40–70 %) pins the DLC
//!   base (precharge-release + first stage) at **142 ps nominal**
//!   (0.8 ns at 0.5 V), giving an encoder worst case of 19.5 ns = 61 % of
//!   the block at 0.5 V.
//! * The remainder, decoder + control = 12.6 ns at 0.5 V (2.245 ns
//!   nominal), splits along the read path (wordline driver + WL wire +
//!   bitline discharge + CSA + RCD levels + GE pulse + latch + control)
//!   with values listed below. The WL-wire term grows linearly with `Ndec`
//!   and the block completion tree depth grows as `log₂ Ndec` — these two
//!   terms alone reproduce the paper's Ndec = 4 block latency
//!   (model 15.7/30.0 ns vs paper 16.1/30.4 ns) with no further tuning.
//!
//! ## Energy (at 0.5 V; scaling to other voltages via the tech model)
//!
//! * Decoder read: paper Table II gives 5.6 fJ/op × 18 ops per lookup =
//!   **101 fJ per decoder read** at 0.5 V.
//! * Encoder classification: 0.054 fJ/op × 18·16 = **15.6 fJ** at 0.5 V.
//! * Control/buffer: Fig. 7's 94.2 % decoder share at Ndec = 4 fixes
//!   encoder + control at ≈ 25 fJ → control ≈ **9.3 fJ**.
//! * These three numbers make the model land on 167.9 / 172.9 / 175.4 /
//!   176.9 TOPS/W for Ndec = 4/8/16/32 (paper: 167.5 / 171.8 / 174.0 /
//!   174.9) and 75.2 TOPS/W at 0.8 V (paper 75.1).
//!
//! ## Area
//!
//! * Paper: 0.20 mm² core at Ndec = 16 / NS = 32, decoder ≈ 83 % of it →
//!   **A_dec = 324 µm²** (16×8 10T-SRAM + 16 FA + 32 latches + RCD).
//! * Per-block overhead (encoder 645 µm² ≈ 15 DLCs at ~150 transistors
//!   each, control + input buffer 415 µm²) reproduces the Ndec = 4 decoder
//!   area share of 55 % (paper 56.9 %).
//!
//! Energies are stored as *effective switched capacitance* so the same
//! constants serve every voltage: `E(op) = C_eff·(V² + k_sc·V_nom·V)`.

use maddpipe_tech::units::{Area, Farads, Seconds};

/// The calibrated constants of the analytic model. All delays are nominal
/// (0.8 V / TTG / 25 °C); all energies are effective switched capacitances;
/// all areas are layout areas.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    // --- encoder timing ---
    /// DLC evaluation base delay (clock-in to first comparator stage).
    pub dlc_base: Seconds,
    /// Per-bit ripple delay of the DLC comparator chain.
    pub dlc_per_bit: Seconds,
    /// DLC precharge time.
    pub dlc_precharge: Seconds,
    // --- decoder timing ---
    /// Read wordline driver delay.
    pub rwl_driver: Seconds,
    /// Read wordline wire delay per attached decoder (linear in Ndec: the
    /// RWL runs across all decoders of the block).
    pub rwl_wire_per_decoder: Seconds,
    /// Bitline discharge (16-row column, full swing).
    pub bl_discharge: Seconds,
    /// Bitline precharge.
    pub bl_precharge: Seconds,
    /// Carry-save full-adder settle (sum arc).
    pub fa_delay: Seconds,
    /// Column RCD NAND delay.
    pub rcd_col: Seconds,
    /// Per-level delay of the NAND–NOR completion trees.
    pub rcd_tree_level: Seconds,
    /// GE pulse-generator delay (the "brief delay" of Fig. 5 B; must cover
    /// the FA settle plus latch setup).
    pub ge_pulse_delay: Seconds,
    /// GE pulse width.
    pub ge_pulse_width: Seconds,
    /// CSA output latch D→Q delay.
    pub latch_dq: Seconds,
    /// Handshake controller overhead per token (request-to-evaluate plus
    /// completion-to-request-out).
    pub ctrl_overhead: Seconds,
    /// Final ripple-carry adder settle (16 bits, carry chain).
    pub rca_settle: Seconds,
    // --- energy (effective switched capacitance) ---
    /// One decoder read: SRAM column cycle ×8, CSA, latches, RCD share.
    pub cap_decoder_read: Farads,
    /// One encoder classification: 4 active DLCs precharge/discharge.
    pub cap_encoder_classify: Farads,
    /// Control, handshake and input buffer per block-token.
    pub cap_ctrl_token: Farads,
    /// Per-decoder share of the RWL wire switching, per token.
    pub cap_rwl_per_decoder: Farads,
    // --- area ---
    /// One decoder: 16×8 10T-SRAM array + 16 FA + 32 latches + RCD.
    pub area_decoder: Area,
    /// One encoder: 15 DLCs with embedded threshold storage.
    pub area_encoder: Area,
    /// Per-block control: handshake controller, RWL drivers, input buffer.
    pub area_ctrl: Area,
    /// Global overhead: write drivers, RCAs, output registers.
    pub area_global: Area,
    /// Per-decoder share of global overhead that scales with Ndec (one RCA
    /// + output register per decoder chain).
    pub area_global_per_decoder: Area,
}

impl Calibration {
    /// The paper-calibrated constant set (see module docs for derivation).
    pub fn paper() -> Calibration {
        Calibration {
            dlc_base: Seconds::from_picos(142.0),
            dlc_per_bit: Seconds::from_picos(91.0),
            dlc_precharge: Seconds::from_picos(120.0),
            rwl_driver: Seconds::from_picos(150.0),
            rwl_wire_per_decoder: Seconds::from_picos(28.0),
            bl_discharge: Seconds::from_picos(800.0),
            bl_precharge: Seconds::from_picos(250.0),
            fa_delay: Seconds::from_picos(60.0),
            rcd_col: Seconds::from_picos(15.0),
            rcd_tree_level: Seconds::from_picos(20.0),
            ge_pulse_delay: Seconds::from_picos(250.0),
            ge_pulse_width: Seconds::from_picos(150.0),
            latch_dq: Seconds::from_picos(30.0),
            ctrl_overhead: Seconds::from_picos(350.0),
            rca_settle: Seconds::from_picos(700.0),
            // E(0.5 V) = C·(0.25 + 0.195·0.8·0.5) = 0.328·C
            // decoder: 101 fJ → 308 fF; encoder: 15.6 fJ → 47.5 fF;
            // ctrl: 9.3 fJ → 28.4 fF.
            cap_decoder_read: Farads::from_femtos(302.0),
            cap_encoder_classify: Farads::from_femtos(47.5),
            cap_ctrl_token: Farads::from_femtos(28.4),
            cap_rwl_per_decoder: Farads::from_femtos(6.0),
            area_decoder: Area::from_um2(324.0),
            area_encoder: Area::from_um2(645.0),
            area_ctrl: Area::from_um2(415.0),
            area_global: Area::from_um2(800.0),
            area_global_per_decoder: Area::from_um2(75.0),
        }
    }
}

impl Default for Calibration {
    fn default() -> Calibration {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_positive_and_sane() {
        let c = Calibration::paper();
        for (name, v) in [
            ("dlc_base", c.dlc_base),
            ("dlc_per_bit", c.dlc_per_bit),
            ("bl_discharge", c.bl_discharge),
            ("ctrl_overhead", c.ctrl_overhead),
            ("rca_settle", c.rca_settle),
        ] {
            assert!(v.value() > 0.0, "{name} must be positive");
            assert!(v.as_nanos() < 10.0, "{name} suspiciously long: {v}");
        }
        assert!(c.cap_decoder_read.0 > c.cap_encoder_classify.0);
        assert!(c.area_decoder.as_um2() > 0.0);
    }

    #[test]
    fn ge_pulse_covers_fa_settle_and_latch_setup() {
        // The Fig. 5 B "brief delay" must exceed the FA sum arc plus a
        // latch setup window, or the RCD-derived strobe would violate
        // setup — the property §III-C claims the design guarantees.
        let c = Calibration::paper();
        let needed = c.fa_delay + c.latch_dq;
        assert!(
            c.ge_pulse_delay > needed,
            "GE delay {} must exceed FA + setup {}",
            c.ge_pulse_delay,
            needed
        );
    }

    #[test]
    fn worst_minus_best_latency_matches_dlc_ripple() {
        // The entire best/worst spread is 4 levels × 7 extra bit stages.
        let c = Calibration::paper();
        let spread = 4.0 * 7.0 * c.dlc_per_bit.as_nanos();
        // At 0.5 V the paper spread is 32.1 − 17.8 = 14.3 ns; nominal is
        // 14.3 / 5.62 ≈ 2.54 ns.
        assert!((spread - 2.548).abs() < 0.05, "spread {spread} ns");
    }
}
