//! The LUT decoder: 16×8 10T-SRAM array, carry-save accumulate slice,
//! output latches, and per-decoder read-completion detection (Fig. 5 A).
//!
//! Read flow: one RWL asserts → the selected row's cells discharge one rail
//! of each column pair → each column's RCD NAND rises → the NAND–NOR tree
//! reports `RCD_LUT` → a pulse generator issues the latch-enable `GE`
//! "after a brief delay" (long enough for the full adders to settle) → the
//! carry-save outputs are captured for the next pipeline stage.

use crate::adder::build_csa_stage;
use crate::calib::Calibration;
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_sram::column::build_column_with_timing;
use maddpipe_sram::model::{ColumnHandle, SramModel, COLS};
use maddpipe_sram::rcd::build_completion_tree;
use maddpipe_tech::process::DriveKind;

/// Nets and handles exposed by a built decoder.
#[derive(Debug, Clone)]
pub struct DecoderPorts {
    /// Decoder-level read-completion signal (`RCD_LUT`).
    pub rcd_lut: NetId,
    /// The latch-enable pulse derived from `RCD_LUT`.
    pub ge: NetId,
    /// Latched carry-save sum bits (16, LSB first).
    pub s_out: Vec<NetId>,
    /// Latched carry-save carry bits (16, LSB first).
    pub c_out: Vec<NetId>,
    /// Per-column storage handles for LUT programming.
    pub handles: Vec<ColumnHandle>,
}

/// Builds one decoder.
///
/// * `rwl` — the 16 one-hot read wordlines from the block's encoder.
/// * `pche` — precharge control from the block controller.
/// * `s_prev`/`c_prev` — the upstream pipeline stage's latched carry-save
///   outputs (tie-low buses for the first block).
/// * `lut` — the initial LUT image (reprogrammable via the returned
///   handles).
///
/// # Panics
///
/// Panics if bus widths are wrong (checked by the callees).
#[allow(clippy::too_many_arguments)]
pub fn build_decoder(
    b: &mut CircuitBuilder,
    name: &str,
    rwl: &[NetId],
    pche: NetId,
    s_prev: &[NetId],
    c_prev: &[NetId],
    lut: &SramModel,
    cal: &Calibration,
    tie_low: NetId,
) -> DecoderPorts {
    let prev_domain = b.set_domain("decoder");
    let handles = lut.to_column_handles();
    let mut data_bits = Vec::with_capacity(COLS);
    let mut rcd_cols = Vec::with_capacity(COLS);
    for (c, handle) in handles.iter().enumerate() {
        let ports = build_column_with_timing(
            b,
            &format!("{name}.c{c}"),
            rwl,
            pche,
            handle.clone(),
            cal.bl_discharge,
            cal.bl_precharge,
        );
        // Differential read: RBLB discharges for a stored 1, so the data
        // bit is the inverted RBLB rail.
        data_bits.push(b.inv(&format!("{name}.d{c}"), ports.rblb));
        rcd_cols.push(ports.rcd_col);
    }
    let rcd_lut = build_completion_tree(b, &format!("{name}.rcd"), &rcd_cols);
    let ge_delay = b
        .library_mut()
        .delay(cal.ge_pulse_delay, DriveKind::Complementary);
    let ge_width = b
        .library_mut()
        .delay(cal.ge_pulse_width, DriveKind::Complementary);
    let ge = b.pulse_gen(&format!("{name}.gegen"), rcd_lut, ge_delay, ge_width);
    let (s_out, c_out) = build_csa_stage(
        b,
        &format!("{name}.csa"),
        &data_bits,
        s_prev,
        c_prev,
        ge,
        tie_low,
    );
    b.restore_domain(prev_domain);
    DecoderPorts {
        rcd_lut,
        ge,
        s_out,
        c_out,
        handles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::tie_low;
    use crate::config::ACC_BITS;
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_sim::logic::Logic;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::process::Technology;
    use maddpipe_tech::units::Volts;

    struct Dut {
        sim: Simulator,
        rwl: Vec<NetId>,
        pche: NetId,
        ports: DecoderPorts,
    }

    fn dut(lut: SramModel, vdd: f64, corner: Corner) -> Dut {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::new(Volts(vdd), corner));
        let mut b = CircuitBuilder::new(lib);
        let rwl: Vec<NetId> = (0..16).map(|i| b.input(format!("rwl{i}"))).collect();
        let pche = b.input("pche");
        let tie = tie_low(&mut b, "tie");
        let zeros: Vec<NetId> = (0..ACC_BITS).map(|_| tie).collect();
        let ports = build_decoder(
            &mut b,
            "dec",
            &rwl,
            pche,
            &zeros,
            &zeros,
            &lut,
            &Calibration::paper(),
            tie,
        );
        let mut sim = Simulator::new(b.build());
        for &w in &rwl {
            sim.poke(w, Logic::Low);
        }
        sim.poke(pche, Logic::High);
        sim.run_to_quiescence().unwrap();
        sim.poke(pche, Logic::Low);
        sim.run_to_quiescence().unwrap();
        Dut {
            sim,
            rwl,
            pche,
            ports,
        }
    }

    /// Performs one complete read cycle of `row`; returns the latched
    /// carry-save value (S + C<<1).
    fn read(d: &mut Dut, row: usize) -> i16 {
        d.sim.poke(d.pche, Logic::High);
        d.sim.run_to_quiescence().unwrap();
        d.sim.poke(d.pche, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        d.sim.poke(d.rwl[row], Logic::High);
        d.sim.run_to_quiescence().unwrap();
        let s = d.sim.bus_value(&d.ports.s_out).expect("S latched") as u16;
        let c = d.sim.bus_value(&d.ports.c_out).expect("C latched") as u16;
        d.sim.poke(d.rwl[row], Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        (s as i16).wrapping_add((c << 1) as i16)
    }

    #[test]
    fn reads_every_row_with_zero_partial_sum() {
        let mut lut = SramModel::new();
        let values: Vec<i8> = (0..16).map(|i| (i * 17 - 120) as i8).collect();
        for (r, &v) in values.iter().enumerate() {
            lut.write(r, v as u8);
        }
        let mut d = dut(lut, 0.8, Corner::Ttg);
        for (r, &v) in values.iter().enumerate() {
            assert_eq!(read(&mut d, r), v as i16, "row {r}");
        }
    }

    #[test]
    fn rcd_lut_rises_only_after_all_columns() {
        let mut lut = SramModel::new();
        lut.write(0, 0x5A);
        let mut d = dut(lut, 0.8, Corner::Ttg);
        d.sim.poke(d.pche, Logic::High);
        d.sim.run_to_quiescence().unwrap();
        assert_eq!(d.sim.value(d.ports.rcd_lut), Logic::Low, "precharged");
        d.sim.poke(d.pche, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        d.sim.poke(d.rwl[0], Logic::High);
        let t = d
            .sim
            .run_until_net(d.ports.rcd_lut, Logic::High)
            .unwrap()
            .expect("completion must arrive");
        assert!(t > maddpipe_sim::SimTime::ZERO);
    }

    #[test]
    fn ge_strobe_cleanly_latches_without_setup_violations() {
        let mut lut = SramModel::new();
        for r in 0..16 {
            lut.write(r, (r as u8) << 3);
        }
        // The §III-C claim: RCD-derived latch timing avoids setup
        // violations across PVT. Check the slowest and fastest corners.
        for (vdd, corner) in [(0.5, Corner::Ssg), (1.0, Corner::Ffg), (0.8, Corner::Ttg)] {
            let mut d = dut(lut.clone(), vdd, corner);
            for row in [0usize, 7, 15] {
                let _ = read(&mut d, row);
            }
            let setups: Vec<_> = d
                .sim
                .violations()
                .iter()
                .filter(|v| v.kind == maddpipe_sim::ViolationKind::Setup)
                .collect();
            assert!(
                setups.is_empty(),
                "{vdd} V / {corner}: setup violations: {setups:?}"
            );
        }
    }

    #[test]
    fn reprogramming_changes_decode() {
        let mut lut = SramModel::new();
        lut.write(2, 10);
        let mut d = dut(lut, 0.8, Corner::Ttg);
        assert_eq!(read(&mut d, 2), 10);
        // Rewrite through the handles (global write driver path).
        let new = SramModel::from_words({
            let mut w = [0u8; 16];
            w[2] = (-77i8) as u8;
            w
        });
        for (h, fresh) in d.ports.handles.iter().zip(new.to_column_handles()) {
            *h.borrow_mut() = *fresh.borrow();
        }
        assert_eq!(read(&mut d, 2), -77);
    }

    #[test]
    fn decoder_energy_dominates_its_own_gates() {
        let mut lut = SramModel::new();
        for r in 0..16 {
            lut.write(r, 0xFF);
        }
        let mut d = dut(lut, 0.5, Corner::Ttg);
        d.sim.reset_energy();
        let _ = read(&mut d, 5);
        let report = d.sim.energy_report();
        let dec = report.energy_of("decoder");
        assert!(dec.value() > 0.0);
        // Exclude the testbench's own stimulus nets ("top" domain): within
        // the circuit, the decoder is the only consumer here.
        let circuit_total = report.total() - report.energy_of("top");
        assert!(dec / circuit_total > 0.99, "{report}");
    }
}
