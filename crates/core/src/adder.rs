//! Accumulation arithmetic: the per-decoder carry-save stage and the final
//! ripple-carry adder (Fig. 2 / Fig. 5 A).
//!
//! The partial sum travels between pipeline stages in **carry-save form**
//! `(S, C)` with value `S + (C << 1)`: adding the next stage's LUT byte is
//! then a single full-adder delay per bit with *no carry propagation* —
//! this is what lets every compute block finish its accumulate in O(1)
//! rather than O(16), and why only one 16-bit RCA per chain is needed at
//! the very end.

use crate::calib::Calibration;
use crate::config::ACC_BITS;
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_sim::logic::Logic;

/// One carry-save accumulate stage: adds the sign-extended LUT data bits
/// onto the incoming `(s_prev, c_prev)` pair, then latches the result on
/// `ge` (the RCD-derived strobe).
///
/// `data` supplies the low bits (LSB first); the top bit is sign-extended
/// across the remaining accumulator width. Returns the latched
/// `(s_out, c_out)` buses, each [`ACC_BITS`] wide.
///
/// # Panics
///
/// Panics if `data` is empty or wider than the accumulator, or if the
/// incoming buses are not [`ACC_BITS`] wide.
pub fn build_csa_stage(
    b: &mut CircuitBuilder,
    name: &str,
    data: &[NetId],
    s_prev: &[NetId],
    c_prev: &[NetId],
    ge: NetId,
    tie_low: NetId,
) -> (Vec<NetId>, Vec<NetId>) {
    assert!(
        !data.is_empty() && data.len() <= ACC_BITS,
        "data width {} out of range",
        data.len()
    );
    assert_eq!(s_prev.len(), ACC_BITS, "s_prev must be {ACC_BITS} bits");
    assert_eq!(c_prev.len(), ACC_BITS, "c_prev must be {ACC_BITS} bits");
    let sign = *data.last().expect("data checked non-empty");
    let mut s_out = Vec::with_capacity(ACC_BITS);
    let mut c_out = Vec::with_capacity(ACC_BITS);
    for i in 0..ACC_BITS {
        let d_i = if i < data.len() { data[i] } else { sign };
        // The carry input at bit i is the previous stage's carry generated
        // at bit i−1 (weight i); bit 0 has no incoming carry.
        let c_in = if i == 0 { tie_low } else { c_prev[i - 1] };
        let (s, c) = b.full_adder(&format!("{name}.fa{i}"), d_i, s_prev[i], c_in);
        s_out.push(b.latch(&format!("{name}.ls{i}"), s, ge));
        c_out.push(b.latch(&format!("{name}.lc{i}"), c, ge));
    }
    (s_out, c_out)
}

/// The final 16-bit ripple-carry adder: collapses a carry-save pair into a
/// plain two's-complement word, `sum = S + (C << 1) mod 2^16`.
///
/// Returns the sum bits (LSB first). The carry out of the top bit is
/// dropped — 16-bit wrap-around, matching
/// [`MaddnessMatmul::decode_i16_wrapping`](maddpipe_amm::MaddnessMatmul::decode_i16_wrapping).
///
/// # Panics
///
/// Panics if the buses are not [`ACC_BITS`] wide.
pub fn build_rca(
    b: &mut CircuitBuilder,
    name: &str,
    s: &[NetId],
    c: &[NetId],
    tie_low: NetId,
) -> Vec<NetId> {
    assert_eq!(s.len(), ACC_BITS, "s must be {ACC_BITS} bits");
    assert_eq!(c.len(), ACC_BITS, "c must be {ACC_BITS} bits");
    let mut sum = Vec::with_capacity(ACC_BITS);
    let mut carry = tie_low;
    for i in 0..ACC_BITS {
        // C is shifted left by one: bit i adds c[i−1].
        let c_i = if i == 0 { tie_low } else { c[i - 1] };
        let (s_i, c_next) = b.full_adder(&format!("{name}.fa{i}"), s[i], c_i, carry);
        sum.push(s_i);
        carry = c_next;
    }
    sum
}

/// Builds a tie-low constant net (shared by CSA/RCA carry inputs).
pub fn tie_low(b: &mut CircuitBuilder, name: &str) -> NetId {
    b.tie(name, Logic::Low)
}

/// Reference semantics of the full carry-save pipeline, used by tests and
/// the functional model: accumulates sign-extended bytes with 16-bit
/// wrap-around, mirroring what the CSA chain + RCA compute.
///
/// ```
/// use maddpipe_core::adder::accumulate_wrapping;
/// assert_eq!(accumulate_wrapping(&[100, 100, 100]), 300);
/// assert_eq!(accumulate_wrapping(&[-128; 256]), (-128i32 * 256) as i16);
/// ```
pub fn accumulate_wrapping(bytes: &[i8]) -> i16 {
    bytes
        .iter()
        .fold(0i16, |acc, &b| acc.wrapping_add(b as i16))
}

/// The `Calibration` hook for the RCA settle time (how long the output
/// strobe must wait after the final request).
pub fn rca_settle(cal: &Calibration) -> maddpipe_tech::units::Seconds {
    cal.rca_settle
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_tech::corner::OperatingPoint;
    use maddpipe_tech::process::Technology;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(CellLibrary::new(
            Technology::n22(),
            OperatingPoint::default(),
        ))
    }

    /// Drives one CSA stage directly and checks `S + (C<<1)` arithmetic.
    #[test]
    fn csa_stage_preserves_carry_save_invariant() {
        let mut b = builder();
        let data = b.bus("d", 8);
        let s_prev = b.bus("sp", ACC_BITS);
        let c_prev = b.bus("cp", ACC_BITS);
        let ge = b.input("ge");
        let tie = tie_low(&mut b, "tie");
        let (s_out, c_out) = build_csa_stage(&mut b, "csa", &data, &s_prev, &c_prev, ge, tie);
        let mut sim = Simulator::new(b.build());
        let cases: Vec<(i8, i16, i16)> = vec![
            (0, 0, 0),
            (5, 10, 3),
            (-7, 100, -20),
            (127, 32000, 500),
            (-128, -32768, 0),
            (-1, -1, -1),
        ];
        for (d_val, s_val, c_val) in cases {
            sim.poke(ge, Logic::High); // transparent latches for this test
            sim.poke_bus(&data, d_val as u8 as u64);
            sim.poke_bus(&s_prev, s_val as u16 as u64);
            sim.poke_bus(&c_prev, c_val as u16 as u64);
            sim.run_to_quiescence().unwrap();
            let s = sim.bus_value(&s_out).expect("S known") as u16;
            let c = sim.bus_value(&c_out).expect("C known") as u16;
            let got = (s as i16).wrapping_add((c << 1) as i16);
            let expected = (s_val)
                .wrapping_add((c_val as u16).wrapping_shl(1) as i16)
                .wrapping_add(d_val as i16);
            assert_eq!(got, expected, "d={d_val} s={s_val} c={c_val}");
        }
    }

    #[test]
    fn rca_collapses_carry_save_pairs() {
        let mut b = builder();
        let s = b.bus("s", ACC_BITS);
        let c = b.bus("c", ACC_BITS);
        let tie = tie_low(&mut b, "tie");
        let sum = build_rca(&mut b, "rca", &s, &c, tie);
        let mut sim = Simulator::new(b.build());
        for (s_val, c_val) in [
            (0u16, 0u16),
            (1, 0),
            (0, 1),
            (0x7FFF, 0x4000),
            (0xFFFF, 0xFFFF),
            (0x1234, 0x0ABC),
        ] {
            sim.poke_bus(&s, s_val as u64);
            sim.poke_bus(&c, c_val as u64);
            sim.run_to_quiescence().unwrap();
            let got = sim.bus_value(&sum).expect("sum known") as u16;
            let expected = s_val.wrapping_add(c_val.wrapping_shl(1));
            assert_eq!(got, expected, "s={s_val:#x} c={c_val:#x}");
        }
    }

    /// Chains two CSA stages and an RCA end to end: the result must equal
    /// the wrapping sum of two sign-extended bytes.
    #[test]
    fn two_stage_chain_sums_bytes() {
        let mut b = builder();
        let d0 = b.bus("d0", 8);
        let d1 = b.bus("d1", 8);
        let ge = b.input("ge");
        let tie = tie_low(&mut b, "tie");
        let zeros: Vec<NetId> = (0..ACC_BITS).map(|_| tie).collect();
        let (s0, c0) = build_csa_stage(&mut b, "st0", &d0, &zeros, &zeros, ge, tie);
        let (s1, c1) = build_csa_stage(&mut b, "st1", &d1, &s0, &c0, ge, tie);
        let sum = build_rca(&mut b, "rca", &s1, &c1, tie);
        let mut sim = Simulator::new(b.build());
        sim.poke(ge, Logic::High);
        for (a, v) in [(5i8, -3i8), (127, 127), (-128, -128), (-1, 1), (100, 27)] {
            sim.poke_bus(&d0, a as u8 as u64);
            sim.poke_bus(&d1, v as u8 as u64);
            sim.run_to_quiescence().unwrap();
            let got = sim.bus_value(&sum).expect("sum known") as u16 as i16;
            assert_eq!(got, accumulate_wrapping(&[a, v]), "{a} + {v}");
        }
    }

    #[test]
    fn latches_hold_when_ge_low() {
        let mut b = builder();
        let data = b.bus("d", 8);
        let tie = tie_low(&mut b, "tie");
        let zeros: Vec<NetId> = (0..ACC_BITS).map(|_| tie).collect();
        let ge = b.input("ge");
        let (s_out, _) = build_csa_stage(&mut b, "csa", &data, &zeros, &zeros, ge, tie);
        let mut sim = Simulator::new(b.build());
        sim.poke(ge, Logic::High);
        sim.poke_bus(&data, 42);
        sim.run_to_quiescence().unwrap();
        sim.poke(ge, Logic::Low);
        sim.run_to_quiescence().unwrap();
        sim.poke_bus(&data, 99);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.bus_value(&s_out), Some(42), "latched S must hold");
    }

    #[test]
    fn accumulate_wrapping_reference() {
        assert_eq!(accumulate_wrapping(&[]), 0);
        assert_eq!(accumulate_wrapping(&[1, 2, 3]), 6);
        assert_eq!(accumulate_wrapping(&[127; 300]), (127i32 * 300) as i16);
    }

    #[test]
    #[should_panic(expected = "data width")]
    fn empty_data_rejected() {
        let mut b = builder();
        let tie = tie_low(&mut b, "tie");
        let zeros: Vec<NetId> = (0..ACC_BITS).map(|_| tie).collect();
        let ge = b.input("ge");
        let _ = build_csa_stage(&mut b, "csa", &[], &zeros, &zeros, ge, tie);
    }
}
