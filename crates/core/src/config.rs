//! Macro configuration: the paper's two architectural knobs plus the
//! electrical operating point.

use crate::calib::Calibration;
use core::fmt;
use maddpipe_tech::corner::{Corner, OperatingPoint};
use maddpipe_tech::units::Volts;
use maddpipe_tech::variation::Mismatch;

/// BDT depth of the hardware encoder (fixed by the paper: 4 levels).
pub const LEVELS: usize = 4;

/// Prototypes per subspace / rows per LUT (2^LEVELS = 16).
pub const K: usize = 1 << LEVELS;

/// Subvector length consumed per compute block (a 3×3 kernel patch).
pub const SUBVECTOR_LEN: usize = 9;

/// Accumulator width in bits (16-bit CSA chain + 16-bit RCA).
pub const ACC_BITS: usize = 16;

/// Equivalent arithmetic operations performed by one LUT read + accumulate:
/// a 9-element dot product = 9 multiplies + 9 adds.
pub const OPS_PER_LOOKUP: usize = 2 * SUBVECTOR_LEN;

/// Configuration of one accelerator macro.
///
/// `ndec` (decoders per compute block = weight kernels processed in
/// parallel) and `ns` (pipeline stages = input channels processed in
/// parallel) are the two adjustable parameters of §III-A; the paper's
/// flagship configuration is `ndec = 16`, `ns = 32`.
///
/// ```
/// use maddpipe_core::config::MacroConfig;
///
/// let cfg = MacroConfig::paper_flagship();
/// assert_eq!((cfg.ndec, cfg.ns), (16, 32));
/// assert_eq!(cfg.sram_bits(), 64 * 1024); // "including 64kb SRAM"
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacroConfig {
    /// Decoders per compute block (`Ndec`).
    pub ndec: usize,
    /// Serially connected compute blocks (`NS`).
    pub ns: usize,
    /// Electrical operating point.
    pub op: OperatingPoint,
    /// Local-mismatch model used when sampling per-instance delays.
    pub mismatch: Mismatch,
    /// Model constants (defaults to the paper calibration).
    pub calibration: Calibration,
}

impl MacroConfig {
    /// Creates a configuration at the given sizes and the paper's headline
    /// operating point (0.5 V / TTG / 25 °C).
    ///
    /// # Panics
    ///
    /// Panics if `ndec` or `ns` is zero.
    pub fn new(ndec: usize, ns: usize) -> MacroConfig {
        assert!(ndec > 0, "ndec must be at least 1");
        assert!(ns > 0, "ns must be at least 1");
        MacroConfig {
            ndec,
            ns,
            op: OperatingPoint::new(Volts(0.5), Corner::Ttg),
            mismatch: Mismatch::none(),
            calibration: Calibration::paper(),
        }
    }

    /// The paper's flagship macro: `Ndec = 16`, `NS = 32`.
    pub fn paper_flagship() -> MacroConfig {
        MacroConfig::new(16, 32)
    }

    /// The Fig. 6 sweep configuration: `Ndec = 4`, `NS = 4`.
    pub fn fig6() -> MacroConfig {
        MacroConfig::new(4, 4)
    }

    /// Replaces the operating point.
    #[must_use]
    pub fn with_op(mut self, op: OperatingPoint) -> MacroConfig {
        self.op = op;
        self
    }

    /// Replaces the mismatch model.
    #[must_use]
    pub fn with_mismatch(mut self, mm: Mismatch) -> MacroConfig {
        self.mismatch = mm;
        self
    }

    /// Replaces the calibration constants.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> MacroConfig {
        self.calibration = calibration;
        self
    }

    /// Total SRAM capacity in bits: `ndec · ns` LUTs of 16×8.
    pub fn sram_bits(&self) -> usize {
        self.ndec * self.ns * K * 8
    }

    /// Equivalent operations per pipeline beat (one token traversing one
    /// block performs `ndec` lookups; the macro completes `ndec · ns`
    /// lookups per token).
    pub fn ops_per_token(&self) -> usize {
        OPS_PER_LOOKUP * self.ndec * self.ns
    }
}

impl Default for MacroConfig {
    fn default() -> MacroConfig {
        MacroConfig::paper_flagship()
    }
}

impl fmt::Display for MacroConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "macro Ndec={} NS={} @ {} ({} kb SRAM)",
            self.ndec,
            self.ns,
            self.op,
            self.sram_bits() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flagship_matches_headline_numbers() {
        let cfg = MacroConfig::paper_flagship();
        assert_eq!(cfg.sram_bits(), 65_536);
        assert_eq!(cfg.ops_per_token(), 18 * 16 * 32);
    }

    #[test]
    fn builders_compose() {
        let cfg = MacroConfig::new(4, 4)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ffg))
            .with_mismatch(Mismatch::new(0.02, 9));
        assert_eq!(cfg.op.vdd, Volts(0.8));
        assert_eq!(cfg.mismatch.sigma(), 0.02);
    }

    #[test]
    #[should_panic(expected = "ndec must be at least 1")]
    fn zero_ndec_rejected() {
        let _ = MacroConfig::new(0, 4);
    }

    #[test]
    fn ops_constants_match_paper_arithmetic() {
        // 56.2 MHz × 18·16·32 ops = 0.518 TOPS — the paper's best-case
        // 0.5 V throughput of 0.51 TOPS.
        let cfg = MacroConfig::paper_flagship();
        let tops = 56.2e6 * cfg.ops_per_token() as f64 / 1e12;
        assert!((tops - 0.518).abs() < 0.002, "{tops}");
    }

    #[test]
    fn display_mentions_the_knobs() {
        let s = MacroConfig::fig6().to_string();
        assert!(s.contains("Ndec=4") && s.contains("NS=4"), "{s}");
    }
}
