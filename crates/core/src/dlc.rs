//! The dual-rail dynamic-logic comparator (DLC) — Fig. 4 of the paper.
//!
//! Eight 1-bit dynamic comparator stages in series compare an 8-bit input
//! `x` against a stored threshold `t`. During precharge (`clk = 0`) both
//! output rails `YP`/`YN` sit at VDD; on evaluation (`clk = 1`) exactly one
//! rail discharges: `YN` for `x ≥ t`, `YP` for `x < t`.
//!
//! The defining property reproduced here is the **data-dependent delay**:
//! a stage can resolve the comparison as soon as its bit pair differs, so
//! the discharge path length equals the index of the first differing bit
//! from the MSB (Fig. 4 D/E — best case decided at the MSB, worst case
//! `x = t` rippling through all eight stages). That spread is what makes
//! the encoder latency input-dependent and motivates the self-synchronous
//! pipeline.
//!
//! Signedness: activations are signed INT8, but a chain of unsigned bit
//! comparators orders by raw bit pattern. The standard fix — used here and
//! noted for the hardware — is offset-binary coding (`x ⊕ 0x80`), under
//! which unsigned comparison of codes equals signed comparison of values.

use maddpipe_sim::cell::{Cell, EvalCtx};
use maddpipe_sim::logic::Logic;
use maddpipe_sim::time::SimTime;

/// Converts a signed activation/threshold to its offset-binary code.
///
/// ```
/// use maddpipe_core::dlc::to_offset_binary;
/// assert_eq!(to_offset_binary(0), 0x80);
/// assert_eq!(to_offset_binary(-128), 0x00);
/// assert_eq!(to_offset_binary(127), 0xFF);
/// ```
#[inline]
pub fn to_offset_binary(x: i8) -> u8 {
    (x as u8) ^ 0x80
}

/// Number of comparator stages that conduct before the comparison
/// resolves: the 1-based index of the first differing bit from the MSB,
/// or 8 when `x == t` (the Fig. 4 E worst case).
///
/// ```
/// use maddpipe_core::dlc::ripple_depth;
/// assert_eq!(ripple_depth(0b1000_0000, 0b0000_0000), 1); // MSB differs
/// assert_eq!(ripple_depth(0b0101_0101, 0b0101_0100), 8); // LSB decides
/// assert_eq!(ripple_depth(0x7F, 0x7F), 8);               // equal: full walk
/// ```
#[inline]
pub fn ripple_depth(x: u8, t: u8) -> usize {
    let diff = x ^ t;
    if diff == 0 {
        8
    } else {
        diff.leading_zeros() as usize + 1
    }
}

/// The DLC as an event-driven cell.
///
/// * Inputs: pin 0 = `clk` (low → precharge, high → evaluate), pins
///   `1..=8` = the offset-binary input bits, LSB first.
/// * Outputs: pin 0 = `YP` (discharges for `x < t`), pin 1 = `YN`
///   (discharges for `x ≥ t`).
///
/// The threshold is programmed at construction (the hardware stores it in
/// per-stage 6T cells).
#[derive(Debug)]
pub struct DlcCell {
    threshold: u8,
    t_base: SimTime,
    t_per_bit: SimTime,
    t_precharge: SimTime,
}

impl DlcCell {
    /// Creates a comparator holding offset-binary threshold `threshold`.
    pub fn new(
        threshold: u8,
        t_base: SimTime,
        t_per_bit: SimTime,
        t_precharge: SimTime,
    ) -> DlcCell {
        DlcCell {
            threshold,
            t_base,
            t_per_bit,
            t_precharge,
        }
    }

    /// The stored offset-binary threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }
}

impl Cell for DlcCell {
    fn num_inputs(&self) -> usize {
        9
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let clk = ctx.input(0);
        match clk {
            Logic::Low => {
                // Precharge both rails.
                ctx.drive(0, Logic::High, self.t_precharge);
                ctx.drive(1, Logic::High, self.t_precharge);
            }
            Logic::High => {
                // Evaluate only on the clock edge: input wiggles while
                // evaluated are ignored (the rails already discharged).
                if !ctx.is_edge(0, Logic::High) && ctx.trigger().is_some() {
                    return;
                }
                let mut x = 0u8;
                for bit in 0..8 {
                    match ctx.input(1 + bit).to_bool() {
                        Some(true) => x |= 1 << bit,
                        Some(false) => {}
                        None => {
                            // Unknown operand: both rails unknown.
                            ctx.drive(0, Logic::X, self.t_base);
                            ctx.drive(1, Logic::X, self.t_base);
                            return;
                        }
                    }
                }
                let depth = ripple_depth(x, self.threshold);
                let delay =
                    self.t_base + SimTime::from_femtos(self.t_per_bit.as_femtos() * depth as u64);
                let ge = x >= self.threshold;
                let pin = if ge { 1 } else { 0 };
                ctx.drive(pin, Logic::Low, delay);
            }
            Logic::X => {
                ctx.drive(0, Logic::X, self.t_precharge);
                ctx.drive(1, Logic::X, self.t_precharge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_sim::circuit::{CircuitBuilder, NetId};
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_sim::logic::u64_to_bits;
    use maddpipe_tech::corner::OperatingPoint;
    use maddpipe_tech::process::Technology;

    struct Dut {
        sim: Simulator,
        clk: NetId,
        x_bits: Vec<NetId>,
        yp: NetId,
        yn: NetId,
    }

    fn dut(threshold: u8) -> Dut {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let clk = b.input("clk");
        let x_bits = b.bus("x", 8);
        let yp = b.net("yp");
        let yn = b.net("yn");
        let cell = DlcCell::new(
            threshold,
            SimTime::from_picos(142.0),
            SimTime::from_picos(91.0),
            SimTime::from_picos(120.0),
        );
        let mut inputs = vec![clk];
        inputs.extend(&x_bits);
        b.add_cell("dlc", Box::new(cell), &inputs, &[yp, yn]);
        let sim = Simulator::new(b.build());
        Dut {
            sim,
            clk,
            x_bits,
            yp,
            yn,
        }
    }

    /// Runs one precharge→evaluate cycle; returns (yp, yn, eval_latency).
    fn compare(d: &mut Dut, x: u8) -> (Logic, Logic, SimTime) {
        d.sim.poke(d.clk, Logic::Low);
        for (net, bit) in d.x_bits.iter().zip(u64_to_bits(x as u64, 8)) {
            d.sim.poke(*net, bit);
        }
        d.sim.run_to_quiescence().unwrap();
        let t0 = d.sim.now();
        d.sim.poke(d.clk, Logic::High);
        d.sim.run_to_quiescence().unwrap();
        (d.sim.value(d.yp), d.sim.value(d.yn), d.sim.now().since(t0))
    }

    #[test]
    fn exhaustive_comparison_against_integers() {
        // Sampled exhaustively over a grid (full 65k cross product would be
        // slow in debug builds; the grid covers every ripple depth).
        let thresholds = [0u8, 1, 0x7F, 0x80, 0x81, 0xAA, 0xFE, 0xFF];
        let xs = [0u8, 1, 2, 0x3F, 0x7E, 0x7F, 0x80, 0x81, 0xAA, 0xAB, 0xFF];
        for &t in &thresholds {
            let mut d = dut(t);
            for &x in &xs {
                let (yp, yn, _) = compare(&mut d, x);
                if x >= t {
                    assert_eq!((yp, yn), (Logic::High, Logic::Low), "x={x} t={t}");
                } else {
                    assert_eq!((yp, yn), (Logic::Low, Logic::High), "x={x} t={t}");
                }
            }
        }
    }

    #[test]
    fn delay_tracks_first_differing_bit() {
        let t = 0b0111_1111u8;
        let mut d = dut(t);
        // x = 0xFF differs at the MSB: fastest.
        let (.., fast) = compare(&mut d, 0xFF);
        // x = t: equal, slowest (8 stages).
        let (.., slow) = compare(&mut d, t);
        assert!(slow > fast, "equal operands must be slowest");
        let delta = slow.as_picos() - fast.as_picos();
        // 7 extra stages × 91 ps nominal (scaled to the default op ≈ 1.0).
        assert!((delta - 7.0 * 91.0).abs() < 20.0, "delta {delta} ps");
    }

    #[test]
    fn ripple_depth_edge_cases() {
        assert_eq!(ripple_depth(0, 0), 8);
        assert_eq!(ripple_depth(0xFF, 0xFF), 8);
        assert_eq!(ripple_depth(0x80, 0x7F), 1);
        assert_eq!(ripple_depth(0x01, 0x00), 8);
        for x in 0..=255u8 {
            for t in [0u8, 0x7F, 0x80, 0xFF] {
                let d = ripple_depth(x, t);
                assert!((1..=8).contains(&d));
            }
        }
    }

    #[test]
    fn offset_binary_preserves_signed_order() {
        let mut prev = None;
        for v in -128i8..=127 {
            let code = to_offset_binary(v);
            if let Some(p) = prev {
                assert!(code > p, "offset-binary must be strictly increasing");
            }
            prev = Some(code);
        }
    }

    #[test]
    fn rails_precharge_between_cycles() {
        let mut d = dut(0x42);
        let (_, yn, _) = compare(&mut d, 0xF0);
        assert_eq!(yn, Logic::Low);
        d.sim.poke(d.clk, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        assert_eq!(d.sim.value(d.yp), Logic::High);
        assert_eq!(d.sim.value(d.yn), Logic::High);
    }

    #[test]
    fn unknown_operand_poisons_rails() {
        let mut d = dut(0x42);
        d.sim.poke(d.clk, Logic::Low);
        d.sim.run_to_quiescence().unwrap();
        // Leave bit 3 at X.
        for (i, net) in d.x_bits.iter().enumerate() {
            if i != 3 {
                d.sim.poke(*net, Logic::Low);
            }
        }
        d.sim.run_to_quiescence().unwrap();
        d.sim.poke(d.clk, Logic::High);
        d.sim.run_to_quiescence().unwrap();
        assert_eq!(d.sim.value(d.yp), Logic::X);
        assert_eq!(d.sim.value(d.yn), Logic::X);
    }
}
