//! Uniform input/output containers shared by every backend.
//!
//! A [`TokenBatch`] is the unit of work: a non-empty, ordered list of
//! tokens, each one INT8 subvector per pipeline stage. A [`BatchResult`]
//! mirrors it one [`TokenObservation`] per token, in submission order —
//! the alignment every composition (sessions accumulating statistics,
//! the sharded backend stitching output slices) relies on. Outputs are
//! always present and bit-identical across backends; `latency`/`energy`
//! are `Option`s because only backends that measure or model them report
//! them. Batches never imply a macro shape: backends check each token
//! against their own program and answer with typed
//! [`BackendError`] values.

use crate::error::BackendError;
use maddpipe_amm::quant::QuantScale;
use maddpipe_core::config::SUBVECTOR_LEN;
use maddpipe_tech::units::{Joules, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One inference token: one INT8 subvector per pipeline stage.
pub type Token = Vec<[i8; SUBVECTOR_LEN]>;

/// A non-empty batch of tokens, the unit of work every
/// [`MacroBackend`](crate::backend::MacroBackend) accepts.
///
/// The batch itself does not know the macro shape; backends check each
/// token against their program and report
/// [`BackendError::ShapeMismatch`] with the offending index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBatch {
    tokens: Vec<Token>,
}

impl TokenBatch {
    /// Wraps a non-empty token list.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::EmptyBatch`] for an empty list.
    pub fn new(tokens: Vec<Token>) -> Result<TokenBatch, BackendError> {
        if tokens.is_empty() {
            return Err(BackendError::EmptyBatch);
        }
        Ok(TokenBatch { tokens })
    }

    /// A batch of one token.
    pub fn single(token: Token) -> TokenBatch {
        TokenBatch {
            tokens: vec![token],
        }
    }

    /// `count` random tokens for an `ns`-stage macro (property tests and
    /// benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn random(ns: usize, count: usize, seed: u64) -> TokenBatch {
        assert!(count > 0, "a batch needs at least one token");
        let mut rng = StdRng::seed_from_u64(seed);
        let tokens = (0..count)
            .map(|_| {
                (0..ns)
                    .map(|_| {
                        let mut x = [0i8; SUBVECTOR_LEN];
                        for v in x.iter_mut() {
                            *v = rng.gen_range(-128i32..=127) as i8;
                        }
                        x
                    })
                    .collect()
            })
            .collect();
        TokenBatch { tokens }
    }

    /// Quantises float feature rows into tokens: each row is split into
    /// `ns` consecutive subvectors of up to [`SUBVECTOR_LEN`] elements
    /// (shorter tails zero-padded) and quantised with `scale` — the glue
    /// every caller of the macro used to hand-roll.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::EmptyBatch`] when `rows` is empty, and
    /// [`BackendError::ShapeMismatch`] when a row carries more features
    /// than `ns` subvectors can hold — truncating silently would compute
    /// outputs on a prefix of the row.
    pub fn from_f32_rows(
        rows: &[&[f32]],
        ns: usize,
        scale: QuantScale,
    ) -> Result<TokenBatch, BackendError> {
        let tokens = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let needed = row.len().div_ceil(SUBVECTOR_LEN);
                if needed > ns {
                    return Err(BackendError::ShapeMismatch {
                        token: i,
                        expected: ns,
                        got: needed,
                    });
                }
                let mut token = vec![[0i8; SUBVECTOR_LEN]; ns];
                for (s, chunk) in row.chunks(SUBVECTOR_LEN).enumerate() {
                    for (e, &v) in chunk.iter().enumerate() {
                        token[s][e] = scale.quantize(v);
                    }
                }
                Ok(token)
            })
            .collect::<Result<Vec<Token>, BackendError>>()?;
        TokenBatch::new(tokens)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Always `false` — the constructors reject empty batches.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The tokens, in submission order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Consumes the batch, yielding the tokens in submission order —
    /// what the serving queue uses to coalesce submissions into
    /// micro-batches without copying token data.
    pub fn into_tokens(self) -> Vec<Token> {
        self.tokens
    }

    /// Checks that every token provides one subvector per stage.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] naming the first offending
    /// token.
    pub fn check_shape(&self, expected_ns: usize) -> Result<(), BackendError> {
        for (i, token) in self.tokens.iter().enumerate() {
            if token.len() != expected_ns {
                return Err(BackendError::ShapeMismatch {
                    token: i,
                    expected: expected_ns,
                    got: token.len(),
                });
            }
        }
        Ok(())
    }
}

/// What one backend observed about one token. Outputs are always present;
/// latency and energy only when the backend actually measures or models
/// them (the functional backend reports neither).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenObservation {
    /// One 16-bit result per decoder chain — bit-exact across backends.
    pub outputs: Vec<i16>,
    /// Request-to-capture latency in physical time, when measured. In
    /// pipelined RTL mode this includes time queued behind earlier tokens.
    pub latency: Option<Seconds>,
    /// Switching energy attributed to this token, when measured. Pipelined
    /// RTL streams only report the batch aggregate.
    pub energy: Option<Joules>,
}

/// The result of running one [`TokenBatch`] through one backend.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Which backend produced this result (for logs and reports).
    pub backend: &'static str,
    /// One observation per input token, in submission order.
    pub tokens: Vec<TokenObservation>,
    /// Simulated/modelled wall time for the whole batch, when available.
    pub makespan: Option<Seconds>,
    /// Total switching energy of the batch, when measured.
    pub energy: Option<Joules>,
}

impl BatchResult {
    /// The per-token output vectors, in submission order.
    pub fn outputs(&self) -> Vec<&[i16]> {
        self.tokens.iter().map(|t| t.outputs.as_slice()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batches_are_rejected() {
        assert_eq!(TokenBatch::new(vec![]), Err(BackendError::EmptyBatch));
        assert_eq!(
            TokenBatch::from_f32_rows(&[], 2, QuantScale::UNIT),
            Err(BackendError::EmptyBatch)
        );
    }

    #[test]
    fn shape_check_names_the_offender() {
        let batch = TokenBatch::new(vec![
            vec![[0i8; SUBVECTOR_LEN]; 2],
            vec![[0i8; SUBVECTOR_LEN]; 3],
        ])
        .unwrap();
        assert_eq!(
            batch.check_shape(2),
            Err(BackendError::ShapeMismatch {
                token: 1,
                expected: 2,
                got: 3,
            })
        );
        assert!(batch.check_shape(2).is_err());
    }

    #[test]
    fn f32_rows_quantize_like_the_hand_rolled_glue() {
        let row: Vec<f32> = (0..18).map(|i| i as f32 - 9.0).collect();
        let scale = QuantScale::UNIT;
        let batch = TokenBatch::from_f32_rows(&[&row], 2, scale).unwrap();
        let token = &batch.tokens()[0];
        assert_eq!(token.len(), 2);
        for (s, chunk) in row.chunks(SUBVECTOR_LEN).enumerate() {
            for (e, &v) in chunk.iter().enumerate() {
                assert_eq!(token[s][e], scale.quantize(v));
            }
        }
    }

    #[test]
    fn oversized_rows_are_rejected_not_truncated() {
        let row: Vec<f32> = vec![1.0; 3 * SUBVECTOR_LEN];
        assert_eq!(
            TokenBatch::from_f32_rows(&[&row], 2, QuantScale::UNIT),
            Err(BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            })
        );
        // A row that exactly fills, or underfills, its subvectors is fine.
        assert!(TokenBatch::from_f32_rows(&[&row], 3, QuantScale::UNIT).is_ok());
        assert!(TokenBatch::from_f32_rows(&[&row[..5]], 3, QuantScale::UNIT).is_ok());
    }

    #[test]
    fn random_batches_are_deterministic() {
        let a = TokenBatch::random(3, 4, 7);
        let b = TokenBatch::random(3, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.tokens()[0].len(), 3);
    }
}
