//! Replica-pool serving: N backend replicas behind one scheduler.
//!
//! A [`ServeQueue`](crate::queue::ServeQueue) keeps one dispatcher
//! feeding one backend, which makes host-side queueing the bottleneck
//! long before the macro is. A [`ReplicaPool`] generalises it: *N*
//! replicas, each built on its own thread from a
//! [`BackendFactory`] (so non-`Send` netlists replicate exactly like
//! they serve), all pulling from one shared submission queue. This is
//! the data-parallel axis, complementary to the
//! [`ShardedBackend`](crate::sharded::ShardedBackend)'s model-parallel
//! output-channel sharding: shards split one batch across macros,
//! replicas spread *different* micro-batches across whole macros.
//!
//! The scheduler earns its keep beyond FIFO:
//!
//! * **Data-parallel spreading.** Every idle replica waits on the same
//!   queue; whichever wakes first takes the next micro-batch, so
//!   independent micro-batches run concurrently on different replicas.
//! * **Per-client fairness.** Under [`Fairness::RoundRobin`], requests
//!   are tagged with a submitter key
//!   ([`SubmitOptions::with_client`]) and micro-batches are filled by
//!   cycling clients — one hot client submitting a deep backlog cannot
//!   starve the others. [`Fairness::Fifo`] preserves strict arrival
//!   order (the single-queue behaviour).
//! * **Deadline-aware batching.** Each request's dispatch deadline is
//!   the smaller of the policy's [`QueuePolicy::max_linger`] and its
//!   own [`SubmitOptions::with_deadline`] latency target; a replica
//!   ships a partial micro-batch as soon as the earliest pending
//!   deadline passes instead of lingering for a fuller batch.
//! * **Typed backpressure on two axes.**
//!   [`QueuePolicy::max_depth`] bounds unresolved *requests* and
//!   [`QueuePolicy::max_pending_tokens`] bounds queued *tokens*, each
//!   rejecting with its own [`QueueLimit`] inside
//!   [`BackendError::QueueFull`].
//!
//! The waiting-room discipline mirrors the single queue: whole requests
//! are never split across micro-batches or replicas, tickets always
//! resolve (results, a typed backend error, or
//! [`BackendError::QueueClosed`] if the pool dies first), and a replica
//! panic closes the whole pool rather than serving degraded.
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
//! let pool = Session::builder(cfg)
//!     .program(program.clone())
//!     .into_pool(ServePolicy::default().with_replicas(2))
//!     .unwrap();
//! std::thread::scope(|s| {
//!     for client in 0..4u64 {
//!         let pool = &pool;
//!         let program = &program;
//!         s.spawn(move || {
//!             let batch = TokenBatch::random(2, 8, client);
//!             let opts = SubmitOptions::default().with_client(client);
//!             let reply = pool.submit_with(batch.clone(), opts).unwrap();
//!             let reply = reply.wait().expect("served");
//!             assert!(reply.replica < 2);
//!             assert_eq!(
//!                 reply.result.tokens[0].outputs,
//!                 program.reference_output(&batch.tokens()[0]),
//!             );
//!         });
//!     }
//! });
//! let stats = pool.shutdown();
//! assert_eq!(stats.tokens(), 32);
//! assert_eq!(stats.replica_dispatches().len(), 2);
//! ```

use crate::backend::{BackendFactory, MacroBackend};
use crate::batch::{BatchResult, Token, TokenBatch};
use crate::error::{BackendError, QueueLimit};
use crate::queue::{BatchTicket, QueuePolicy, QueueReply, TicketCell};
use crate::session::SessionStats;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`ReplicaPool`] picks which pending requests ride the next
/// micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// Strict arrival order: requests are packed front-to-back, never
    /// reordered — identical to the single
    /// [`ServeQueue`](crate::queue::ServeQueue) discipline.
    #[default]
    Fifo,
    /// Round-robin across submitter keys: micro-batches are filled by
    /// cycling clients (each contributing its oldest pending request
    /// per turn), resuming after the last client served — a hot client
    /// with a deep backlog cannot starve the rest. Requests of one
    /// client still serve in that client's submission order.
    RoundRobin,
}

/// The full serving policy of a [`ReplicaPool`]: how many replicas,
/// the coalescing/backpressure bounds they share, and the fairness
/// discipline that fills micro-batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePolicy {
    /// Backend replicas to build, one per scheduler thread (clamped to
    /// at least 1).
    pub replicas: usize,
    /// The coalescing and backpressure bounds, shared by every replica.
    pub queue: QueuePolicy,
    /// How micro-batches are filled from the pending queue.
    pub fairness: Fairness,
}

impl Default for ServePolicy {
    /// One replica, the default [`QueuePolicy`], FIFO fairness — the
    /// exact behaviour of a plain
    /// [`ServeQueue`](crate::queue::ServeQueue).
    fn default() -> ServePolicy {
        ServePolicy {
            replicas: 1,
            queue: QueuePolicy::default(),
            fairness: Fairness::Fifo,
        }
    }
}

impl ServePolicy {
    /// Sets the replica count (clamped to at least 1).
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> ServePolicy {
        self.replicas = replicas.max(1);
        self
    }

    /// Sets the coalescing/backpressure policy shared by the replicas.
    #[must_use]
    pub fn with_queue(mut self, queue: QueuePolicy) -> ServePolicy {
        self.queue = queue;
        self
    }

    /// Sets the micro-batch fill discipline.
    #[must_use]
    pub fn with_fairness(mut self, fairness: Fairness) -> ServePolicy {
        self.fairness = fairness;
        self
    }

    /// The policy with every bound clamped into its valid range.
    pub(crate) fn normalised(mut self) -> ServePolicy {
        self.replicas = self.replicas.max(1);
        self.queue.max_batch = self.queue.max_batch.max(1);
        self.queue.max_depth = self.queue.max_depth.max(1);
        self.queue.max_pending_tokens = self.queue.max_pending_tokens.max(1);
        self
    }
}

/// Per-submission scheduling hints for
/// [`ReplicaPool::submit_with`]: which client the request belongs to
/// (for [`Fairness::RoundRobin`]) and an optional latency target that
/// tightens the linger deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Submitter key round-robin fairness groups by. Defaults to 0, so
    /// callers that never set it all share one fairness bucket —
    /// exactly FIFO.
    pub client: u64,
    /// Optional latency target: the pool will not linger past
    /// `min(deadline, max_linger)` after submission before dispatching
    /// this request (in a partial micro-batch if need be). It is a
    /// scheduling hint, not an admission-control guarantee — a saturated
    /// backend can still serve late.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Tags the request with a submitter key for round-robin fairness.
    #[must_use]
    pub fn with_client(mut self, client: u64) -> SubmitOptions {
        self.client = client;
        self
    }

    /// Sets the latency target that tightens this request's linger
    /// deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// One accepted submission waiting for a replica.
struct PendingRequest {
    batch: TokenBatch,
    ticket: Arc<TicketCell>,
    submitted: Instant,
    /// Fairness key ([`SubmitOptions::client`]).
    client: u64,
    /// When a replica must stop lingering and dispatch this request —
    /// `submitted + min(max_linger, deadline)`. `None` when that
    /// instant is unrepresentable (e.g. `max_linger == Duration::MAX`,
    /// "wait until the batch fills").
    dispatch_by: Option<Instant>,
}

/// The replica/submitter shared state.
struct PoolState {
    pending: VecDeque<PendingRequest>,
    /// Tokens across `pending`, maintained on push/pop so admission and
    /// batch-full checks are O(1) under the lock.
    pending_tokens: usize,
    /// Requests accepted but not yet resolved — queued *or* executing.
    /// What [`QueuePolicy::max_depth`] bounds.
    outstanding: usize,
    /// Deepest `outstanding` seen at submit time since last folded into
    /// the stats.
    max_depth_seen: u64,
    /// `false` once the pool stops accepting submissions.
    open: bool,
    /// Client served last by round-robin coalescing; the next
    /// micro-batch resumes the cycle after it.
    rr_last: Option<u64>,
    /// Replica wait-loop iterations — a scheduling diagnostic that
    /// stays flat while the pool idles (the no-busy-spin invariant,
    /// pinned by a unit test for zero-linger policies).
    wakeups: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on every submission and on close.
    work: Condvar,
    stats: Mutex<SessionStats>,
    /// When the pool opened — the denominator of per-replica
    /// utilisation.
    started: Instant,
}

impl PoolShared {
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        // A poisoned lock means a replica panicked mid-update; the state
        // is still structurally sound (tickets resolve idempotently) and
        // refusing to look at it would leak every outstanding ticket.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A pool of backend replicas serving one shared submission queue.
///
/// Submissions are accepted from any thread through `&self`; each
/// replica thread owns one backend (built on that thread via its
/// [`BackendFactory`]) and pulls micro-batches coalesced under the
/// [`ServePolicy`]. See the [module docs](crate::pool) for the
/// scheduling contract and an end-to-end example.
pub struct ReplicaPool {
    shared: Arc<PoolShared>,
    policy: ServePolicy,
    ns: usize,
    replicas: Vec<JoinHandle<()>>,
}

impl ReplicaPool {
    /// Spawns one replica thread per factory, builds each backend *on*
    /// its thread (so non-`Send` backends replicate like any other),
    /// and opens the pool. `policy.replicas` is overridden by
    /// `factories.len()` — the factories are the ground truth. `ns` is
    /// the pipeline-stage count submissions are checked against at
    /// submit time.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QueueUnavailable`] for an empty factory
    /// list, the first factory's own [`BackendError`] when a backend
    /// fails to construct (the already-built replicas are torn down),
    /// and [`BackendError::QueueClosed`] when a replica thread dies
    /// before reporting readiness.
    pub fn from_factories(
        policy: ServePolicy,
        ns: usize,
        factories: Vec<BackendFactory>,
    ) -> Result<ReplicaPool, BackendError> {
        if factories.is_empty() {
            return Err(BackendError::QueueUnavailable {
                reason: "a replica pool needs at least one backend factory".into(),
            });
        }
        let policy = ServePolicy {
            replicas: factories.len(),
            ..policy
        }
        .normalised();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                pending: VecDeque::new(),
                pending_tokens: 0,
                outstanding: 0,
                max_depth_seen: 0,
                open: true,
                rr_last: None,
                wakeups: 0,
            }),
            work: Condvar::new(),
            stats: Mutex::new(SessionStats::default()),
            started: Instant::now(),
        });
        let mut replicas = Vec::with_capacity(factories.len());
        let mut readiness = Vec::with_capacity(factories.len());
        for (index, factory) in factories.into_iter().enumerate() {
            let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BackendError>>();
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            let handle = std::thread::Builder::new()
                .name(format!("maddpipe-replica-{index}"))
                .spawn(move || {
                    let backend = match factory() {
                        Ok(backend) => {
                            let _ = ready_tx.send(Ok(()));
                            backend
                        }
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    replica_loop(&shared, &policy, index, backend);
                })
                .expect("the host can spawn a replica thread");
            replicas.push(handle);
            readiness.push(ready_rx);
        }
        let mut failure = None;
        for ready_rx in readiness {
            let outcome = match ready_rx.recv() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some(BackendError::QueueClosed),
            };
            if failure.is_none() {
                failure = outcome;
            }
        }
        if let Some(error) = failure {
            // Tear the pool down: replicas that did come up drain out of
            // their loops once the queue is closed and empty.
            shared.lock_state().open = false;
            shared.work.notify_all();
            for handle in replicas {
                let _ = handle.join();
            }
            return Err(error);
        }
        Ok(ReplicaPool {
            shared,
            policy,
            ns,
            replicas,
        })
    }

    /// [`submit_with`](ReplicaPool::submit_with) under default options
    /// (client key 0, no latency target).
    ///
    /// # Errors
    ///
    /// As [`submit_with`](ReplicaPool::submit_with).
    pub fn submit(&self, batch: TokenBatch) -> Result<BatchTicket, BackendError> {
        self.submit_with(batch, SubmitOptions::default())
    }

    /// Submits one request with scheduling hints; returns immediately
    /// with a ticket the caller can poll or block on.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for tokens that do not
    /// match the backend's stage count (checked here, so a bad request
    /// cannot fail a coalesced micro-batch for everyone else);
    /// [`BackendError::QueueFull`] with [`QueueLimit::Requests`] when
    /// [`QueuePolicy::max_depth`] requests are already unresolved, or
    /// with [`QueueLimit::Tokens`] when queued tokens would exceed
    /// [`QueuePolicy::max_pending_tokens`] (a request submitted to an
    /// *empty* waiting room is always admitted, mirroring the oversized
    /// `max_batch` rule, so a large batch can never be starved); and
    /// [`BackendError::QueueClosed`] after
    /// [`close`](ReplicaPool::close)/[`shutdown`](ReplicaPool::shutdown).
    pub fn submit_with(
        &self,
        batch: TokenBatch,
        opts: SubmitOptions,
    ) -> Result<BatchTicket, BackendError> {
        batch.check_shape(self.ns)?;
        let ticket = TicketCell::new();
        {
            let mut state = self.shared.lock_state();
            if !state.open {
                return Err(BackendError::QueueClosed);
            }
            if state.outstanding >= self.policy.queue.max_depth {
                return Err(BackendError::QueueFull {
                    limit: QueueLimit::Requests {
                        max_depth: self.policy.queue.max_depth,
                    },
                });
            }
            if state.pending_tokens > 0
                && state.pending_tokens + batch.len() > self.policy.queue.max_pending_tokens
            {
                return Err(BackendError::QueueFull {
                    limit: QueueLimit::Tokens {
                        pending_tokens: state.pending_tokens,
                        max_pending_tokens: self.policy.queue.max_pending_tokens,
                    },
                });
            }
            let submitted = Instant::now();
            let linger = match opts.deadline {
                Some(deadline) => deadline.min(self.policy.queue.max_linger),
                None => self.policy.queue.max_linger,
            };
            state.outstanding += 1;
            state.max_depth_seen = state.max_depth_seen.max(state.outstanding as u64);
            state.pending_tokens += batch.len();
            state.pending.push_back(PendingRequest {
                batch,
                ticket: Arc::clone(&ticket),
                submitted,
                client: opts.client,
                dispatch_by: submitted.checked_add(linger),
            });
        }
        self.shared.work.notify_all();
        Ok(BatchTicket::from_cell(ticket))
    }

    /// Requests accepted but not yet resolved, right now.
    pub fn depth(&self) -> usize {
        self.shared.lock_state().outstanding
    }

    /// The serving policy this pool runs (with the replica count the
    /// pool actually built).
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// Pipeline stages every submission must provide per token.
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// A snapshot of the aggregate statistics so far: everything a
    /// [`ServeQueue`](crate::queue::ServeQueue) measures, plus
    /// per-replica dispatch counts and busy time against the pool's
    /// uptime.
    pub fn stats(&self) -> SessionStats {
        // Fold in any backlog high-water mark the replicas have not
        // absorbed yet (state lock strictly before stats lock, the
        // crate-wide order).
        let depth_seen = self.shared.lock_state().max_depth_seen;
        let mut stats = self.shared.stats.lock().expect("stats lock").clone();
        stats.record_queue_depth(depth_seen);
        stats.note_pool(self.policy.replicas, self.shared.started.elapsed());
        stats
    }

    /// Stops accepting submissions (they answer
    /// [`BackendError::QueueClosed`]) while the replicas drain every
    /// request already accepted. Does not block; pair with
    /// [`shutdown`](ReplicaPool::shutdown) or ticket waits to observe
    /// the drain finishing.
    pub fn close(&self) {
        self.shared.lock_state().open = false;
        self.shared.work.notify_all();
    }

    /// Closes the pool, waits for every replica to drain and resolve
    /// every accepted ticket, and returns the final statistics.
    pub fn shutdown(mut self) -> SessionStats {
        self.close();
        for handle in self.replicas.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Seeds the statistics (used by
    /// [`Session::into_pool`](crate::session::Session::into_pool) to
    /// carry a session's accumulated measurements into the pool).
    pub(crate) fn seed_stats(&self, stats: SessionStats) {
        *self.shared.stats.lock().expect("stats lock") = stats;
    }

    /// Replica wait-loop iterations so far — the no-busy-spin
    /// diagnostic the unit tests pin.
    #[cfg(test)]
    fn wakeups(&self) -> u64 {
        self.shared.lock_state().wakeups
    }
}

impl Drop for ReplicaPool {
    /// Same contract as [`shutdown`](ReplicaPool::shutdown): close,
    /// drain, join — accepted tickets resolve before the pool
    /// disappears.
    fn drop(&mut self) {
        self.close();
        for handle in self.replicas.drain(..) {
            let _ = handle.join();
        }
    }
}

impl core::fmt::Debug for ReplicaPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplicaPool")
            .field("policy", &self.policy)
            .field("ns", &self.ns)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

/// A replica's per-micro-batch guard: settles the backpressure
/// accounting exactly once and, if dropped with tickets still armed (a
/// backend that panicked mid-run), fails them with
/// [`BackendError::QueueClosed`] — so neither `outstanding` nor any
/// accepted ticket can leak, whichever way the micro-batch ends.
struct BatchInFlight<'a> {
    shared: &'a PoolShared,
    unsettled: usize,
    tickets: Vec<Arc<TicketCell>>,
}

impl BatchInFlight<'_> {
    /// Frees the micro-batch's backpressure capacity (idempotent).
    fn settle(&mut self) {
        if self.unsettled > 0 {
            self.shared.lock_state().outstanding -= self.unsettled;
            self.unsettled = 0;
        }
    }
}

impl Drop for BatchInFlight<'_> {
    fn drop(&mut self) {
        self.settle();
        for ticket in self.tickets.drain(..) {
            ticket.resolve(Err(BackendError::QueueClosed));
        }
    }
}

/// Closes the pool and fails whatever is still pending with
/// [`BackendError::QueueClosed`] when a replica exits — the safety net
/// for a replica that unwinds out of its loop (a panicking custom
/// backend): the whole pool closes rather than serving degraded, and
/// the surviving replicas drain out behind it. On a normal drain the
/// pending queue is already empty.
struct CloseOnDrop<'a> {
    shared: &'a PoolShared,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.lock_state();
        state.open = false;
        let abandoned: Vec<PendingRequest> = state.pending.drain(..).collect();
        state.pending_tokens = 0;
        state.outstanding = state.outstanding.saturating_sub(abandoned.len());
        drop(state);
        self.shared.work.notify_all();
        for request in abandoned {
            request.ticket.resolve(Err(BackendError::QueueClosed));
        }
    }
}

/// The earliest dispatch deadline across the waiting room — the instant
/// a replica must stop lingering. `None` when every pending request may
/// linger without bound.
fn earliest_deadline(pending: &VecDeque<PendingRequest>) -> Option<Instant> {
    pending.iter().filter_map(|r| r.dispatch_by).min()
}

/// Fills one micro-batch from the waiting room under the policy's
/// fairness discipline. Whole requests only, up to `max_batch` tokens
/// (a single oversized request rides alone). Returns the picked
/// requests and their total token count.
fn coalesce(state: &mut PoolState, policy: &ServePolicy) -> (Vec<PendingRequest>, usize) {
    let mut picked = Vec::new();
    let mut total = 0usize;
    match policy.fairness {
        Fairness::Fifo => {
            while let Some(next) = state.pending.front() {
                if !picked.is_empty() && total + next.batch.len() > policy.queue.max_batch {
                    break;
                }
                let request = state.pending.pop_front().expect("front exists");
                state.pending_tokens -= request.batch.len();
                total += request.batch.len();
                picked.push(request);
            }
        }
        Fairness::RoundRobin => {
            // Clients in order of their oldest pending request, the
            // cycle resumed just past the last client served.
            let mut clients: Vec<u64> = Vec::new();
            for request in &state.pending {
                if !clients.contains(&request.client) {
                    clients.push(request.client);
                }
            }
            if let Some(last) = state.rr_last {
                if let Some(pos) = clients.iter().position(|&c| c == last) {
                    clients.rotate_left(pos + 1);
                }
            }
            let mut progressed = true;
            'fill: while progressed {
                progressed = false;
                for &client in &clients {
                    let Some(index) = state.pending.iter().position(|r| r.client == client) else {
                        continue;
                    };
                    let len = state.pending[index].batch.len();
                    if !picked.is_empty() && total + len > policy.queue.max_batch {
                        continue;
                    }
                    let request = state.pending.remove(index).expect("index exists");
                    state.pending_tokens -= len;
                    total += len;
                    state.rr_last = Some(client);
                    picked.push(request);
                    progressed = true;
                    if total >= policy.queue.max_batch {
                        break 'fill;
                    }
                }
            }
        }
    }
    (picked, total)
}

/// One replica's loop: collect → coalesce → run → split → resolve,
/// until the pool is closed *and* drained.
fn replica_loop(
    shared: &PoolShared,
    policy: &ServePolicy,
    replica: usize,
    mut backend: Box<dyn MacroBackend>,
) {
    let _drain_guard = CloseOnDrop { shared };
    loop {
        // ── Collect: wait for work, linger for a fuller micro-batch ──
        let mut state = shared.lock_state();
        loop {
            state.wakeups += 1;
            if !state.pending.is_empty() {
                if state.pending_tokens >= policy.queue.max_batch || !state.open {
                    break;
                }
                // An unrepresentable deadline across the whole waiting
                // room ("wait until the batch fills") degrades to an
                // untimed wait — more work or close() wakes us.
                let Some(deadline) = earliest_deadline(&state.pending) else {
                    state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
                    continue;
                };
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (s, _) = shared
                    .work
                    .wait_timeout(state, left)
                    .unwrap_or_else(|p| p.into_inner());
                state = s;
            } else if !state.open {
                // Closed and drained: every accepted ticket has resolved.
                return;
            } else {
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        }

        // ── Coalesce: whole requests per the fairness discipline ──
        let (picked, total) = coalesce(&mut state, policy);
        let depth_seen = state.max_depth_seen;
        drop(state);
        if picked.is_empty() {
            // Another replica emptied the waiting room between our
            // wakeup and the coalesce; go back to waiting.
            continue;
        }
        // Let sibling replicas pick up what this micro-batch left
        // behind, instead of lingering until their own timeouts fire.
        shared.work.notify_all();

        // ── Run: one backend call for the whole micro-batch ──
        let mut guard = BatchInFlight {
            shared,
            unsettled: picked.len(),
            tickets: picked.iter().map(|p| Arc::clone(&p.ticket)).collect(),
        };
        let dispatched = Instant::now();
        let mut tokens: Vec<Token> = Vec::with_capacity(total);
        let mut parts: Vec<(usize, Arc<TicketCell>, Duration)> = Vec::with_capacity(picked.len());
        for request in picked {
            parts.push((
                request.batch.len(),
                request.ticket,
                dispatched.saturating_duration_since(request.submitted),
            ));
            tokens.extend(request.batch.into_tokens());
        }
        let micro = TokenBatch::new(tokens).expect("picked requests are non-empty");
        let outcome = backend.run_batch(&micro);
        let service = dispatched.elapsed();

        // Free backpressure capacity before resolving, so a submitter
        // woken by its ticket deterministically finds the slot open.
        guard.settle();

        // ── Split and resolve: each ticket gets its own token slice ──
        let waits: Vec<Duration> = parts.iter().map(|(_, _, w)| *w).collect();
        match outcome {
            Ok(result) if result.tokens.len() == micro.len() => {
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queued(&result, service, &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                let mut offset = 0usize;
                for (len, ticket, queue_wait) in parts {
                    let observations = result.tokens[offset..offset + len].to_vec();
                    offset += len;
                    let energy = observations
                        .iter()
                        .map(|o| o.energy)
                        .collect::<Option<Vec<_>>>()
                        .and_then(|es| es.into_iter().reduce(|a, b| a + b));
                    ticket.resolve(Ok(QueueReply {
                        result: BatchResult {
                            backend: result.backend,
                            tokens: observations,
                            makespan: result.makespan,
                            energy,
                        },
                        queue_wait,
                        service,
                        coalesced_tokens: total,
                        replica,
                    }));
                }
            }
            Ok(result) => {
                // A custom backend broke the one-observation-per-token
                // contract; a typed rejection beats mis-sliced outputs.
                let error = BackendError::MalformedProgram {
                    reason: format!(
                        "backend returned {} observations for a {}-token micro-batch",
                        result.tokens.len(),
                        micro.len()
                    ),
                };
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                for (_, ticket, _) in parts {
                    ticket.resolve(Err(error.clone()));
                }
            }
            Err(error) => {
                // Whole-batch rejection: every rider gets the typed
                // error. The queue-side stats still count the batch —
                // its requests waited and resolved like any other; only
                // the served-token measurements are success-only.
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                for (_, ticket, _) in parts {
                    ticket.resolve(Err(error.clone()));
                }
            }
        }
        guard.tickets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use maddpipe_core::config::MacroConfig;
    use maddpipe_core::macro_rtl::MacroProgram;

    /// A pool of `replicas` functional backends over a tiny 2×2 macro.
    fn functional_pool(replicas: usize, policy: ServePolicy) -> (ReplicaPool, MacroProgram) {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 11);
        let factories: Vec<BackendFactory> = (0..replicas)
            .map(|_| {
                let cfg = cfg.clone();
                let program = program.clone();
                let factory: BackendFactory =
                    Box::new(move || BackendKind::Functional { workers: 1 }.build(&cfg, program));
                factory
            })
            .collect();
        let pool = ReplicaPool::from_factories(policy, 2, factories).expect("pool builds");
        (pool, program)
    }

    #[test]
    fn zero_linger_pools_do_not_busy_spin() {
        let policy = ServePolicy::default()
            .with_replicas(2)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO));
        let (pool, program) = functional_pool(2, policy);
        // Serve a few requests so every replica has been through its
        // loop at least once.
        for seed in 0..4 {
            let batch = TokenBatch::random(2, 2, seed);
            let reply = pool.submit(batch.clone()).unwrap().wait().unwrap();
            assert_eq!(
                reply.result.tokens[0].outputs,
                program.reference_output(&batch.tokens()[0])
            );
        }
        // Idle pool: replicas must block on the condvar, not spin on a
        // zero-length linger timeout.
        std::thread::sleep(Duration::from_millis(120));
        let settled = pool.wakeups();
        std::thread::sleep(Duration::from_millis(120));
        let after_idle = pool.wakeups();
        assert_eq!(
            after_idle,
            settled,
            "idle replicas took {} wait-loop turns — the zero-linger loop is spinning",
            after_idle - settled
        );
        // Serving stays O(1) wakeups per submission, not a spin.
        for seed in 0..8 {
            pool.submit(TokenBatch::random(2, 2, seed))
                .unwrap()
                .wait()
                .unwrap();
        }
        let after_serving = pool.wakeups();
        assert!(
            after_serving - after_idle <= 8 * 2 * 8,
            "8 submissions took {} wait-loop turns across 2 replicas",
            after_serving - after_idle
        );
        pool.shutdown();
    }

    #[test]
    fn empty_factory_lists_are_rejected() {
        let err = ReplicaPool::from_factories(ServePolicy::default(), 2, Vec::new()).unwrap_err();
        assert!(
            matches!(err, BackendError::QueueUnavailable { .. }),
            "{err}"
        );
    }

    #[test]
    fn a_failing_factory_tears_the_pool_down() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 3);
        let good: BackendFactory =
            Box::new(move || BackendKind::Functional { workers: 1 }.build(&cfg, program));
        let bad: BackendFactory = Box::new(|| Err(BackendError::MissingProgram));
        let err = ReplicaPool::from_factories(ServePolicy::default(), 2, vec![good, bad])
            .expect_err("one bad factory fails the pool");
        assert_eq!(err, BackendError::MissingProgram);
    }

    #[test]
    fn round_robin_preserves_per_client_order() {
        let policy = ServePolicy::default()
            .with_fairness(Fairness::RoundRobin)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO));
        let (pool, program) = functional_pool(1, policy);
        // Interleave submissions from three clients; each client's
        // replies must come back in its own submission order with the
        // right outputs.
        std::thread::scope(|s| {
            for client in 0..3u64 {
                let pool = &pool;
                let program = &program;
                s.spawn(move || {
                    for round in 0..5u64 {
                        let batch = TokenBatch::random(2, 3, client * 100 + round);
                        let opts = SubmitOptions::default().with_client(client);
                        let reply = pool.submit_with(batch.clone(), opts).unwrap();
                        let reply = reply.wait().expect("served");
                        for (t, token) in batch.tokens().iter().enumerate() {
                            assert_eq!(
                                reply.result.tokens[t].outputs,
                                program.reference_output(token)
                            );
                        }
                    }
                });
            }
        });
        let stats = pool.shutdown();
        assert_eq!(stats.tokens(), 45);
    }
}
