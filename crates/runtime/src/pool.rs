//! Replica-pool serving: N backend replicas behind one scheduler.
//!
//! A [`ServeQueue`](crate::queue::ServeQueue) keeps one dispatcher
//! feeding one backend, which makes host-side queueing the bottleneck
//! long before the macro is. A [`ReplicaPool`] generalises it: *N*
//! replicas, each built on its own thread from a
//! [`BackendFactory`] (so non-`Send` netlists replicate exactly like
//! they serve), all pulling from one shared submission queue. This is
//! the data-parallel axis, complementary to the
//! [`ShardedBackend`](crate::sharded::ShardedBackend)'s model-parallel
//! output-channel sharding: shards split one batch across macros,
//! replicas spread *different* micro-batches across whole macros.
//!
//! The scheduler earns its keep beyond FIFO:
//!
//! * **Data-parallel spreading.** Every idle replica waits on the same
//!   queue; whichever wakes first takes the next micro-batch, so
//!   independent micro-batches run concurrently on different replicas.
//! * **Per-client fairness.** Under [`Fairness::RoundRobin`], requests
//!   are tagged with a submitter key
//!   ([`SubmitOptions::with_client`]) and micro-batches are filled by
//!   cycling clients — one hot client submitting a deep backlog cannot
//!   starve the others. [`Fairness::Fifo`] preserves strict arrival
//!   order (the single-queue behaviour).
//! * **Deadline-aware batching.** Each request's dispatch deadline is
//!   the smaller of the policy's [`QueuePolicy::max_linger`] and its
//!   own [`SubmitOptions::with_deadline`] latency target; a replica
//!   ships a partial micro-batch as soon as the earliest pending
//!   deadline passes instead of lingering for a fuller batch.
//! * **Typed backpressure on two axes.**
//!   [`QueuePolicy::max_depth`] bounds unresolved *requests* and
//!   [`QueuePolicy::max_pending_tokens`] bounds queued *tokens*, each
//!   rejecting with its own [`QueueLimit`] inside
//!   [`BackendError::QueueFull`].
//! * **Supervision and recovery.** Under the pool's
//!   [`RecoveryPolicy`], a micro-batch that fails transiently
//!   ([`BackendError::is_transient`]) is re-queued riders-intact and
//!   retried with exponential backoff — per-client order preserved —
//!   while a replica that panics is rebuilt in place from its recipe
//!   ([`ReplicaPool::from_recipes`]) up to a restart budget. A replica
//!   that crashes through its budget is *quarantined*: the pool keeps
//!   serving at reduced capacity ([`PoolHealth`] reports the
//!   degradation) and tickets only resolve
//!   [`BackendError::QueueClosed`] once zero replicas remain.
//!
//! The waiting-room discipline mirrors the single queue: whole requests
//! are never split across micro-batches or replicas, and tickets always
//! resolve (results, a typed backend error after the retry budget, or
//! [`BackendError::QueueClosed`] if the last replica dies first).
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
//! let pool = Session::builder(cfg)
//!     .program(program.clone())
//!     .into_pool(ServePolicy::default().with_replicas(2))
//!     .unwrap();
//! std::thread::scope(|s| {
//!     for client in 0..4u64 {
//!         let pool = &pool;
//!         let program = &program;
//!         s.spawn(move || {
//!             let batch = TokenBatch::random(2, 8, client);
//!             let opts = SubmitOptions::default().with_client(client);
//!             let reply = pool.submit_with(batch.clone(), opts).unwrap();
//!             let reply = reply.wait().expect("served");
//!             assert!(reply.replica < 2);
//!             assert_eq!(
//!                 reply.result.tokens[0].outputs,
//!                 program.reference_output(&batch.tokens()[0]),
//!             );
//!         });
//!     }
//! });
//! assert_eq!(pool.health().healthy, 2);
//! let stats = pool.shutdown();
//! assert_eq!(stats.tokens(), 32);
//! assert_eq!(stats.replica_dispatches().len(), 2);
//! ```

use crate::backend::{BackendFactory, MacroBackend};
use crate::batch::{BatchResult, Token, TokenBatch};
use crate::error::{BackendError, QueueLimit};
use crate::queue::{BatchTicket, QueuePolicy, QueueReply, TicketCell};
use crate::session::SessionStats;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A rebuildable backend recipe: unlike the one-shot
/// [`BackendFactory`], a `ReplicaFactory` can be called again after a
/// replica crash, so pools built from recipes
/// ([`ReplicaPool::from_recipes`]) can respawn dead replicas in place
/// instead of quarantining them on the first panic.
pub type ReplicaFactory =
    Arc<dyn Fn() -> Result<Box<dyn MacroBackend>, BackendError> + Send + Sync>;

/// How a [`ReplicaPool`] picks which pending requests ride the next
/// micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// Strict arrival order: requests are packed front-to-back, never
    /// reordered — identical to the single
    /// [`ServeQueue`](crate::queue::ServeQueue) discipline. (A request
    /// backing off after a transient failure holds only its own
    /// client's later requests; other clients keep flowing.)
    #[default]
    Fifo,
    /// Round-robin across submitter keys: micro-batches are filled by
    /// cycling clients (each contributing its oldest pending request
    /// per turn), resuming after the last client served — a hot client
    /// with a deep backlog cannot starve the rest. Requests of one
    /// client still serve in that client's submission order.
    RoundRobin,
}

/// How a [`ReplicaPool`] reacts to transient failures and replica
/// crashes — the supervision contract of the serving stack.
///
/// A micro-batch whose backend call fails with a transient error
/// ([`BackendError::is_transient`]) or a panic is taken apart into its
/// riders, each re-queued at the front of the waiting room (per-client
/// order intact) and retried after an exponential backoff — on
/// whichever replica frees up first. A rider that exhausts
/// `max_retries` resolves its ticket with the typed error. A replica
/// whose backend panicked is rebuilt in place from its
/// [`ReplicaFactory`] recipe up to `respawn` times; past that budget it
/// is quarantined and the pool serves on at reduced capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How many times a transiently-failed rider is re-queued before
    /// its ticket resolves with the typed error. 0 fails fast.
    pub max_retries: u32,
    /// Base hold-off before a re-queued rider becomes dispatchable
    /// again; doubles with every attempt (exponential backoff).
    pub backoff: Duration,
    /// How many times each replica may be rebuilt from its recipe after
    /// a panic before it is quarantined. Only recipe-built pools
    /// ([`ReplicaPool::from_recipes`]) can respawn; factory-built pools
    /// quarantine on the first crash regardless of this budget.
    pub respawn: u32,
}

impl Default for RecoveryPolicy {
    /// Two retries with a 200 µs base backoff and one respawn per
    /// replica — recomputation is cheap for a pure LUT program, so a
    /// little patience beats failing a whole coalesced micro-batch.
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(200),
            respawn: 1,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no respawns: every transient failure surfaces
    /// immediately and any replica panic quarantines — the pre-recovery
    /// behaviour, useful for tests that pin first-failure semantics.
    pub fn none() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            respawn: 0,
        }
    }

    /// Sets the per-rider retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> RecoveryPolicy {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base backoff (doubled per attempt).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> RecoveryPolicy {
        self.backoff = backoff;
        self
    }

    /// Sets the per-replica respawn budget.
    #[must_use]
    pub fn with_respawn(mut self, respawn: u32) -> RecoveryPolicy {
        self.respawn = respawn;
        self
    }

    /// The hold-off before a rider that has already failed `attempts`
    /// times may dispatch again: `backoff * 2^attempts`, saturating.
    pub(crate) fn backoff_for(&self, attempts: u32) -> Duration {
        self.backoff.saturating_mul(1u32 << attempts.min(16))
    }
}

/// A [`ReplicaPool`]'s degradation snapshot, surfaced through
/// [`ReplicaPool::health`] and in [`SessionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolHealth {
    /// Replicas currently alive and serving.
    pub healthy: usize,
    /// Replicas retired after crashing through their respawn budget.
    pub quarantined: usize,
    /// Successful in-place replica respawns so far.
    pub restarts: u64,
}

/// The full serving policy of a [`ReplicaPool`]: how many replicas,
/// the coalescing/backpressure bounds they share, the fairness
/// discipline that fills micro-batches, and the recovery contract for
/// transient failures and crashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePolicy {
    /// Backend replicas to build, one per scheduler thread (clamped to
    /// at least 1).
    pub replicas: usize,
    /// The coalescing and backpressure bounds, shared by every replica.
    pub queue: QueuePolicy,
    /// How micro-batches are filled from the pending queue.
    pub fairness: Fairness,
    /// Retry, backoff and respawn behaviour under faults.
    pub recovery: RecoveryPolicy,
}

impl Default for ServePolicy {
    /// One replica, the default [`QueuePolicy`], FIFO fairness and the
    /// default [`RecoveryPolicy`] — the behaviour of a plain
    /// [`ServeQueue`](crate::queue::ServeQueue), plus retries.
    fn default() -> ServePolicy {
        ServePolicy {
            replicas: 1,
            queue: QueuePolicy::default(),
            fairness: Fairness::Fifo,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl ServePolicy {
    /// Sets the replica count (clamped to at least 1).
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> ServePolicy {
        self.replicas = replicas.max(1);
        self
    }

    /// Sets the coalescing/backpressure policy shared by the replicas.
    #[must_use]
    pub fn with_queue(mut self, queue: QueuePolicy) -> ServePolicy {
        self.queue = queue;
        self
    }

    /// Sets the micro-batch fill discipline.
    #[must_use]
    pub fn with_fairness(mut self, fairness: Fairness) -> ServePolicy {
        self.fairness = fairness;
        self
    }

    /// Sets the retry/backoff/respawn behaviour.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> ServePolicy {
        self.recovery = recovery;
        self
    }

    /// The policy with every bound clamped into its valid range.
    pub(crate) fn normalised(mut self) -> ServePolicy {
        self.replicas = self.replicas.max(1);
        self.queue.max_batch = self.queue.max_batch.max(1);
        self.queue.max_depth = self.queue.max_depth.max(1);
        self.queue.max_pending_tokens = self.queue.max_pending_tokens.max(1);
        self
    }
}

/// Per-submission scheduling hints for
/// [`ReplicaPool::submit_with`]: which client the request belongs to
/// (for [`Fairness::RoundRobin`]) and an optional latency target that
/// tightens the linger deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Submitter key round-robin fairness groups by. Defaults to 0, so
    /// callers that never set it all share one fairness bucket —
    /// exactly FIFO.
    pub client: u64,
    /// Optional latency target: the pool will not linger past
    /// `min(deadline, max_linger)` after submission before dispatching
    /// this request (in a partial micro-batch if need be). It is a
    /// scheduling hint, not an admission-control guarantee — a saturated
    /// backend can still serve late.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Tags the request with a submitter key for round-robin fairness.
    #[must_use]
    pub fn with_client(mut self, client: u64) -> SubmitOptions {
        self.client = client;
        self
    }

    /// Sets the latency target that tightens this request's linger
    /// deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// One accepted submission waiting for a replica.
struct PendingRequest {
    batch: TokenBatch,
    ticket: Arc<TicketCell>,
    submitted: Instant,
    /// Fairness key ([`SubmitOptions::client`]).
    client: u64,
    /// When a replica must stop lingering and dispatch this request —
    /// `submitted + min(max_linger, deadline)`. `None` when that
    /// instant is unrepresentable (e.g. `max_linger == Duration::MAX`,
    /// "wait until the batch fills").
    dispatch_by: Option<Instant>,
    /// Failed attempts so far; compared against
    /// [`RecoveryPolicy::max_retries`] when the next one fails.
    attempts: u32,
    /// Until when this re-queued rider is held back (exponential
    /// backoff). `None` for fresh submissions: dispatch any time.
    retry_at: Option<Instant>,
}

/// The replica/submitter shared state.
struct PoolState {
    pending: VecDeque<PendingRequest>,
    /// Tokens across `pending`, maintained on push/pop so admission and
    /// batch-full checks are O(1) under the lock.
    pending_tokens: usize,
    /// Requests accepted but not yet resolved — queued *or* executing.
    /// What [`QueuePolicy::max_depth`] bounds.
    outstanding: usize,
    /// Deepest `outstanding` seen at submit time since last folded into
    /// the stats.
    max_depth_seen: u64,
    /// `false` once the pool stops accepting submissions.
    open: bool,
    /// Replica threads still in their serve loop (healthy capacity).
    /// Hits 0 only when every replica exited — drained out after
    /// `close()`, or quarantined.
    live: usize,
    /// Replicas retired after crashing through their respawn budget.
    quarantined: usize,
    /// Successful in-place replica respawns.
    restarts: u64,
    /// Client served last by round-robin coalescing; the next
    /// micro-batch resumes the cycle after it.
    rr_last: Option<u64>,
    /// Replica wait-loop iterations — a scheduling diagnostic that
    /// stays flat while the pool idles (the no-busy-spin invariant,
    /// pinned by a unit test for zero-linger policies).
    wakeups: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on every submission, resolution, re-queue and close.
    work: Condvar,
    stats: Mutex<SessionStats>,
    /// When the pool opened — the denominator of per-replica
    /// utilisation.
    started: Instant,
}

impl PoolShared {
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        // A poisoned lock means a replica panicked mid-update; the state
        // is still structurally sound (tickets resolve idempotently) and
        // refusing to look at it would leak every outstanding ticket.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn health(&self, replicas: usize) -> PoolHealth {
        let state = self.lock_state();
        PoolHealth {
            healthy: state.live.min(replicas),
            quarantined: state.quarantined,
            restarts: state.restarts,
        }
    }
}

/// What one replica thread is seeded with: the one-shot constructor for
/// its first backend, plus (for recipe-built pools) the rebuildable
/// recipe that makes post-panic respawn possible.
struct ReplicaSeed {
    initial: BackendFactory,
    rebuild: Option<ReplicaFactory>,
}

/// A pool of backend replicas serving one shared submission queue.
///
/// Submissions are accepted from any thread through `&self`; each
/// replica thread owns one backend (built on that thread via its
/// [`BackendFactory`]) and pulls micro-batches coalesced under the
/// [`ServePolicy`]. See the [module docs](crate::pool) for the
/// scheduling contract and an end-to-end example.
pub struct ReplicaPool {
    shared: Arc<PoolShared>,
    policy: ServePolicy,
    ns: usize,
    replicas: Mutex<Vec<JoinHandle<()>>>,
}

impl ReplicaPool {
    /// Spawns one replica thread per factory, builds each backend *on*
    /// its thread (so non-`Send` backends replicate like any other),
    /// and opens the pool. `policy.replicas` is overridden by
    /// `factories.len()` — the factories are the ground truth. `ns` is
    /// the pipeline-stage count submissions are checked against at
    /// submit time.
    ///
    /// Factory-built replicas cannot be respawned after a panic (the
    /// [`BackendFactory`] is one-shot); they quarantine on the first
    /// crash. Use [`from_recipes`](ReplicaPool::from_recipes) when the
    /// backend can be rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QueueUnavailable`] for an empty factory
    /// list, the first factory's own [`BackendError`] when a backend
    /// fails to construct (the already-built replicas are torn down),
    /// and [`BackendError::QueueClosed`] when a replica thread dies
    /// before reporting readiness.
    pub fn from_factories(
        policy: ServePolicy,
        ns: usize,
        factories: Vec<BackendFactory>,
    ) -> Result<ReplicaPool, BackendError> {
        let seeds = factories
            .into_iter()
            .map(|initial| ReplicaSeed {
                initial,
                rebuild: None,
            })
            .collect();
        ReplicaPool::spawn(policy, ns, seeds)
    }

    /// Like [`from_factories`](ReplicaPool::from_factories), but every
    /// replica keeps its (cloneable) recipe, so a replica whose backend
    /// panics is rebuilt in place up to the
    /// [`RecoveryPolicy::respawn`] budget instead of quarantining on
    /// the first crash.
    ///
    /// # Errors
    ///
    /// As [`from_factories`](ReplicaPool::from_factories).
    pub fn from_recipes(
        policy: ServePolicy,
        ns: usize,
        recipes: Vec<ReplicaFactory>,
    ) -> Result<ReplicaPool, BackendError> {
        let seeds = recipes
            .into_iter()
            .map(|recipe| ReplicaSeed {
                initial: Box::new({
                    let recipe = Arc::clone(&recipe);
                    move || recipe()
                }),
                rebuild: Some(recipe),
            })
            .collect();
        ReplicaPool::spawn(policy, ns, seeds)
    }

    fn spawn(
        policy: ServePolicy,
        ns: usize,
        seeds: Vec<ReplicaSeed>,
    ) -> Result<ReplicaPool, BackendError> {
        if seeds.is_empty() {
            return Err(BackendError::QueueUnavailable {
                reason: "a replica pool needs at least one backend factory".into(),
            });
        }
        let policy = ServePolicy {
            replicas: seeds.len(),
            ..policy
        }
        .normalised();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                pending: VecDeque::new(),
                pending_tokens: 0,
                outstanding: 0,
                max_depth_seen: 0,
                open: true,
                live: seeds.len(),
                quarantined: 0,
                restarts: 0,
                rr_last: None,
                wakeups: 0,
            }),
            work: Condvar::new(),
            stats: Mutex::new(SessionStats::default()),
            started: Instant::now(),
        });
        let mut replicas = Vec::with_capacity(seeds.len());
        let mut readiness = Vec::with_capacity(seeds.len());
        for (index, seed) in seeds.into_iter().enumerate() {
            let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BackendError>>();
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            let handle = std::thread::Builder::new()
                .name(format!("maddpipe-replica-{index}"))
                .spawn(move || {
                    let backend = match (seed.initial)() {
                        Ok(backend) => {
                            let _ = ready_tx.send(Ok(()));
                            backend
                        }
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            // Never entered the serve loop: this thread
                            // was healthy capacity until now.
                            shared.lock_state().live -= 1;
                            return;
                        }
                    };
                    replica_loop(&shared, &policy, index, backend, seed.rebuild);
                })
                .expect("the host can spawn a replica thread");
            replicas.push(handle);
            readiness.push(ready_rx);
        }
        let mut failure = None;
        for ready_rx in readiness {
            let outcome = match ready_rx.recv() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some(BackendError::QueueClosed),
            };
            if failure.is_none() {
                failure = outcome;
            }
        }
        if let Some(error) = failure {
            // Tear the pool down: replicas that did come up drain out of
            // their loops once the queue is closed and empty.
            shared.lock_state().open = false;
            shared.work.notify_all();
            for handle in replicas {
                let _ = handle.join();
            }
            return Err(error);
        }
        Ok(ReplicaPool {
            shared,
            policy,
            ns,
            replicas: Mutex::new(replicas),
        })
    }

    /// [`submit_with`](ReplicaPool::submit_with) under default options
    /// (client key 0, no latency target).
    ///
    /// # Errors
    ///
    /// As [`submit_with`](ReplicaPool::submit_with).
    pub fn submit(&self, batch: TokenBatch) -> Result<BatchTicket, BackendError> {
        self.submit_with(batch, SubmitOptions::default())
    }

    /// Submits one request with scheduling hints; returns immediately
    /// with a ticket the caller can poll or block on.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for tokens that do not
    /// match the backend's stage count (checked here, so a bad request
    /// cannot fail a coalesced micro-batch for everyone else);
    /// [`BackendError::QueueFull`] with [`QueueLimit::Requests`] when
    /// [`QueuePolicy::max_depth`] requests are already unresolved, or
    /// with [`QueueLimit::Tokens`] when queued tokens would exceed
    /// [`QueuePolicy::max_pending_tokens`] (a request submitted to an
    /// *empty* waiting room is always admitted, mirroring the oversized
    /// `max_batch` rule, so a large batch can never be starved; a batch
    /// that *exactly* fills the remaining token room admits); and
    /// [`BackendError::QueueClosed`] after
    /// [`close`](ReplicaPool::close)/[`shutdown`](ReplicaPool::shutdown).
    pub fn submit_with(
        &self,
        batch: TokenBatch,
        opts: SubmitOptions,
    ) -> Result<BatchTicket, BackendError> {
        batch.check_shape(self.ns)?;
        let ticket = TicketCell::new();
        {
            let mut state = self.shared.lock_state();
            if !state.open {
                return Err(BackendError::QueueClosed);
            }
            if state.outstanding >= self.policy.queue.max_depth {
                return Err(BackendError::QueueFull {
                    limit: QueueLimit::Requests {
                        max_depth: self.policy.queue.max_depth,
                    },
                });
            }
            if state.pending_tokens > 0
                && state.pending_tokens + batch.len() > self.policy.queue.max_pending_tokens
            {
                return Err(BackendError::QueueFull {
                    limit: QueueLimit::Tokens {
                        pending_tokens: state.pending_tokens,
                        max_pending_tokens: self.policy.queue.max_pending_tokens,
                    },
                });
            }
            let submitted = Instant::now();
            let linger = match opts.deadline {
                Some(deadline) => deadline.min(self.policy.queue.max_linger),
                None => self.policy.queue.max_linger,
            };
            state.outstanding += 1;
            state.max_depth_seen = state.max_depth_seen.max(state.outstanding as u64);
            state.pending_tokens += batch.len();
            state.pending.push_back(PendingRequest {
                batch,
                ticket: Arc::clone(&ticket),
                submitted,
                client: opts.client,
                dispatch_by: submitted.checked_add(linger),
                attempts: 0,
                retry_at: None,
            });
        }
        self.shared.work.notify_all();
        Ok(BatchTicket::from_cell(ticket))
    }

    /// Requests accepted but not yet resolved, right now.
    pub fn depth(&self) -> usize {
        self.shared.lock_state().outstanding
    }

    /// The serving policy this pool runs (with the replica count the
    /// pool actually built).
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// Pipeline stages every submission must provide per token.
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// The pool's current degradation snapshot: live replicas,
    /// quarantined replicas, and successful respawns so far.
    pub fn health(&self) -> PoolHealth {
        self.shared.health(self.policy.replicas)
    }

    /// A snapshot of the aggregate statistics so far: everything a
    /// [`ServeQueue`](crate::queue::ServeQueue) measures, plus
    /// per-replica dispatch counts, busy time against the pool's
    /// uptime, and the [`PoolHealth`] degradation picture.
    pub fn stats(&self) -> SessionStats {
        // Fold in any backlog high-water mark the replicas have not
        // absorbed yet (state lock strictly before stats lock, the
        // crate-wide order).
        let (depth_seen, health) = {
            let state = self.shared.lock_state();
            (
                state.max_depth_seen,
                PoolHealth {
                    healthy: state.live.min(self.policy.replicas),
                    quarantined: state.quarantined,
                    restarts: state.restarts,
                },
            )
        };
        let mut stats = self.shared.stats.lock().expect("stats lock").clone();
        stats.record_queue_depth(depth_seen);
        stats.note_pool(self.policy.replicas, self.shared.started.elapsed());
        stats.note_pool_health(health);
        stats
    }

    /// Stops accepting submissions (they answer
    /// [`BackendError::QueueClosed`]) while the replicas drain every
    /// request already accepted. Does not block; pair with
    /// [`shutdown`](ReplicaPool::shutdown) or ticket waits to observe
    /// the drain finishing. Idempotent and safe to call concurrently
    /// from any number of threads.
    pub fn close(&self) {
        self.shared.lock_state().open = false;
        self.shared.work.notify_all();
    }

    /// Closes the pool, waits for every replica to drain and resolve
    /// every accepted ticket, and returns the final statistics.
    /// Idempotent with respect to concurrent [`close`] calls: however
    /// many threads raced it, the drain happens once.
    ///
    /// [`close`]: ReplicaPool::close
    pub fn shutdown(self) -> SessionStats {
        self.close();
        self.join_replicas();
        self.stats()
    }

    /// Joins every replica thread exactly once, whichever of
    /// [`shutdown`](ReplicaPool::shutdown) and `Drop` gets there first.
    fn join_replicas(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut replicas = self
                .replicas
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            replicas.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Seeds the statistics (used by
    /// [`Session::into_pool`](crate::session::Session::into_pool) to
    /// carry a session's accumulated measurements into the pool).
    pub(crate) fn seed_stats(&self, mut stats: SessionStats) {
        // The seeding session's backend (and any cache store it owned)
        // is gone — fold its live cache snapshots into the carried
        // baseline so this pool's replicas can reuse the slot indices.
        stats.rebase_cache();
        *self.shared.stats.lock().expect("stats lock") = stats;
    }

    /// Replica wait-loop iterations so far — the no-busy-spin
    /// diagnostic the unit tests pin.
    #[cfg(test)]
    fn wakeups(&self) -> u64 {
        self.shared.lock_state().wakeups
    }
}

impl Drop for ReplicaPool {
    /// Same contract as [`shutdown`](ReplicaPool::shutdown): close,
    /// drain, join — accepted tickets resolve before the pool
    /// disappears.
    fn drop(&mut self) {
        self.close();
        self.join_replicas();
    }
}

impl core::fmt::Debug for ReplicaPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplicaPool")
            .field("policy", &self.policy)
            .field("ns", &self.ns)
            .field("depth", &self.depth())
            .field("health", &self.health())
            .finish_non_exhaustive()
    }
}

/// A replica's per-micro-batch guard: settles the backpressure
/// accounting exactly once and, if dropped with tickets still armed (a
/// replica unwinding out of its own scheduling code), fails them with
/// [`BackendError::QueueClosed`] — so neither `outstanding` nor any
/// accepted ticket can leak, whichever way the micro-batch ends.
struct BatchInFlight<'a> {
    shared: &'a PoolShared,
    unsettled: usize,
    tickets: Vec<Arc<TicketCell>>,
}

impl BatchInFlight<'_> {
    /// Frees the whole micro-batch's backpressure capacity (idempotent).
    fn settle(&mut self) {
        self.settle_n(self.unsettled);
    }

    /// Frees `n` riders' backpressure slots — the riders whose tickets
    /// are about to resolve.
    fn settle_n(&mut self, n: usize) {
        let n = n.min(self.unsettled);
        if n > 0 {
            self.shared.lock_state().outstanding -= n;
            self.unsettled -= n;
            // Wake drain-waiting replicas: `outstanding` reaching zero
            // is part of their exit condition.
            self.shared.work.notify_all();
        }
    }

    /// Hands `n` riders' slots back to the waiting room *without*
    /// freeing them: a re-queued rider is still unresolved and still
    /// counted by `max_depth`.
    fn transfer_n(&mut self, n: usize) {
        self.unsettled = self.unsettled.saturating_sub(n);
    }
}

impl Drop for BatchInFlight<'_> {
    fn drop(&mut self) {
        self.settle();
        for ticket in self.tickets.drain(..) {
            ticket.resolve(Err(BackendError::QueueClosed));
        }
    }
}

/// Takes one replica out of service — the single exit path of every
/// replica thread, crash or drain. Only when the *last* live replica
/// leaves does the pool close and fail the backlog with
/// [`BackendError::QueueClosed`]; until then the survivors keep
/// draining at reduced capacity.
fn retire(shared: &PoolShared, quarantine: bool) {
    let mut state = shared.lock_state();
    state.live = state.live.saturating_sub(1);
    if quarantine {
        state.quarantined += 1;
    }
    if state.live > 0 {
        drop(state);
        shared.work.notify_all();
        return;
    }
    // Zero replicas remain: nothing can serve the backlog any more.
    state.open = false;
    let abandoned: Vec<PendingRequest> = state.pending.drain(..).collect();
    state.pending_tokens = 0;
    state.outstanding = state.outstanding.saturating_sub(abandoned.len());
    drop(state);
    shared.work.notify_all();
    for request in abandoned {
        request.ticket.resolve(Err(BackendError::QueueClosed));
    }
}

/// Guarantees [`retire`] runs exactly once per replica thread, even if
/// the scheduling code itself unwinds. A normal drain exit clears
/// `quarantine` first; any other way out counts as a crash.
struct ReplicaExit<'a> {
    shared: &'a PoolShared,
    quarantine: bool,
}

impl Drop for ReplicaExit<'_> {
    fn drop(&mut self) {
        retire(self.shared, self.quarantine);
    }
}

/// What a replica's scan of the waiting room found: how many tokens are
/// dispatchable right now, the earliest dispatch deadline among them,
/// and the earliest instant a held (backing-off) rider matures.
struct RoomScan {
    eligible_tokens: usize,
    next_deadline: Option<Instant>,
    next_retry: Option<Instant>,
}

/// Scans the waiting room at `now`. A rider still inside its backoff
/// window is *held*, and holds every later pending request of the same
/// client with it — that is what preserves per-client order across
/// retries. Requests of other clients stay eligible.
fn scan_room(state: &PoolState, now: Instant) -> RoomScan {
    let mut held_clients: Vec<u64> = Vec::new();
    let mut scan = RoomScan {
        eligible_tokens: 0,
        next_deadline: None,
        next_retry: None,
    };
    for request in &state.pending {
        if held_clients.contains(&request.client) {
            continue;
        }
        match request.retry_at {
            Some(at) if at > now => {
                held_clients.push(request.client);
                scan.next_retry = Some(scan.next_retry.map_or(at, |b| b.min(at)));
            }
            _ => {
                scan.eligible_tokens += request.batch.len();
                if let Some(deadline) = request.dispatch_by {
                    scan.next_deadline =
                        Some(scan.next_deadline.map_or(deadline, |b| b.min(deadline)));
                }
            }
        }
    }
    scan
}

/// Fills one micro-batch from the waiting room under the policy's
/// fairness discipline. Whole requests only, up to `max_batch` tokens
/// (a single oversized request rides alone); riders still backing off —
/// and their clients' later requests — are left queued. Returns the
/// picked requests and their total token count.
fn coalesce(
    state: &mut PoolState,
    policy: &ServePolicy,
    now: Instant,
) -> (Vec<PendingRequest>, usize) {
    let mut held: Vec<u64> = Vec::new();
    for request in &state.pending {
        if request.retry_at.is_some_and(|at| at > now) && !held.contains(&request.client) {
            held.push(request.client);
        }
    }
    let mut picked = Vec::new();
    let mut total = 0usize;
    match policy.fairness {
        Fairness::Fifo => {
            let mut index = 0usize;
            while index < state.pending.len() {
                let request = &state.pending[index];
                if held.contains(&request.client) {
                    index += 1;
                    continue;
                }
                let len = request.batch.len();
                if !picked.is_empty() && total + len > policy.queue.max_batch {
                    break;
                }
                let request = state.pending.remove(index).expect("index exists");
                state.pending_tokens -= len;
                total += len;
                picked.push(request);
                // The removal shifted the next candidate into `index`.
            }
        }
        Fairness::RoundRobin => {
            // Clients in order of their oldest pending request, the
            // cycle resumed just past the last client served.
            let mut clients: Vec<u64> = Vec::new();
            for request in &state.pending {
                if !held.contains(&request.client) && !clients.contains(&request.client) {
                    clients.push(request.client);
                }
            }
            if let Some(last) = state.rr_last {
                if let Some(pos) = clients.iter().position(|&c| c == last) {
                    clients.rotate_left(pos + 1);
                }
            }
            let mut progressed = true;
            'fill: while progressed {
                progressed = false;
                for &client in &clients {
                    let Some(index) = state.pending.iter().position(|r| r.client == client) else {
                        continue;
                    };
                    let len = state.pending[index].batch.len();
                    if !picked.is_empty() && total + len > policy.queue.max_batch {
                        continue;
                    }
                    let request = state.pending.remove(index).expect("index exists");
                    state.pending_tokens -= len;
                    total += len;
                    state.rr_last = Some(client);
                    picked.push(request);
                    progressed = true;
                    if total >= policy.queue.max_batch {
                        break 'fill;
                    }
                }
            }
        }
    }
    (picked, total)
}

/// A picked request's bookkeeping while its tokens ride a micro-batch.
struct Rider {
    len: usize,
    ticket: Arc<TicketCell>,
    submitted: Instant,
    client: u64,
    dispatch_by: Option<Instant>,
    attempts: u32,
    queue_wait: Duration,
}

/// The retry path: a micro-batch failed transiently (typed transient
/// error or replica panic). Each rider with budget left is re-queued at
/// the *front* of the waiting room — original order, original ticket,
/// original deadline — held back by an exponential backoff; riders out
/// of budget resolve with the typed error.
#[allow(clippy::too_many_arguments)]
fn retry_or_fail(
    shared: &PoolShared,
    policy: &ServePolicy,
    replica: usize,
    guard: &mut BatchInFlight<'_>,
    riders: Vec<Rider>,
    micro: TokenBatch,
    error: &BackendError,
    service: Duration,
    depth_seen: u64,
) {
    let recovery = &policy.recovery;
    let now = Instant::now();
    let mut tokens = micro.into_tokens().into_iter();
    let mut requeued: Vec<PendingRequest> = Vec::new();
    let mut failed: Vec<Arc<TicketCell>> = Vec::new();
    let mut failed_tokens = 0usize;
    let mut failed_waits: Vec<Duration> = Vec::new();
    for rider in riders {
        // The riders' batches were consumed building the micro-batch;
        // carve them back out of it, in order.
        let batch_tokens: Vec<Token> = tokens.by_ref().take(rider.len).collect();
        if rider.attempts < recovery.max_retries {
            requeued.push(PendingRequest {
                batch: TokenBatch::new(batch_tokens).expect("riders carry at least one token"),
                ticket: rider.ticket,
                submitted: rider.submitted,
                client: rider.client,
                dispatch_by: rider.dispatch_by,
                attempts: rider.attempts + 1,
                retry_at: now.checked_add(recovery.backoff_for(rider.attempts)),
            });
        } else {
            failed_tokens += rider.len;
            failed_waits.push(rider.queue_wait);
            failed.push(rider.ticket);
        }
    }
    let retried = requeued.len() as u64;
    // Re-queued riders keep their backpressure slots (still unresolved);
    // failed riders free theirs before their tickets resolve, so a woken
    // submitter deterministically finds the room open.
    guard.transfer_n(requeued.len());
    guard.settle_n(failed.len());
    if !requeued.is_empty() {
        let mut state = shared.lock_state();
        state.pending_tokens += requeued.iter().map(|r| r.batch.len()).sum::<usize>();
        for request in requeued.into_iter().rev() {
            state.pending.push_front(request);
        }
        drop(state);
        shared.work.notify_all();
    }
    {
        let mut stats = shared.stats.lock().expect("stats lock");
        stats.record_retries(retried);
        if failed_tokens > 0 {
            // Only riders that actually resolve count queue-side here;
            // a retried rider is absorbed once, on its final attempt.
            stats.absorb_queue_side(failed_tokens, &failed_waits);
        }
        stats.record_queue_depth(depth_seen);
        stats.record_replica_dispatch(replica, service);
    }
    for ticket in failed {
        ticket.resolve(Err(error.clone()));
    }
    guard.tickets.clear();
}

/// One replica's loop: collect → coalesce → run → split → resolve,
/// retrying transient failures and surviving backend panics, until the
/// pool is closed *and* nothing unresolved remains.
fn replica_loop(
    shared: &PoolShared,
    policy: &ServePolicy,
    replica: usize,
    mut backend: Box<dyn MacroBackend>,
    rebuild: Option<ReplicaFactory>,
) {
    let mut exit = ReplicaExit {
        shared,
        quarantine: true,
    };
    let mut respawns_left = if rebuild.is_some() {
        policy.recovery.respawn
    } else {
        0
    };
    loop {
        // ── Collect: wait for work, linger for a fuller micro-batch ──
        let mut state = shared.lock_state();
        loop {
            state.wakeups += 1;
            if state.pending.is_empty() {
                if !state.open && state.outstanding == 0 {
                    // Closed and nothing unresolved anywhere — no rider
                    // mid-service on a sibling can be re-queued on us.
                    exit.quarantine = false;
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let now = Instant::now();
            let scan = scan_room(&state, now);
            if scan.eligible_tokens > 0
                && (scan.eligible_tokens >= policy.queue.max_batch || !state.open)
            {
                break;
            }
            // Wake at the earlier of the dispatch deadline and the first
            // backing-off rider maturing; an unrepresentable deadline
            // across the whole room ("wait until the batch fills")
            // degrades to an untimed wait — work or close() wakes us.
            let wake = match (scan.next_deadline, scan.next_retry) {
                (Some(d), Some(r)) => Some(d.min(r)),
                (d, r) => d.or(r),
            };
            let Some(wake) = wake else {
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
                continue;
            };
            let left = wake.saturating_duration_since(now);
            if left.is_zero() {
                if scan.eligible_tokens > 0 {
                    break;
                }
                // A held rider just matured; rescan makes it eligible.
                continue;
            }
            let (s, _) = shared
                .work
                .wait_timeout(state, left)
                .unwrap_or_else(|p| p.into_inner());
            state = s;
        }

        // ── Coalesce: whole requests per the fairness discipline ──
        let (picked, total) = coalesce(&mut state, policy, Instant::now());
        let depth_seen = state.max_depth_seen;
        drop(state);
        if picked.is_empty() {
            // Another replica emptied the waiting room between our
            // wakeup and the coalesce; go back to waiting.
            continue;
        }
        // Let sibling replicas pick up what this micro-batch left
        // behind, instead of lingering until their own timeouts fire.
        shared.work.notify_all();

        // ── Run: one backend call for the whole micro-batch ──
        let mut guard = BatchInFlight {
            shared,
            unsettled: picked.len(),
            tickets: picked.iter().map(|p| Arc::clone(&p.ticket)).collect(),
        };
        let dispatched = Instant::now();
        let mut tokens: Vec<Token> = Vec::with_capacity(total);
        let mut riders: Vec<Rider> = Vec::with_capacity(picked.len());
        for request in picked {
            riders.push(Rider {
                len: request.batch.len(),
                ticket: request.ticket,
                submitted: request.submitted,
                client: request.client,
                dispatch_by: request.dispatch_by,
                attempts: request.attempts,
                queue_wait: dispatched.saturating_duration_since(request.submitted),
            });
            tokens.extend(request.batch.into_tokens());
        }
        let micro = TokenBatch::new(tokens).expect("picked requests are non-empty");
        // A panicking backend must not take the whole pool down with it:
        // catch the unwind, re-queue the riders, and respawn or retire
        // this replica. `AssertUnwindSafe` is sound here because the
        // backend is discarded (rebuilt or retired) after any panic.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| backend.run_batch(&micro)));
        let service = dispatched.elapsed();
        let waits: Vec<Duration> = riders.iter().map(|r| r.queue_wait).collect();

        // Harvest this replica's cache counters after every non-panic
        // attempt — failed ones included: a transient fault still
        // counted its misses, and skipping it would understate lookups.
        // After a panic the backend is about to be discarded, so its
        // last snapshot is simply lost with it.
        if outcome.is_ok() {
            if let Some(cache) = backend.cache_stats() {
                shared
                    .stats
                    .lock()
                    .expect("stats lock")
                    .note_cache(replica, cache);
            }
        }

        // ── Split and resolve: each ticket gets its own token slice ──
        match outcome {
            Ok(Ok(result)) if result.tokens.len() == micro.len() => {
                // Free backpressure capacity before resolving, so a
                // submitter woken by its ticket deterministically finds
                // the slot open.
                guard.settle();
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queued(&result, service, &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                let mut offset = 0usize;
                for rider in riders {
                    let observations = result.tokens[offset..offset + rider.len].to_vec();
                    offset += rider.len;
                    let energy = observations
                        .iter()
                        .map(|o| o.energy)
                        .collect::<Option<Vec<_>>>()
                        .and_then(|es| es.into_iter().reduce(|a, b| a + b));
                    rider.ticket.resolve(Ok(QueueReply {
                        result: BatchResult {
                            backend: result.backend,
                            tokens: observations,
                            makespan: result.makespan,
                            energy,
                        },
                        queue_wait: rider.queue_wait,
                        service,
                        coalesced_tokens: total,
                        replica,
                    }));
                }
                guard.tickets.clear();
            }
            Ok(Ok(result)) => {
                // A custom backend broke the one-observation-per-token
                // contract; a typed rejection beats mis-sliced outputs.
                // Fatal, not transient: the backend would do it again.
                let error = BackendError::MalformedProgram {
                    reason: format!(
                        "backend returned {} observations for a {}-token micro-batch",
                        result.tokens.len(),
                        micro.len()
                    ),
                };
                guard.settle();
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                for rider in riders {
                    rider.ticket.resolve(Err(error.clone()));
                }
                guard.tickets.clear();
            }
            Ok(Err(error)) if error.is_transient() => {
                retry_or_fail(
                    shared, policy, replica, &mut guard, riders, micro, &error, service, depth_seen,
                );
            }
            Ok(Err(error)) => {
                // Whole-batch rejection with a fatal error: every rider
                // gets it — retrying would fail identically. The
                // queue-side stats still count the batch; only the
                // served-token measurements are success-only.
                guard.settle();
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                    stats.record_replica_dispatch(replica, service);
                }
                for rider in riders {
                    rider.ticket.resolve(Err(error.clone()));
                }
                guard.tickets.clear();
            }
            Err(_panic) => {
                // The backend panicked mid-service. The riders are
                // blameless until proven otherwise: re-queue them under
                // the retry budget (another replica — or this one, once
                // respawned — picks them up).
                retry_or_fail(
                    shared,
                    policy,
                    replica,
                    &mut guard,
                    riders,
                    micro,
                    &BackendError::ReplicaPanicked,
                    service,
                    depth_seen,
                );
                // The panicked backend is poisoned; rebuild it from the
                // recipe while the restart budget lasts, else retire.
                let mut fresh = None;
                if let Some(recipe) = rebuild.as_ref() {
                    while fresh.is_none() && respawns_left > 0 {
                        respawns_left -= 1;
                        // A recipe that itself panics or errors burns a
                        // respawn and tries again (or falls through to
                        // quarantine).
                        if let Ok(Ok(rebuilt)) =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| recipe()))
                        {
                            fresh = Some(rebuilt);
                        }
                    }
                }
                match fresh {
                    Some(rebuilt) => {
                        backend = rebuilt;
                        shared.lock_state().restarts += 1;
                        shared.work.notify_all();
                    }
                    None => {
                        // Crash through the budget: quarantine via the
                        // exit guard (`quarantine` is still true).
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use maddpipe_core::config::MacroConfig;
    use maddpipe_core::macro_rtl::MacroProgram;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A pool of `replicas` functional backends over a tiny 2×2 macro.
    fn functional_pool(replicas: usize, policy: ServePolicy) -> (ReplicaPool, MacroProgram) {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 11);
        let factories: Vec<BackendFactory> = (0..replicas)
            .map(|_| {
                let cfg = cfg.clone();
                let program = program.clone();
                let factory: BackendFactory =
                    Box::new(move || BackendKind::Functional { workers: 1 }.build(&cfg, program));
                factory
            })
            .collect();
        let pool = ReplicaPool::from_factories(policy, 2, factories).expect("pool builds");
        (pool, program)
    }

    #[test]
    fn zero_linger_pools_do_not_busy_spin() {
        let policy = ServePolicy::default()
            .with_replicas(2)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO));
        let (pool, program) = functional_pool(2, policy);
        // Serve a few requests so every replica has been through its
        // loop at least once.
        for seed in 0..4 {
            let batch = TokenBatch::random(2, 2, seed);
            let reply = pool.submit(batch.clone()).unwrap().wait().unwrap();
            assert_eq!(
                reply.result.tokens[0].outputs,
                program.reference_output(&batch.tokens()[0])
            );
        }
        // Idle pool: replicas must block on the condvar, not spin on a
        // zero-length linger timeout.
        std::thread::sleep(Duration::from_millis(120));
        let settled = pool.wakeups();
        std::thread::sleep(Duration::from_millis(120));
        let after_idle = pool.wakeups();
        assert_eq!(
            after_idle,
            settled,
            "idle replicas took {} wait-loop turns — the zero-linger loop is spinning",
            after_idle - settled
        );
        // Serving stays O(1) wakeups per submission, not a spin.
        for seed in 0..8 {
            pool.submit(TokenBatch::random(2, 2, seed))
                .unwrap()
                .wait()
                .unwrap();
        }
        let after_serving = pool.wakeups();
        assert!(
            after_serving - after_idle <= 8 * 2 * 8,
            "8 submissions took {} wait-loop turns across 2 replicas",
            after_serving - after_idle
        );
        pool.shutdown();
    }

    #[test]
    fn empty_factory_lists_are_rejected() {
        let err = ReplicaPool::from_factories(ServePolicy::default(), 2, Vec::new()).unwrap_err();
        assert!(
            matches!(err, BackendError::QueueUnavailable { .. }),
            "{err}"
        );
        let err = ReplicaPool::from_recipes(ServePolicy::default(), 2, Vec::new()).unwrap_err();
        assert!(
            matches!(err, BackendError::QueueUnavailable { .. }),
            "{err}"
        );
    }

    #[test]
    fn a_failing_factory_tears_the_pool_down() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 3);
        let good: BackendFactory =
            Box::new(move || BackendKind::Functional { workers: 1 }.build(&cfg, program));
        let bad: BackendFactory = Box::new(|| Err(BackendError::MissingProgram));
        let err = ReplicaPool::from_factories(ServePolicy::default(), 2, vec![good, bad])
            .expect_err("one bad factory fails the pool");
        assert_eq!(err, BackendError::MissingProgram);
    }

    #[test]
    fn round_robin_preserves_per_client_order() {
        let policy = ServePolicy::default()
            .with_fairness(Fairness::RoundRobin)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO));
        let (pool, program) = functional_pool(1, policy);
        // Interleave submissions from three clients; each client's
        // replies must come back in its own submission order with the
        // right outputs.
        std::thread::scope(|s| {
            for client in 0..3u64 {
                let pool = &pool;
                let program = &program;
                s.spawn(move || {
                    for round in 0..5u64 {
                        let batch = TokenBatch::random(2, 3, client * 100 + round);
                        let opts = SubmitOptions::default().with_client(client);
                        let reply = pool.submit_with(batch.clone(), opts).unwrap();
                        let reply = reply.wait().expect("served");
                        for (t, token) in batch.tokens().iter().enumerate() {
                            assert_eq!(
                                reply.result.tokens[t].outputs,
                                program.reference_output(token)
                            );
                        }
                    }
                });
            }
        });
        let stats = pool.shutdown();
        assert_eq!(stats.tokens(), 45);
    }

    /// A backend that fails its first `flaky` calls with a transient
    /// error, then serves correctly forever.
    struct TransientlyFlaky {
        inner: Box<dyn MacroBackend>,
        failures_left: Arc<AtomicUsize>,
    }

    impl MacroBackend for TransientlyFlaky {
        fn name(&self) -> &'static str {
            "transiently-flaky"
        }

        fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            if self
                .failures_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(BackendError::Transient {
                    reason: "injected flake".into(),
                });
            }
            self.inner.run_batch(batch)
        }
    }

    /// A 1-replica pool whose backend flakes transiently `failures`
    /// times before serving.
    fn flaky_pool(failures: usize, recovery: RecoveryPolicy) -> (ReplicaPool, MacroProgram) {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 11);
        let failures = Arc::new(AtomicUsize::new(failures));
        let factory: BackendFactory = Box::new({
            let cfg = cfg.clone();
            let program = program.clone();
            let failures = Arc::clone(&failures);
            move || {
                Ok(Box::new(TransientlyFlaky {
                    inner: BackendKind::Functional { workers: 1 }.build(&cfg, program)?,
                    failures_left: failures,
                }))
            }
        });
        let policy = ServePolicy::default()
            .with_recovery(recovery)
            .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO));
        let pool = ReplicaPool::from_factories(policy, 2, vec![factory]).expect("pool builds");
        (pool, program)
    }

    #[test]
    fn transient_failures_retry_to_success_within_budget() {
        let recovery = RecoveryPolicy::default()
            .with_max_retries(3)
            .with_backoff(Duration::from_micros(50));
        let (pool, program) = flaky_pool(2, recovery);
        let batch = TokenBatch::random(2, 4, 5);
        let reply = pool
            .submit(batch.clone())
            .unwrap()
            .wait()
            .expect("retried to success");
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(
                reply.result.tokens[t].outputs,
                program.reference_output(token)
            );
        }
        assert_eq!(pool.health().quarantined, 0);
        let stats = pool.shutdown();
        assert_eq!(stats.retries(), 2, "two flakes, two re-queues");
        assert_eq!(stats.tokens(), 4, "the batch counts once despite retries");
    }

    #[test]
    fn exhausted_retry_budgets_surface_the_typed_transient_error() {
        // More injected failures than the budget allows: the ticket must
        // resolve with the typed transient error, not hang or close.
        let recovery = RecoveryPolicy::default()
            .with_max_retries(1)
            .with_backoff(Duration::from_micros(50));
        let (pool, _) = flaky_pool(100, recovery);
        let err = pool
            .submit(TokenBatch::random(2, 4, 5))
            .unwrap()
            .wait()
            .expect_err("budget exhausts");
        assert!(
            matches!(err, BackendError::Transient { .. }),
            "exhausted retries surface the last typed error, got {err}"
        );
        // The pool is degraded-free and still serving: transient errors
        // never quarantine a replica.
        assert_eq!(pool.health().healthy, 1);
        let stats = pool.shutdown();
        assert_eq!(stats.retries(), 1);
    }

    #[test]
    fn recovery_none_fails_fast_on_the_first_transient_error() {
        let (pool, _) = flaky_pool(1, RecoveryPolicy::none());
        let err = pool
            .submit(TokenBatch::random(2, 4, 5))
            .unwrap()
            .wait()
            .expect_err("no budget, no retry");
        assert!(matches!(err, BackendError::Transient { .. }), "{err}");
        let stats = pool.shutdown();
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn concurrent_close_shutdown_and_drop_are_idempotent() {
        let (pool, _) = functional_pool(2, ServePolicy::default());
        // Accept a backlog, then race close() from many threads while
        // submitters are still pushing: no panic, no leaked ticket.
        let tickets: Vec<BatchTicket> = (0..8)
            .map(|seed| pool.submit(TokenBatch::random(2, 2, seed)).unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                s.spawn(move || pool.close());
            }
            for seed in 0..4 {
                let pool = &pool;
                s.spawn(move || {
                    // Racing submissions either get served or see the
                    // closed queue — never a panic or a hang.
                    match pool.submit(TokenBatch::random(2, 2, 100 + seed)) {
                        Ok(ticket) => {
                            let _ = ticket.wait();
                        }
                        Err(e) => assert_eq!(e, BackendError::QueueClosed),
                    }
                });
            }
        });
        pool.close(); // close-after-close is a no-op
        for ticket in tickets {
            // Everything accepted before the close drains to a result.
            ticket.wait().expect("accepted work drains");
        }
        let stats = pool.shutdown();
        assert!(stats.tokens() >= 16);
    }
}
