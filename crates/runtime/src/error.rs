//! The unified error type of the execution API.
//!
//! Every failure a backend or session can hit is a [`BackendError`]
//! variant — construction-time shape disagreements, malformed batches,
//! netlists that fail to settle, shard plans that don't partition the
//! program, and shards that fail or disappear mid-serving. Backends
//! never panic on user input; a batch either completes whole (one
//! observation per token) or is rejected whole with one of these values.
//! Shard failures wrap the shard's own error in
//! [`BackendError::Shard`], preserving the chain via
//! [`std::error::Error::source`].

use core::fmt;
use maddpipe_core::macro_rtl::TokenError;
use maddpipe_sim::engine::OscillationError;

/// The specific [`QueuePolicy`](crate::queue::QueuePolicy) bound that
/// rejected a submission with [`BackendError::QueueFull`].
///
/// The two admission bounds protect different resources: `Requests`
/// caps how many tickets can be unresolved at once (queued *or*
/// executing), while `Tokens` caps how much batch payload may sit
/// queued awaiting dispatch, so one client submitting huge batches
/// cannot bypass memory bounds by staying under the request cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueLimit {
    /// The unresolved-request bound (`max_depth`) was hit.
    Requests {
        /// The configured depth bound.
        max_depth: usize,
    },
    /// The queued-token bound (`max_pending_tokens`) would be exceeded.
    Tokens {
        /// Tokens already queued when the submission arrived.
        pending_tokens: usize,
        /// The configured queued-token bound.
        max_pending_tokens: usize,
    },
}

/// Everything that can go wrong building or running a backend — one typed
/// enum in place of the previous mix of `assert!` panics and raw
/// [`OscillationError`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// A batch must carry at least one token.
    EmptyBatch,
    /// A token does not provide one subvector per pipeline stage.
    ShapeMismatch {
        /// Index of the offending token within the batch.
        token: usize,
        /// Pipeline stages the macro was configured with.
        expected: usize,
        /// Subvectors the token actually carries.
        got: usize,
    },
    /// The program's shape disagrees with the macro configuration.
    ProgramMismatch {
        /// Decoders per block in the configuration.
        cfg_ndec: usize,
        /// Pipeline stages in the configuration.
        cfg_ns: usize,
        /// Decoders per block in the program.
        program_ndec: usize,
        /// Pipeline stages in the program.
        program_ns: usize,
    },
    /// The program cannot be executed by this backend (e.g. a hash tree
    /// whose depth differs from the hardware's fixed 4 levels).
    MalformedProgram {
        /// Human-readable explanation.
        reason: String,
    },
    /// A session was built without a program.
    MissingProgram,
    /// The RTL netlist failed to settle — a handshake bug or a
    /// combinational loop.
    Oscillation(OscillationError),
    /// A shard plan cannot be constructed or does not fit the program it
    /// is asked to partition (zero shards, more shards than decoder
    /// chains, width disagreement, a shard breaking the
    /// one-observation-per-token contract, …).
    InvalidShardPlan {
        /// Human-readable explanation.
        reason: String,
    },
    /// One shard of a sharded backend failed; the whole batch was
    /// rejected and no partial output was assembled.
    Shard {
        /// Index of the failing shard within the plan.
        shard: usize,
        /// The shard's own typed failure.
        source: Box<BackendError>,
    },
    /// A shard worker thread disappeared (panicked or shut down) before
    /// answering — the sharded backend can no longer serve batches.
    ShardLost {
        /// Index of the lost shard within the plan.
        shard: usize,
    },
    /// One stage of a [`PipelineGraph`](crate::pipeline::PipelineGraph)
    /// failed the request; the stage's own typed failure is wrapped so a
    /// submitter can tell *where* in the dataflow the request died, just
    /// as [`BackendError::Shard`] names the failing shard of a width
    /// split.
    Stage {
        /// Index of the failing stage within the pipeline.
        stage: usize,
        /// The stage's own typed failure.
        source: Box<BackendError>,
    },
    /// A transient fault: the computation itself is sound, but this
    /// attempt failed for a reason that is expected to clear on retry
    /// (a soft error, an injected chaos fault, a resource hiccup).
    /// Serving layers re-run the batch under their
    /// [`RecoveryPolicy`](crate::pool::RecoveryPolicy) instead of
    /// surfacing this immediately.
    Transient {
        /// Human-readable explanation.
        reason: String,
    },
    /// The replica serving a micro-batch panicked mid-service. The
    /// batch itself may be fine — pools re-queue the riders and retry
    /// on another (or a respawned) replica; the error only reaches a
    /// ticket once the retry budget is exhausted.
    ReplicaPanicked,
    /// A serving queue rejected the submission because accepting it
    /// would exceed one of its [`QueuePolicy`](crate::queue::QueuePolicy)
    /// bounds — typed backpressure; retry after waiting on an
    /// outstanding ticket (or split the batch, for the token bound).
    QueueFull {
        /// Which policy bound rejected the submission.
        limit: QueueLimit,
    },
    /// The serving queue is shut down (or its dispatcher died): it
    /// accepts no new submissions, and any ticket that could no longer
    /// be served resolves to this error instead of leaking.
    QueueClosed,
    /// The session cannot be converted into a serving queue — it was
    /// built from a caller-constructed backend, so there is no recipe to
    /// rebuild the backend on the dispatcher thread. Use
    /// [`ServeQueue::from_factory`](crate::queue::ServeQueue::from_factory)
    /// instead.
    QueueUnavailable {
        /// Human-readable explanation.
        reason: String,
    },
}

impl BackendError {
    /// Whether retrying the same work is expected to succeed.
    ///
    /// Transient failures are properties of an *attempt*, not of the
    /// batch or program: a replica panic, a soft error flagged as
    /// [`BackendError::Transient`], a netlist that missed its
    /// completion window ([`BackendError::Oscillation`] — on real
    /// silicon the self-synchronous handshake simply re-fires), a lost
    /// shard worker, or backpressure ([`BackendError::QueueFull`])
    /// that clears as tickets resolve. Everything else — shape and
    /// program mismatches, malformed input, a closed queue — is a
    /// property of the request or the configuration and will fail
    /// identically on every retry.
    ///
    /// Serving layers ([`ReplicaPool`](crate::pool::ReplicaPool),
    /// [`ShardedBackend`](crate::sharded::ShardedBackend)) consult this
    /// to decide between re-queueing under a
    /// [`RecoveryPolicy`](crate::pool::RecoveryPolicy) and failing the
    /// tickets with the typed error.
    pub fn is_transient(&self) -> bool {
        match self {
            BackendError::Transient { .. }
            | BackendError::ReplicaPanicked
            | BackendError::Oscillation(_)
            | BackendError::ShardLost { .. }
            | BackendError::QueueFull { .. } => true,
            // A shard or stage failure is as transient as what it hit.
            BackendError::Shard { source, .. } | BackendError::Stage { source, .. } => {
                source.is_transient()
            }
            BackendError::EmptyBatch
            | BackendError::ShapeMismatch { .. }
            | BackendError::ProgramMismatch { .. }
            | BackendError::MalformedProgram { .. }
            | BackendError::MissingProgram
            | BackendError::InvalidShardPlan { .. }
            | BackendError::QueueClosed
            | BackendError::QueueUnavailable { .. } => false,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::EmptyBatch => write!(f, "a token batch must not be empty"),
            BackendError::ShapeMismatch {
                token,
                expected,
                got,
            } => write!(
                f,
                "token {token} carries {got} subvectors but the macro has {expected} stages"
            ),
            BackendError::ProgramMismatch {
                cfg_ndec,
                cfg_ns,
                program_ndec,
                program_ns,
            } => write!(
                f,
                "program shape Ndec={program_ndec}/NS={program_ns} does not match \
                 configuration Ndec={cfg_ndec}/NS={cfg_ns}"
            ),
            BackendError::MalformedProgram { reason } => {
                write!(f, "malformed program: {reason}")
            }
            BackendError::MissingProgram => {
                write!(f, "session builder needs a program before build()")
            }
            BackendError::Oscillation(e) => write!(f, "{e}"),
            BackendError::InvalidShardPlan { reason } => {
                write!(f, "invalid shard plan: {reason}")
            }
            BackendError::Shard { shard, source } => {
                write!(f, "shard {shard} failed: {source}")
            }
            BackendError::Stage { stage, source } => {
                write!(f, "pipeline stage {stage} failed: {source}")
            }
            BackendError::ShardLost { shard } => {
                write!(f, "shard {shard} worker is gone (panicked or shut down)")
            }
            BackendError::Transient { reason } => {
                write!(f, "transient fault (retryable): {reason}")
            }
            BackendError::ReplicaPanicked => {
                write!(
                    f,
                    "replica panicked mid-service; the batch was not completed"
                )
            }
            BackendError::QueueFull { limit } => match limit {
                QueueLimit::Requests { max_depth } => write!(
                    f,
                    "serving queue is full ({max_depth} unresolved requests); \
                     retry after a ticket resolves"
                ),
                QueueLimit::Tokens {
                    pending_tokens,
                    max_pending_tokens,
                } => write!(
                    f,
                    "serving queue is full ({pending_tokens} tokens queued, bound \
                     {max_pending_tokens}); retry after a ticket resolves or split the batch"
                ),
            },
            BackendError::QueueClosed => {
                write!(f, "serving queue is shut down and accepts no submissions")
            }
            BackendError::QueueUnavailable { reason } => {
                write!(f, "cannot serve this session through a queue: {reason}")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Oscillation(e) => Some(e),
            BackendError::Shard { source, .. } | BackendError::Stage { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

impl From<OscillationError> for BackendError {
    fn from(e: OscillationError) -> BackendError {
        BackendError::Oscillation(e)
    }
}

impl From<TokenError> for BackendError {
    fn from(e: TokenError) -> BackendError {
        match e {
            TokenError::ShapeMismatch {
                token,
                expected,
                got,
            } => BackendError::ShapeMismatch {
                token,
                expected,
                got,
            },
            TokenError::EmptyStream => BackendError::EmptyBatch,
            TokenError::Oscillation(o) => BackendError::Oscillation(o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_sim::time::SimTime;

    #[test]
    fn displays_are_informative() {
        let s = BackendError::ShapeMismatch {
            token: 3,
            expected: 4,
            got: 2,
        }
        .to_string();
        assert!(s.contains("token 3") && s.contains('4') && s.contains('2'));
        assert!(BackendError::EmptyBatch.to_string().contains("empty"));
        let o = BackendError::from(OscillationError {
            events: 9,
            time: SimTime::ZERO,
        });
        assert!(o.to_string().contains("quiescence"));
    }

    #[test]
    fn shard_errors_name_the_shard_and_expose_the_source() {
        let inner = BackendError::EmptyBatch;
        let e = BackendError::Shard {
            shard: 3,
            source: Box::new(inner.clone()),
        };
        assert!(e.to_string().contains("shard 3"), "{e}");
        use std::error::Error as _;
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
        assert!(BackendError::ShardLost { shard: 1 }
            .to_string()
            .contains("shard 1"));
        let p = BackendError::InvalidShardPlan {
            reason: "0 shards".into(),
        };
        assert!(p.to_string().contains("0 shards"));
    }

    #[test]
    fn stage_errors_name_the_stage_and_inherit_transience() {
        let fatal = BackendError::Stage {
            stage: 2,
            source: Box::new(BackendError::MalformedProgram {
                reason: "wrong width".into(),
            }),
        };
        assert!(fatal.to_string().contains("pipeline stage 2"), "{fatal}");
        assert!(fatal.to_string().contains("wrong width"), "{fatal}");
        assert!(!fatal.is_transient(), "payload faults stay fatal");
        use std::error::Error as _;
        assert!(fatal.source().unwrap().to_string().contains("wrong width"));
        let transient = BackendError::Stage {
            stage: 0,
            source: Box::new(BackendError::ReplicaPanicked),
        };
        assert!(transient.is_transient(), "a stage panic is retryable");
    }

    #[test]
    fn queue_errors_are_informative() {
        let full = BackendError::QueueFull {
            limit: QueueLimit::Requests { max_depth: 7 },
        };
        assert!(full.to_string().contains('7'), "{full}");
        let tokens = BackendError::QueueFull {
            limit: QueueLimit::Tokens {
                pending_tokens: 9,
                max_pending_tokens: 8,
            },
        };
        assert!(
            tokens.to_string().contains('9') && tokens.to_string().contains('8'),
            "{tokens}"
        );
        assert!(BackendError::QueueClosed.to_string().contains("shut down"));
        let unavailable = BackendError::QueueUnavailable {
            reason: "built from a caller-constructed backend".into(),
        };
        assert!(
            unavailable.to_string().contains("caller-constructed"),
            "{unavailable}"
        );
    }

    #[test]
    fn transient_classification_separates_retryable_from_fatal() {
        // Retryable: faults of the attempt, not of the request.
        assert!(BackendError::Transient {
            reason: "soft error".into()
        }
        .is_transient());
        assert!(BackendError::ReplicaPanicked.is_transient());
        assert!(BackendError::Oscillation(OscillationError {
            events: 1,
            time: SimTime::ZERO,
        })
        .is_transient());
        assert!(BackendError::ShardLost { shard: 0 }.is_transient());
        assert!(BackendError::QueueFull {
            limit: QueueLimit::Requests { max_depth: 1 },
        }
        .is_transient());
        // A shard error inherits the class of its source.
        assert!(BackendError::Shard {
            shard: 2,
            source: Box::new(BackendError::ReplicaPanicked),
        }
        .is_transient());
        assert!(!BackendError::Shard {
            shard: 2,
            source: Box::new(BackendError::EmptyBatch),
        }
        .is_transient());
        // Fatal: properties of the request or configuration.
        assert!(!BackendError::EmptyBatch.is_transient());
        assert!(!BackendError::MissingProgram.is_transient());
        assert!(!BackendError::MalformedProgram {
            reason: "bad tree".into()
        }
        .is_transient());
        assert!(!BackendError::QueueClosed.is_transient());
        let transient = BackendError::Transient {
            reason: "chaos fault".into(),
        };
        assert!(transient.to_string().contains("chaos fault"), "{transient}");
        assert!(
            BackendError::ReplicaPanicked.to_string().contains("panic"),
            "{}",
            BackendError::ReplicaPanicked
        );
    }

    #[test]
    fn token_errors_translate() {
        assert_eq!(
            BackendError::from(TokenError::EmptyStream),
            BackendError::EmptyBatch
        );
        assert_eq!(
            BackendError::from(TokenError::ShapeMismatch {
                token: 1,
                expected: 2,
                got: 3,
            }),
            BackendError::ShapeMismatch {
                token: 1,
                expected: 2,
                got: 3,
            }
        );
    }
}
