//! Sharded multi-macro serving: one wide program, many macro instances.
//!
//! The paper's macro is a fixed-width tile (`ndec` decoder chains); a
//! wide CNN layer maps onto it as `tiles_out` serial passes
//! ([`ConvMapping`](maddpipe_core::mapping::ConvMapping)). The
//! [`ShardedBackend`] turns those serial passes into parallel macros: a
//! [`ShardPlan`] slices the program's decoder chains into contiguous
//! ranges, one long-lived worker thread per shard builds and owns its own
//! inner [`MacroBackend`] (any mix of functional / RTL / analytic), every
//! [`TokenBatch`] fans out to all shards, and per-token outputs are
//! reassembled in plan order — bit-identical to the single wide macro,
//! with latency aggregated as the max over shards and energy as the sum
//! when *every* shard measured (an unmeasured shard in a mixed set makes
//! the aggregate `None` — a partial sum is not a total).
//!
//! Inner backends never cross threads: each is constructed *on* its
//! worker, so backends that are not `Send` (the event-driven netlist)
//! shard exactly like the pure-math ones. A *transient* shard failure
//! (see [`BackendError::is_transient`]) is retried on that shard alone
//! under the backend's [`RecoveryPolicy`] — the other shards' results
//! are kept, not recomputed; only a fatal error, a dead worker, or an
//! exhausted retry budget rejects the whole batch with a typed
//! [`BackendError::Shard`]. No partial output ever escapes.

use crate::backend::{validate_program, BackendFactory, MacroBackend, ShardKind};
use crate::batch::{BatchResult, TokenBatch, TokenObservation};
use crate::error::BackendError;
use crate::plan::ShardPlan;
use crate::pool::RecoveryPolicy;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_tech::units::{Joules, Seconds};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Builds one shard's backend on its worker thread. The closure runs
/// exactly once, off the caller's thread — which is what lets non-`Send`
/// backends (the RTL netlist) participate. (The same shape as every
/// other owned-thread construction site — see [`BackendFactory`].)
pub type ShardFactory = BackendFactory;

/// One batch travelling to a shard worker, with the channel its result
/// comes back on. The batch is shared, not copied: every shard reads
/// the same `Arc`'d tokens.
struct Job {
    batch: Arc<TokenBatch>,
    reply: mpsc::Sender<Result<BatchResult, BackendError>>,
}

/// A shard worker: the sending half of its job queue plus its thread
/// handle. Dropping the sender is the shutdown signal; `Drop` then joins
/// the thread so no worker outlives the backend.
struct Worker {
    jobs: Option<mpsc::Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        drop(self.jobs.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// N macro instances serving one wide program behind the ordinary
/// [`MacroBackend`] interface.
///
/// ```
/// use maddpipe_runtime::prelude::*;
/// use maddpipe_core::prelude::*;
///
/// let cfg = MacroConfig::new(6, 2); // 6 decoder chains, 2 stages
/// let program = MacroProgram::random(cfg.ndec, cfg.ns, 3);
/// let mut wide = FunctionalBackend::new(program.clone());
/// let mut sharded = ShardedBackend::uniform(
///     &cfg,
///     &program,
///     3,
///     ShardKind::Functional { workers: 1 },
/// )
/// .unwrap();
/// let batch = TokenBatch::random(cfg.ns, 4, 8);
/// assert_eq!(
///     sharded.run_batch(&batch).unwrap().outputs(),
///     wide.run_batch(&batch).unwrap().outputs(),
/// );
/// ```
pub struct ShardedBackend {
    plan: ShardPlan,
    ns: usize,
    workers: Vec<Worker>,
    recovery: RecoveryPolicy,
    /// Handles on the per-shard result stores when the shards run
    /// [`ShardKind::Cached`] — kept host-side so [`MacroBackend::cache_stats`]
    /// can aggregate counters without a worker round-trip.
    cache_handles: Vec<crate::cache::SharedCacheStore>,
}

impl ShardedBackend {
    /// Partitions `program` across `plan.shards()` macro instances, shard
    /// `s` executing on a backend of kind `kinds[s]` built from the
    /// sub-program of `plan.range(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the wide program does not
    /// fit `cfg`, [`BackendError::InvalidShardPlan`] when the plan does
    /// not cover the program's decoder chains or `kinds` does not provide
    /// one kind per shard, and [`BackendError::Shard`] when a shard's own
    /// backend fails to construct.
    pub fn new(
        cfg: &MacroConfig,
        program: &MacroProgram,
        plan: ShardPlan,
        kinds: &[ShardKind],
    ) -> Result<ShardedBackend, BackendError> {
        validate_program(cfg, program)?;
        if kinds.len() != plan.shards() {
            return Err(BackendError::InvalidShardPlan {
                reason: format!("{} backend kinds for {} shards", kinds.len(), plan.shards()),
            });
        }
        let subs = plan.split(program)?;
        let ns = program.ns();
        // Per-shard cache stores are created host-side so the sharded
        // backend keeps an aggregation handle; the factory closure moves
        // a clone onto the worker thread.
        let mut cache_handles = Vec::new();
        let factories = subs
            .into_iter()
            .zip(kinds)
            .map(|(sub, &kind)| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.ndec = sub.ndec();
                let store = match kind {
                    ShardKind::Cached { cache, .. } => {
                        let store = std::sync::Arc::new(std::sync::Mutex::new(
                            crate::cache::CacheStore::new(cache),
                        ));
                        cache_handles.push(std::sync::Arc::clone(&store));
                        Some(store)
                    }
                    _ => None,
                };
                let factory: ShardFactory = Box::new(move || {
                    fn leaf(
                        kind: crate::backend::LeafKind,
                        shard_cfg: &MacroConfig,
                        sub: MacroProgram,
                    ) -> Result<Box<dyn MacroBackend>, BackendError> {
                        Ok(match kind {
                            crate::backend::LeafKind::Functional { workers } => Box::new(
                                crate::functional::FunctionalBackend::with_workers(sub, workers),
                            )
                                as Box<dyn MacroBackend>,
                            crate::backend::LeafKind::Rtl { fidelity } => {
                                Box::new(crate::rtl::RtlBackend::new(shard_cfg, &sub, fidelity)?)
                            }
                            crate::backend::LeafKind::Analytic => {
                                Box::new(crate::analytic::AnalyticBackend::new(shard_cfg, sub)?)
                            }
                        })
                    }
                    Ok(match kind {
                        ShardKind::Functional { workers } => Box::new(
                            crate::functional::FunctionalBackend::with_workers(sub, workers),
                        )
                            as Box<dyn MacroBackend>,
                        ShardKind::Rtl { fidelity } => {
                            Box::new(crate::rtl::RtlBackend::new(&shard_cfg, &sub, fidelity)?)
                        }
                        ShardKind::Analytic => {
                            Box::new(crate::analytic::AnalyticBackend::new(&shard_cfg, sub)?)
                        }
                        ShardKind::Cached { inner, .. } => {
                            let fronted = leaf(inner, &shard_cfg, sub.clone())?;
                            Box::new(crate::cache::CachedBackend::with_store(
                                fronted,
                                &sub,
                                store.expect("cached shard kinds carry a host-side store"),
                            ))
                        }
                    })
                });
                factory
            })
            .collect();
        let mut backend = ShardedBackend::from_factories(plan, ns, factories)?;
        backend.cache_handles = cache_handles;
        Ok(backend)
    }

    /// [`ShardedBackend::new`] with an even [`ShardPlan`] over `cfg.ndec`
    /// and the same `kind` on every shard — what
    /// [`BackendKind::Sharded`](crate::backend::BackendKind::Sharded)
    /// builds.
    ///
    /// # Errors
    ///
    /// As [`ShardedBackend::new`], plus
    /// [`BackendError::InvalidShardPlan`] when `shards` is zero or
    /// exceeds `cfg.ndec`.
    pub fn uniform(
        cfg: &MacroConfig,
        program: &MacroProgram,
        shards: usize,
        kind: ShardKind,
    ) -> Result<ShardedBackend, BackendError> {
        let plan = ShardPlan::even(cfg.ndec, shards)?;
        let kinds = vec![kind; shards];
        ShardedBackend::new(cfg, program, plan, &kinds)
    }

    /// Spawns one worker per factory and waits until every shard's
    /// backend is built. The factories run on their worker threads, so
    /// they may build non-`Send` backends; each must produce a backend
    /// whose outputs-per-token width matches its plan range and whose
    /// stage count is `ns`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidShardPlan`] when the factory count
    /// disagrees with the plan, [`BackendError::Shard`] when a factory
    /// fails, and [`BackendError::ShardLost`] when a worker dies while
    /// constructing.
    pub fn from_factories(
        plan: ShardPlan,
        ns: usize,
        factories: Vec<ShardFactory>,
    ) -> Result<ShardedBackend, BackendError> {
        if factories.len() != plan.shards() {
            return Err(BackendError::InvalidShardPlan {
                reason: format!(
                    "{} shard factories for {} shards",
                    factories.len(),
                    plan.shards()
                ),
            });
        }
        let mut workers = Vec::with_capacity(factories.len());
        let mut readiness = Vec::with_capacity(factories.len());
        for (shard, factory) in factories.into_iter().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BackendError>>();
            let handle = std::thread::Builder::new()
                .name(format!("maddpipe-shard-{shard}"))
                .spawn(move || {
                    let mut backend = match factory() {
                        Ok(backend) => {
                            let _ = ready_tx.send(Ok(()));
                            backend
                        }
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    while let Ok(job) = job_rx.recv() {
                        let _ = job.reply.send(backend.run_batch(&job.batch));
                    }
                })
                .expect("the host can spawn a shard worker thread");
            workers.push(Worker {
                jobs: Some(job_tx),
                handle: Some(handle),
            });
            readiness.push(ready_rx);
        }
        for (shard, ready) in readiness.into_iter().enumerate() {
            match ready.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    return Err(BackendError::Shard {
                        shard,
                        source: Box::new(e),
                    })
                }
                Err(_) => return Err(BackendError::ShardLost { shard }),
            }
        }
        Ok(ShardedBackend {
            plan,
            ns,
            workers,
            recovery: RecoveryPolicy::default(),
            cache_handles: Vec::new(),
        })
    }

    /// Sets the per-shard retry policy: a shard whose batch fails with a
    /// transient error is re-asked up to `recovery.max_retries` times
    /// with exponential backoff before the whole batch is rejected. The
    /// `respawn` budget is not used here — shard workers own non-`Send`
    /// backends built from one-shot factories, so a dead worker cannot
    /// be rebuilt; replica-level respawn lives in
    /// [`ReplicaPool`](crate::pool::ReplicaPool).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> ShardedBackend {
        self.recovery = recovery;
        self
    }

    /// The partition this backend serves.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Pipeline stages every shard expects per token.
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// Sends `shared` to shard `shard` and returns the reply channel.
    fn dispatch(
        &self,
        shard: usize,
        shared: &Arc<TokenBatch>,
    ) -> Result<mpsc::Receiver<Result<BatchResult, BackendError>>, BackendError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let jobs = self.workers[shard]
            .jobs
            .as_ref()
            .expect("sender lives as long as self");
        jobs.send(Job {
            batch: Arc::clone(shared),
            reply: reply_tx,
        })
        .map_err(|_| BackendError::ShardLost { shard })?;
        Ok(reply_rx)
    }

    /// Receives shard `shard`'s result and enforces its slice of the
    /// contract: one observation per token, each `plan.widths()[shard]`
    /// wide.
    fn collect(
        &self,
        shard: usize,
        reply: mpsc::Receiver<Result<BatchResult, BackendError>>,
        batch: &TokenBatch,
    ) -> Result<BatchResult, BackendError> {
        let result = reply
            .recv()
            .map_err(|_| BackendError::ShardLost { shard })?
            .map_err(|e| BackendError::Shard {
                shard,
                source: Box::new(e),
            })?;
        if result.tokens.len() != batch.len() {
            return Err(BackendError::Shard {
                shard,
                source: Box::new(BackendError::InvalidShardPlan {
                    reason: format!(
                        "shard returned {} observations for a {}-token batch",
                        result.tokens.len(),
                        batch.len()
                    ),
                }),
            });
        }
        let width = self.plan.widths()[shard];
        if let Some(obs) = result.tokens.iter().find(|o| o.outputs.len() != width) {
            return Err(BackendError::Shard {
                shard,
                source: Box::new(BackendError::InvalidShardPlan {
                    reason: format!(
                        "shard produced {}-wide outputs but its plan range is {} chains",
                        obs.outputs.len(),
                        width
                    ),
                }),
            });
        }
        Ok(result)
    }

    /// Fans `batch` out to every shard and collects the per-shard results
    /// in plan order. A shard that fails *transiently* is re-asked under
    /// the [`RecoveryPolicy`] — on its own, while its siblings' results
    /// are kept — so one flaky shard no longer rejects work the others
    /// finished. Fatal errors and dead workers ([`BackendError::ShardLost`]
    /// — the job channel is gone, a resend cannot land) fail the batch;
    /// first such failure wins (lowest shard index) and the rest are
    /// discarded. The batch is cloned once and shared by `Arc` — the
    /// fan-out itself copies no token data.
    fn scatter_gather(&self, batch: &TokenBatch) -> Result<Vec<BatchResult>, BackendError> {
        let shared = Arc::new(batch.clone());
        let mut replies = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            replies.push(self.dispatch(shard, &shared)?);
        }
        let mut results = Vec::with_capacity(replies.len());
        for (shard, reply) in replies.into_iter().enumerate() {
            let mut attempts = 0u32;
            let mut outcome = self.collect(shard, reply, batch);
            while let Err(error) = &outcome {
                let retryable =
                    error.is_transient() && !matches!(error, BackendError::ShardLost { .. });
                if !retryable || attempts >= self.recovery.max_retries {
                    break;
                }
                std::thread::sleep(self.recovery.backoff_for(attempts));
                attempts += 1;
                outcome = self
                    .dispatch(shard, &shared)
                    .and_then(|retry| self.collect(shard, retry, batch));
            }
            results.push(outcome?);
        }
        Ok(results)
    }
}

impl MacroBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    /// Runs the batch on every shard concurrently. Per token, `outputs`
    /// is the concatenation of the shard slices in plan order, `latency`
    /// the **max** over shards (the token is done when its slowest slice
    /// is) and `energy` the **sum** — but only when *every* shard
    /// measured: with a mixed shard set (say functional next to
    /// analytic) a partial max understates the token and a partial sum
    /// masquerades as the batch total, so an unmeasured shard makes the
    /// aggregate `None`. The batch `makespan` and `energy` follow the
    /// same all-or-none rule.
    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.ns)?;
        let shard_results = self.scatter_gather(batch)?;
        let mut tokens = Vec::with_capacity(batch.len());
        for t in 0..batch.len() {
            let mut outputs = Vec::with_capacity(self.plan.out_channels());
            for result in &shard_results {
                outputs.extend_from_slice(&result.tokens[t].outputs);
            }
            let latency: Option<Seconds> = shard_results
                .iter()
                .map(|r| r.tokens[t].latency)
                .collect::<Option<Vec<_>>>()
                .and_then(|ls| ls.into_iter().reduce(|a, b| if b > a { b } else { a }));
            let energy: Option<Joules> = shard_results
                .iter()
                .map(|r| r.tokens[t].energy)
                .collect::<Option<Vec<_>>>()
                .and_then(|es| es.into_iter().reduce(|a, b| a + b));
            tokens.push(TokenObservation {
                outputs,
                latency,
                energy,
            });
        }
        let makespan = shard_results
            .iter()
            .map(|r| r.makespan)
            .collect::<Option<Vec<_>>>()
            .and_then(|ms| ms.into_iter().reduce(|a, b| if b > a { b } else { a }));
        let energy = shard_results
            .iter()
            .map(|r| r.energy)
            .collect::<Option<Vec<_>>>()
            .and_then(|es| es.into_iter().reduce(|a, b| a + b));
        Ok(BatchResult {
            backend: self.name(),
            tokens,
            makespan,
            energy,
        })
    }

    /// The field-wise sum over the per-shard stores when the shards run
    /// [`ShardKind::Cached`]; `None` for uncached shard sets (including
    /// anything built through [`ShardedBackend::from_factories`], which
    /// cannot see inside custom factories).
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        if self.cache_handles.is_empty() {
            return None;
        }
        Some(
            self.cache_handles
                .iter()
                .map(|store| store.lock().unwrap_or_else(|p| p.into_inner()).stats())
                .fold(crate::cache::CacheStats::default(), |acc, s| acc.merged(s)),
        )
    }
}

impl Drop for ShardedBackend {
    /// Signals *every* worker before any join: each `Worker`'s job
    /// sender drops here first, so all shards see the shutdown at once
    /// and wind down in parallel — a slow shard mid-batch delays the
    /// join by its own remaining work only, never serially behind its
    /// neighbours. (The per-`Worker` `Drop` then joins the thread; a
    /// worker that panicked is absorbed by the ignored join result.)
    fn drop(&mut self) {
        for worker in &mut self.workers {
            drop(worker.jobs.take());
        }
    }
}

impl core::fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("plan", &self.plan)
            .field("ns", &self.ns)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Fidelity;
    use crate::functional::FunctionalBackend;
    use maddpipe_sim::engine::OscillationError;
    use maddpipe_sim::time::SimTime;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::units::Volts;

    fn wide_setup(ndec: usize, ns: usize) -> (MacroConfig, MacroProgram, TokenBatch) {
        let cfg = MacroConfig::new(ndec, ns).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(ndec, ns, 31);
        let batch = TokenBatch::random(ns, 5, 17);
        (cfg, program, batch)
    }

    #[test]
    fn sharded_matches_the_wide_macro_even_when_ragged() {
        // 7 chains over 3 shards: widths [3, 2, 2] — not divisible.
        let (cfg, program, batch) = wide_setup(7, 2);
        let mut wide = FunctionalBackend::new(program.clone());
        let mut sharded =
            ShardedBackend::uniform(&cfg, &program, 3, ShardKind::Functional { workers: 1 })
                .unwrap();
        let expect = wide.run_batch(&batch).unwrap();
        let got = sharded.run_batch(&batch).unwrap();
        assert_eq!(got.outputs(), expect.outputs());
        assert_eq!(sharded.plan().widths(), &[3, 2, 2]);
        assert_eq!(got.backend, "sharded");
        // Functional shards measure nothing, so neither does the whole.
        assert!(got
            .tokens
            .iter()
            .all(|t| t.latency.is_none() && t.energy.is_none()));
        assert!(got.makespan.is_none() && got.energy.is_none());
    }

    #[test]
    fn single_shard_plan_is_the_identity() {
        let (cfg, program, batch) = wide_setup(4, 2);
        let mut wide = FunctionalBackend::new(program.clone());
        let mut one =
            ShardedBackend::uniform(&cfg, &program, 1, ShardKind::Functional { workers: 2 })
                .unwrap();
        assert_eq!(
            one.run_batch(&batch).unwrap().outputs(),
            wide.run_batch(&batch).unwrap().outputs()
        );
        assert_eq!(one.plan().shards(), 1);
        assert_eq!(one.ns(), 2);
    }

    #[test]
    fn mixed_shard_kinds_agree_and_suppress_partial_measurements() {
        let (cfg, program, batch) = wide_setup(3, 2);
        let plan = ShardPlan::even(3, 3).unwrap();
        let kinds = [
            ShardKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
            ShardKind::Analytic,
            ShardKind::Functional { workers: 1 },
        ];
        let mut sharded = ShardedBackend::new(&cfg, &program, plan, &kinds).unwrap();
        let got = sharded.run_batch(&batch).unwrap();
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(got.tokens[t].outputs, program.reference_output(token));
            // The functional shard measures nothing, so a max over the
            // RTL/analytic shards alone would understate the token and a
            // partial energy sum would pose as the batch total:
            // aggregation is all-or-none, one unmeasured shard → None.
            assert_eq!(got.tokens[t].latency, None);
            assert_eq!(got.tokens[t].energy, None);
        }
        assert_eq!(got.makespan, None);
        assert_eq!(got.energy, None);
    }

    #[test]
    fn all_measuring_mixed_shards_aggregate_measurements() {
        let (cfg, program, batch) = wide_setup(2, 2);
        let plan = ShardPlan::even(2, 2).unwrap();
        let kinds = [
            ShardKind::Rtl {
                fidelity: Fidelity::Sequential,
            },
            ShardKind::Analytic,
        ];
        let mut sharded = ShardedBackend::new(&cfg, &program, plan, &kinds).unwrap();
        let got = sharded.run_batch(&batch).unwrap();
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(got.tokens[t].outputs, program.reference_output(token));
            // RTL and analytic shards both measure: max / sum are present.
            assert!(got.tokens[t].latency.is_some());
            assert!(got.tokens[t].energy.is_some());
        }
        assert!(got.makespan.is_some());
        assert!(got.energy.unwrap().value() > 0.0);
    }

    #[test]
    fn latency_is_max_and_energy_is_sum_over_shards() {
        let (cfg, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let kinds = [ShardKind::Analytic, ShardKind::Analytic];
        // The same batch on the two analytic half-macros, run directly.
        let subs = plan.split(&program).unwrap();
        let halves: Vec<BatchResult> = subs
            .into_iter()
            .map(|sub| {
                let mut half_cfg = cfg.clone();
                half_cfg.ndec = sub.ndec();
                crate::analytic::AnalyticBackend::new(&half_cfg, sub)
                    .unwrap()
                    .run_batch(&batch)
                    .unwrap()
            })
            .collect();
        let mut sharded = ShardedBackend::new(&cfg, &program, plan, &kinds).unwrap();
        let got = sharded.run_batch(&batch).unwrap();
        for t in 0..batch.len() {
            let max_latency = halves
                .iter()
                .map(|h| h.tokens[t].latency.unwrap())
                .reduce(|a, b| if a > b { a } else { b })
                .unwrap();
            let sum_energy: f64 = halves
                .iter()
                .map(|h| h.tokens[t].energy.unwrap().value())
                .sum();
            assert_eq!(got.tokens[t].latency.unwrap(), max_latency);
            assert!((got.tokens[t].energy.unwrap().value() - sum_energy).abs() < 1e-24);
        }
    }

    /// An inner backend that serves `ok_batches` batches, then fails with
    /// a typed error — the "one macro went down mid-serving" case.
    struct FlakyBackend {
        inner: FunctionalBackend,
        ok_batches: usize,
        served: usize,
    }

    impl MacroBackend for FlakyBackend {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            if self.served >= self.ok_batches {
                return Err(BackendError::Oscillation(OscillationError {
                    events: 1,
                    time: SimTime::ZERO,
                }));
            }
            self.served += 1;
            self.inner.run_batch(batch)
        }
    }

    /// An inner backend whose next `failures_left` batches fail
    /// transiently, then recovers for good — the flaky-but-alive shard.
    struct RecoveringBackend {
        inner: FunctionalBackend,
        failures_left: usize,
        attempts: usize,
    }

    impl MacroBackend for RecoveringBackend {
        fn name(&self) -> &'static str {
            "recovering"
        }
        fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            self.attempts += 1;
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(BackendError::Transient {
                    reason: format!("flaky shard, failure {}", self.attempts),
                });
            }
            self.inner.run_batch(batch)
        }
    }

    #[test]
    fn a_transiently_failing_shard_is_retried_alone_and_the_batch_succeeds() {
        let (_, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let subs = plan.split(&program).unwrap();
        let wide_expect = FunctionalBackend::new(program.clone())
            .run_batch(&batch)
            .unwrap();
        let mut factories: Vec<ShardFactory> = Vec::new();
        for (s, sub) in subs.into_iter().enumerate() {
            factories.push(Box::new(move || {
                Ok(if s == 1 {
                    Box::new(RecoveringBackend {
                        inner: FunctionalBackend::new(sub),
                        failures_left: 2,
                        attempts: 0,
                    })
                } else {
                    Box::new(FunctionalBackend::new(sub)) as Box<dyn MacroBackend>
                })
            }));
        }
        let mut sharded = ShardedBackend::from_factories(plan, 2, factories)
            .unwrap()
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(2)
                    .with_backoff(std::time::Duration::from_micros(50)),
            );
        // Shard 1 fails twice and succeeds on its third attempt — inside
        // the budget, so the whole batch comes back bit-identical to the
        // wide macro with no caller-visible error.
        let got = sharded.run_batch(&batch).unwrap();
        assert_eq!(got.outputs(), wide_expect.outputs());
        // A second batch serves first-try: the shard has recovered.
        assert_eq!(
            sharded.run_batch(&batch).unwrap().outputs(),
            wide_expect.outputs()
        );
    }

    #[test]
    fn an_exhausted_shard_retry_budget_surfaces_the_typed_error() {
        let (_, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let subs = plan.split(&program).unwrap();
        let mut factories: Vec<ShardFactory> = Vec::new();
        for (s, sub) in subs.into_iter().enumerate() {
            factories.push(Box::new(move || {
                Ok(if s == 0 {
                    Box::new(RecoveringBackend {
                        inner: FunctionalBackend::new(sub),
                        failures_left: 5, // more than 1 + 2 retries
                        attempts: 0,
                    })
                } else {
                    Box::new(FunctionalBackend::new(sub)) as Box<dyn MacroBackend>
                })
            }));
        }
        let mut sharded = ShardedBackend::from_factories(plan, 2, factories)
            .unwrap()
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(2)
                    .with_backoff(std::time::Duration::from_micros(50)),
            );
        match sharded.run_batch(&batch).unwrap_err() {
            BackendError::Shard { shard, source } => {
                assert_eq!(shard, 0);
                // The third and final attempt's error is the one surfaced.
                assert_eq!(
                    *source,
                    BackendError::Transient {
                        reason: "flaky shard, failure 3".into()
                    }
                );
            }
            other => panic!("expected a Shard error, got {other:?}"),
        }
        // Two more failures were budgeted away above; the shard now
        // recovers and the next batch succeeds end to end.
        let wide_expect = FunctionalBackend::new(program).run_batch(&batch).unwrap();
        // 5 failures - 3 attempts = 2 left; one more run burns both
        // (first try + first retry) and lands on attempt 6: success.
        assert_eq!(
            sharded.run_batch(&batch).unwrap().outputs(),
            wide_expect.outputs()
        );
    }

    #[test]
    fn a_failing_shard_rejects_the_batch_without_partial_output() {
        let (_, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let subs = plan.split(&program).unwrap();
        let mut factories: Vec<ShardFactory> = Vec::new();
        for (s, sub) in subs.into_iter().enumerate() {
            factories.push(Box::new(move || {
                Ok(if s == 1 {
                    Box::new(FlakyBackend {
                        inner: FunctionalBackend::new(sub),
                        ok_batches: 1,
                        served: 0,
                    })
                } else {
                    Box::new(FunctionalBackend::new(sub)) as Box<dyn MacroBackend>
                })
            }));
        }
        let mut sharded = ShardedBackend::from_factories(plan, 2, factories).unwrap();
        // First batch: both shards healthy.
        let first = sharded.run_batch(&batch).unwrap();
        assert_eq!(first.tokens.len(), batch.len());
        // Second batch: shard 1 fails mid-serving — the whole batch is
        // rejected as a typed error naming the shard, no partial result.
        let err = sharded.run_batch(&batch).unwrap_err();
        match err {
            BackendError::Shard { shard, source } => {
                assert_eq!(shard, 1);
                assert!(matches!(*source, BackendError::Oscillation(_)));
            }
            other => panic!("expected a Shard error, got {other:?}"),
        }
        // The healthy shard keeps serving; the sharded backend keeps
        // rejecting whole batches while shard 1 stays down.
        assert!(sharded.run_batch(&batch).is_err());
    }

    /// A backend that takes `delay` per batch — long enough for the test
    /// to act while the shard is still mid-flight.
    struct SlowBackend {
        inner: FunctionalBackend,
        delay: std::time::Duration,
    }

    impl MacroBackend for SlowBackend {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
            std::thread::sleep(self.delay);
            self.inner.run_batch(batch)
        }
    }

    #[test]
    fn dropping_with_a_batch_mid_flight_joins_workers_cleanly() {
        // Shard 0 fails instantly, so `run_batch` returns its error while
        // shard 1 is still asleep inside its own copy of the batch — the
        // exact state a serving-queue teardown can leave a fleet in.
        // Dropping the backend then must join both workers: no deadlock,
        // no panic, no leaked thread still owning a netlist.
        let (_, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let subs = plan.split(&program).unwrap();
        let mut factories: Vec<ShardFactory> = Vec::new();
        for (s, sub) in subs.into_iter().enumerate() {
            factories.push(Box::new(move || {
                Ok(if s == 0 {
                    Box::new(FlakyBackend {
                        inner: FunctionalBackend::new(sub),
                        ok_batches: 0,
                        served: 0,
                    })
                } else {
                    Box::new(SlowBackend {
                        inner: FunctionalBackend::new(sub),
                        delay: std::time::Duration::from_millis(150),
                    }) as Box<dyn MacroBackend>
                })
            }));
        }
        let mut sharded = ShardedBackend::from_factories(plan, 2, factories).unwrap();
        let err = sharded.run_batch(&batch).unwrap_err();
        assert!(
            matches!(err, BackendError::Shard { shard: 0, .. }),
            "{err:?}"
        );
        // Drop on a watchdog thread so a deadlocked join fails the test
        // instead of hanging it.
        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            drop(sharded);
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("dropping a mid-flight sharded backend must join, not deadlock");
    }

    #[test]
    fn wrong_width_shards_are_a_typed_error_not_wrong_outputs() {
        let (_, program, batch) = wide_setup(4, 2);
        let plan = ShardPlan::even(4, 2).unwrap();
        let subs = plan.split(&program).unwrap();
        // Shard 1 mistakenly runs the *wide* program: right token count,
        // wrong output width. The contract check must catch it instead of
        // stitching a 6-wide result.
        let wide_program = program.clone();
        let factories: Vec<ShardFactory> = vec![
            Box::new({
                let sub = subs[0].clone();
                move || Ok(Box::new(FunctionalBackend::new(sub)) as Box<dyn MacroBackend>)
            }),
            Box::new(move || {
                Ok(Box::new(FunctionalBackend::new(wide_program)) as Box<dyn MacroBackend>)
            }),
        ];
        let mut sharded = ShardedBackend::from_factories(plan, 2, factories).unwrap();
        match sharded.run_batch(&batch).unwrap_err() {
            BackendError::Shard { shard, source } => {
                assert_eq!(shard, 1);
                assert!(matches!(*source, BackendError::InvalidShardPlan { .. }));
            }
            other => panic!("expected a Shard error, got {other:?}"),
        }
    }

    #[test]
    fn construction_errors_are_typed() {
        let (cfg, program, _) = wide_setup(4, 2);
        // More shards than chains.
        assert!(matches!(
            ShardedBackend::uniform(&cfg, &program, 5, ShardKind::default()),
            Err(BackendError::InvalidShardPlan { .. })
        ));
        // Kind list does not match the plan.
        let plan = ShardPlan::even(4, 2).unwrap();
        assert!(matches!(
            ShardedBackend::new(&cfg, &program, plan.clone(), &[ShardKind::default()]),
            Err(BackendError::InvalidShardPlan { .. })
        ));
        // Program too narrow for the configuration.
        let narrow = MacroProgram::random(3, 2, 1);
        assert!(matches!(
            ShardedBackend::new(&cfg, &narrow, plan.clone(), &[ShardKind::default(); 2]),
            Err(BackendError::ProgramMismatch { .. })
        ));
        // A factory that fails reports which shard could not come up.
        let failing: Vec<ShardFactory> = vec![
            Box::new(|| Err(BackendError::MissingProgram)),
            Box::new(|| Err(BackendError::MissingProgram)),
        ];
        match ShardedBackend::from_factories(plan, 2, failing).unwrap_err() {
            BackendError::Shard { shard, source } => {
                assert_eq!(shard, 0);
                assert_eq!(*source, BackendError::MissingProgram);
            }
            other => panic!("expected a Shard error, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatches_are_rejected_before_fanout() {
        let (cfg, program, _) = wide_setup(4, 2);
        let mut sharded = ShardedBackend::uniform(&cfg, &program, 2, ShardKind::default()).unwrap();
        let wrong = TokenBatch::random(3, 2, 1);
        assert_eq!(
            sharded.run_batch(&wrong).unwrap_err(),
            BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            }
        );
    }
}
