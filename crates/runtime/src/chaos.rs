//! Deterministic fault injection for the serving stack.
//!
//! [`ChaosBackend`] wraps any [`MacroBackend`] and injects seeded,
//! reproducible faults — exactly the failure modes the supervision
//! layer ([`RecoveryPolicy`](crate::pool::RecoveryPolicy)) claims to
//! absorb:
//!
//! * **transient errors** ([`BackendError::Transient`]) that should be
//!   retried away,
//! * **panics** on one chosen call, exercising catch-unwind, respawn
//!   and quarantine,
//! * **latency spikes** that stress deadline-aware batching, and
//! * **wrong-width results** (one observation short of the
//!   one-per-token contract), which must surface as a *fatal*
//!   [`BackendError::MalformedProgram`], never as silently mis-sliced
//!   outputs.
//!
//! All randomness is a pure function of `(seed, call index, fault
//! lane)` via splitmix64, and the call index lives in a shared
//! [`ChaosState`] — so a fleet of chaos replicas draws from *one*
//! global schedule regardless of which replica takes which micro-batch.
//! That is what makes "the 7th backend call panics" a deterministic,
//! replica-scheduling-independent event, and it is why the fault tests
//! can pin exact recovery behaviour across seeds.
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(2, 2, 7);
//! let inner = BackendKind::Functional { workers: 1 }
//!     .build(&cfg, program.clone())
//!     .unwrap();
//! // Fail roughly every fifth call, deterministically for seed 42.
//! let config = ChaosConfig::default().with_seed(42).with_transient_rate(0.2);
//! let mut chaotic = ChaosBackend::new(inner, config);
//! let batch = TokenBatch::random(2, 4, 1);
//! let mut served = 0;
//! for _ in 0..32 {
//!     if let Ok(result) = chaotic.run_batch(&batch) {
//!         // Whenever a call survives, outputs are bit-identical.
//!         assert_eq!(
//!             result.tokens[0].outputs,
//!             program.reference_output(&batch.tokens()[0]),
//!         );
//!         served += 1;
//!     }
//! }
//! assert!(served > 0 && served < 32, "some calls fail, most succeed");
//! ```

use crate::backend::{BackendFactory, MacroBackend};
use crate::batch::{BatchResult, TokenBatch};
use crate::error::BackendError;
use crate::pool::ReplicaFactory;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which faults a [`ChaosBackend`] injects, and how often.
///
/// Rates are per-call probabilities in `[0, 1]`, each drawn from its
/// own independent lane of the seeded stream, so enabling one fault
/// never perturbs the schedule of another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability a call fails with [`BackendError::Transient`].
    pub transient_rate: f64,
    /// Probability a call sleeps for [`ChaosConfig::latency_spike`]
    /// before serving.
    pub latency_spike_rate: f64,
    /// How long a latency-spiked call stalls.
    pub latency_spike: Duration,
    /// Probability a call returns a result one observation short —
    /// breaking the one-observation-per-token contract ("wrong-width"
    /// output), which serving layers must reject as fatal.
    pub wrong_width_rate: f64,
    /// Panic on exactly this (zero-based) global call index, once.
    /// `None` never panics. The index counts calls across *every*
    /// replica sharing the [`ChaosState`], which makes the crash
    /// deterministic under any replica scheduling.
    pub panic_on_call: Option<u64>,
}

impl Default for ChaosConfig {
    /// No faults: seed 0, every rate 0, a 1 ms spike duration (unused
    /// until a rate enables it), no panic.
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            transient_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::from_millis(1),
            wrong_width_rate: 0.0,
            panic_on_call: None,
        }
    }
}

impl ChaosConfig {
    /// Sets the seed of the fault stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ChaosConfig {
        self.seed = seed;
        self
    }

    /// Sets the per-call transient-failure probability (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> ChaosConfig {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-call latency-spike probability and the spike
    /// duration.
    #[must_use]
    pub fn with_latency_spikes(mut self, rate: f64, spike: Duration) -> ChaosConfig {
        self.latency_spike_rate = rate.clamp(0.0, 1.0);
        self.latency_spike = spike;
        self
    }

    /// Sets the per-call wrong-width-output probability (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn with_wrong_width_rate(mut self, rate: f64) -> ChaosConfig {
        self.wrong_width_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Panics on exactly this global call index (see
    /// [`ChaosConfig::panic_on_call`]).
    #[must_use]
    pub fn with_panic_on_call(mut self, call: u64) -> ChaosConfig {
        self.panic_on_call = Some(call);
        self
    }
}

/// The call counter a fleet of [`ChaosBackend`] replicas shares: one
/// global, monotone call index, so the fault schedule is a property of
/// the *workload*, not of which replica happened to serve which call.
#[derive(Debug, Default)]
pub struct ChaosState {
    calls: AtomicU64,
}

impl ChaosState {
    /// A fresh shared counter, ready to hand to
    /// [`ChaosBackend::with_state`] / [`wrap_factory`] /
    /// [`wrap_recipe`].
    pub fn new() -> Arc<ChaosState> {
        Arc::new(ChaosState::default())
    }

    /// Backend calls drawn from the schedule so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

/// A [`MacroBackend`] wrapper injecting the deterministic faults of a
/// [`ChaosConfig`]; see the [module docs](crate::chaos).
pub struct ChaosBackend {
    inner: Box<dyn MacroBackend>,
    config: ChaosConfig,
    state: Arc<ChaosState>,
}

impl ChaosBackend {
    /// Wraps `inner` with its own private call counter — for
    /// single-backend use. Replicated serving should share one counter
    /// via [`ChaosBackend::with_state`] (or the factory wrappers).
    pub fn new(inner: Box<dyn MacroBackend>, config: ChaosConfig) -> ChaosBackend {
        ChaosBackend::with_state(inner, config, ChaosState::new())
    }

    /// Wraps `inner`, drawing call indices from the shared `state`.
    pub fn with_state(
        inner: Box<dyn MacroBackend>,
        config: ChaosConfig,
        state: Arc<ChaosState>,
    ) -> ChaosBackend {
        ChaosBackend {
            inner,
            config,
            state,
        }
    }

    /// `true` when the fault in `lane` fires on `call` — a pure
    /// function of `(seed, call, lane)`.
    fn draw(&self, call: u64, lane: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let bits = splitmix64(
            self.config
                .seed
                .wrapping_add(splitmix64(call.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lane)),
        );
        // 53 mantissa bits -> a uniform draw in [0, 1).
        let uniform = (bits >> 11) as f64 / (1u64 << 53) as f64;
        uniform < rate
    }
}

impl MacroBackend for ChaosBackend {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        let call = self.state.calls.fetch_add(1, Ordering::SeqCst);
        if self.config.panic_on_call == Some(call) {
            panic!("chaos: injected replica crash at call {call}");
        }
        if self.draw(call, 1, self.config.transient_rate) {
            return Err(BackendError::Transient {
                reason: format!("chaos: injected transient fault at call {call}"),
            });
        }
        if self.draw(call, 2, self.config.latency_spike_rate) {
            std::thread::sleep(self.config.latency_spike);
        }
        let mut result = self.inner.run_batch(batch)?;
        if self.draw(call, 3, self.config.wrong_width_rate) {
            // Return one observation short: the wrong width for this
            // micro-batch. Serving layers must catch the broken
            // contract and reject the batch as fatal.
            result.tokens.pop();
        }
        Ok(result)
    }

    /// Chaos is transparent to cache accounting: a wrapped cached tier
    /// keeps reporting its counters through the faults.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.inner.cache_stats()
    }
}

/// Wraps a one-shot [`BackendFactory`] so the backend it builds comes
/// up inside a [`ChaosBackend`] drawing from the shared `state`.
pub fn wrap_factory(
    factory: BackendFactory,
    config: ChaosConfig,
    state: Arc<ChaosState>,
) -> BackendFactory {
    Box::new(move || {
        let inner = factory()?;
        Ok(Box::new(ChaosBackend::with_state(inner, config, state)))
    })
}

/// Wraps a rebuildable [`ReplicaFactory`] likewise — every (re)build,
/// respawns included, keeps drawing from the same shared schedule.
pub fn wrap_recipe(
    recipe: ReplicaFactory,
    config: ChaosConfig,
    state: Arc<ChaosState>,
) -> ReplicaFactory {
    Arc::new(move || {
        let inner = recipe()?;
        Ok(Box::new(ChaosBackend::with_state(
            inner,
            config,
            Arc::clone(&state),
        )))
    })
}

/// SplitMix64 — the same well-mixed hash the stats reservoir uses,
/// duplicated here because the stats copy is private to its module.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use maddpipe_core::config::MacroConfig;
    use maddpipe_core::macro_rtl::MacroProgram;

    fn functional(seed: u64) -> (Box<dyn MacroBackend>, MacroProgram, MacroConfig) {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, seed);
        let backend = BackendKind::Functional { workers: 1 }
            .build(&cfg, program.clone())
            .expect("program fits");
        (backend, program, cfg)
    }

    #[test]
    fn fault_schedules_are_deterministic_per_seed() {
        let batch = TokenBatch::random(2, 2, 1);
        let run = |seed: u64| -> Vec<bool> {
            let (inner, _, _) = functional(3);
            let mut chaos = ChaosBackend::new(
                inner,
                ChaosConfig::default()
                    .with_seed(seed)
                    .with_transient_rate(0.3),
            );
            (0..64).map(|_| chaos.run_batch(&batch).is_ok()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let failures = a.iter().filter(|ok| !**ok).count();
        assert!(
            (8..=32).contains(&failures),
            "a 30% rate lands near 30% over 64 calls, got {failures}"
        );
    }

    #[test]
    fn surviving_calls_stay_bit_identical() {
        let (inner, program, _) = functional(5);
        let mut chaos = ChaosBackend::new(
            inner,
            ChaosConfig::default()
                .with_seed(11)
                .with_transient_rate(0.5),
        );
        let batch = TokenBatch::random(2, 3, 2);
        let mut served = 0;
        for _ in 0..32 {
            if let Ok(result) = chaos.run_batch(&batch) {
                served += 1;
                for (t, token) in batch.tokens().iter().enumerate() {
                    assert_eq!(result.tokens[t].outputs, program.reference_output(token));
                }
            }
        }
        assert!(served > 0, "half the calls survive a 50% rate");
        assert_eq!(chaos.state.calls(), 32);
    }

    #[test]
    fn wrong_width_faults_break_the_observation_contract() {
        let (inner, _, _) = functional(9);
        let mut chaos = ChaosBackend::new(
            inner,
            ChaosConfig::default()
                .with_seed(13)
                .with_wrong_width_rate(1.0),
        );
        let batch = TokenBatch::random(2, 4, 3);
        let result = chaos.run_batch(&batch).expect("fault is in the payload");
        assert_eq!(
            result.tokens.len(),
            batch.len() - 1,
            "one observation short of the contract"
        );
    }

    #[test]
    fn the_panic_call_is_a_global_index_across_wrappers() {
        // Two wrappers over one shared state: whichever takes call 3
        // panics; the other never does.
        let state = ChaosState::new();
        let config = ChaosConfig::default().with_panic_on_call(3);
        let (a, _, _) = functional(1);
        let (b, _, _) = functional(1);
        let mut a = ChaosBackend::with_state(a, config, Arc::clone(&state));
        let mut b = ChaosBackend::with_state(b, config, Arc::clone(&state));
        let batch = TokenBatch::random(2, 2, 1);
        a.run_batch(&batch).unwrap(); // call 0
        b.run_batch(&batch).unwrap(); // call 1
        a.run_batch(&batch).unwrap(); // call 2
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.run_batch(&batch) // call 3
        }));
        assert!(crash.is_err(), "call 3 panics whoever takes it");
        assert!(a.run_batch(&batch).is_ok(), "call 4 serves again");
        assert_eq!(state.calls(), 5);
    }

    #[test]
    fn zero_rate_configs_are_transparent() {
        let (inner, program, _) = functional(2);
        let mut chaos = ChaosBackend::new(inner, ChaosConfig::default());
        let batch = TokenBatch::random(2, 4, 9);
        for _ in 0..16 {
            let result = chaos.run_batch(&batch).expect("no faults configured");
            assert_eq!(result.tokens.len(), batch.len());
            for (t, token) in batch.tokens().iter().enumerate() {
                assert_eq!(result.tokens[t].outputs, program.reference_output(token));
            }
        }
    }
}
