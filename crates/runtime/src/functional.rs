//! The pure-math throughput backend.

use crate::backend::MacroBackend;
use crate::batch::{BatchResult, Token, TokenBatch, TokenObservation};
use crate::error::BackendError;
use maddpipe_core::batched::{default_kernel, BatchedProgram, LaneKernel, LANE};
use maddpipe_core::macro_rtl::MacroProgram;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a [`FunctionalBackend`] evaluates the LUT math of each shard.
///
/// The default is the batched lane kernel selected by the `simd` cargo
/// feature ([`default_kernel`]): bit-sliced with the feature, portable
/// without. All kernels are bit-identical; `Scalar` keeps the original
/// one-token-at-a-time walk ([`MacroProgram::reference_output`])
/// selectable as the executable spec and as a benchmarking baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionalKernel {
    /// One token at a time through the scalar reference — the executable
    /// spec the batched kernels are pinned against.
    Scalar,
    /// Batched portable kernel ([`LaneKernel::Portable`]).
    Portable,
    /// Batched bit-sliced kernel ([`LaneKernel::BitSliced`]).
    BitSliced,
}

impl Default for FunctionalKernel {
    fn default() -> FunctionalKernel {
        match default_kernel() {
            LaneKernel::Portable => FunctionalKernel::Portable,
            LaneKernel::BitSliced => FunctionalKernel::BitSliced,
        }
    }
}

/// Executes batches with the exact wrapping-i16 LUT semantics of the
/// silicon — no timing model — a [`LANE`] of tokens at a time through the
/// struct-of-arrays [`BatchedProgram`] view, sharding lane blocks across
/// OS threads for throughput.
///
/// [`MacroProgram::reference_output`] remains the executable spec; the
/// batched kernels are pinned bit-identical to it by proptest, and
/// [`FunctionalKernel::Scalar`] keeps the spec selectable at runtime.
///
/// A panic on a worker thread (e.g. a malformed hand-built program whose
/// tree walk escapes the 16-entry LUT) is caught and surfaced as a typed
/// transient [`BackendError`] instead of aborting the process, matching
/// the replica-pool discipline.
///
/// Observations carry outputs only: a functional evaluation measures
/// neither latency nor energy.
#[derive(Debug, Clone)]
pub struct FunctionalBackend {
    program: MacroProgram,
    batched: BatchedProgram,
    workers: usize,
    kernel: FunctionalKernel,
}

impl FunctionalBackend {
    /// Single-threaded backend for `program` with the default kernel.
    pub fn new(program: MacroProgram) -> FunctionalBackend {
        FunctionalBackend::with_workers(program, 1)
    }

    /// Backend sharding each batch across `workers` threads (clamped to at
    /// least 1), with the default kernel.
    pub fn with_workers(program: MacroProgram, workers: usize) -> FunctionalBackend {
        FunctionalBackend::with_kernel(program, workers, FunctionalKernel::default())
    }

    /// Backend with an explicit kernel choice.
    pub fn with_kernel(
        program: MacroProgram,
        workers: usize,
        kernel: FunctionalKernel,
    ) -> FunctionalBackend {
        let batched = program.batched();
        FunctionalBackend {
            program,
            batched,
            workers: workers.max(1),
            kernel,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &MacroProgram {
        &self.program
    }

    /// Worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The kernel this backend evaluates shards with.
    pub fn kernel(&self) -> FunctionalKernel {
        self.kernel
    }

    /// Evaluates one contiguous shard of tokens, converting any panic in
    /// the LUT math into a typed transient error.
    fn eval_shard(&self, shard: &[Token]) -> Result<Vec<Vec<i16>>, BackendError> {
        let run = || match self.kernel {
            FunctionalKernel::Scalar => shard
                .iter()
                .map(|t| self.program.reference_output(t))
                .collect(),
            FunctionalKernel::Portable => self.batched.evaluate_with(shard, LaneKernel::Portable),
            FunctionalKernel::BitSliced => self.batched.evaluate_with(shard, LaneKernel::BitSliced),
        };
        catch_unwind(AssertUnwindSafe(run)).map_err(|payload| BackendError::Transient {
            reason: format!("functional worker panicked: {}", panic_reason(&payload)),
        })
    }
}

/// Best-effort text of a panic payload (the common `&str` / `String`
/// forms; anything else is reported as opaque).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Balanced contiguous partition of `n` tokens across up to `workers`
/// shards (empty for `n == 0`; never more than `n` shards).
///
/// When the batch is large enough, whole [`LANE`] blocks are distributed
/// so every worker runs full 64-token lanes (sizes differ by at most one
/// block, largest first; only the final shard carries the ragged tail).
/// Smaller batches fall back to balancing token counts so no requested
/// worker idles — the old `div_ceil` chunking could leave trailing
/// workers without a shard (5 tokens / 4 workers → 2/2/1 and one worker
/// unused).
fn shard_sizes(n: usize, workers: usize) -> Vec<usize> {
    let w = workers.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if w == 1 {
        return vec![n];
    }
    let blocks = n.div_ceil(LANE);
    if blocks >= w {
        // Lane-aligned regime: hand out whole blocks, remainder first.
        let base = blocks / w;
        let rem = blocks % w;
        let mut sizes = Vec::with_capacity(w);
        let mut start = 0usize;
        for i in 0..w {
            let end = (start + (base + usize::from(i < rem)) * LANE).min(n);
            sizes.push(end - start);
            start = end;
        }
        sizes
    } else {
        // Fewer blocks than workers: balance raw token counts instead so
        // every worker still gets a shard.
        let base = n / w;
        let rem = n % w;
        (0..w).map(|i| base + usize::from(i < rem)).collect()
    }
}

impl MacroBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.program.ns())?;
        let tokens = batch.tokens();
        let sizes = shard_sizes(tokens.len(), self.workers);
        let outputs: Vec<Vec<i16>> = if sizes.len() <= 1 {
            self.eval_shard(tokens)?
        } else {
            // Contiguous shards, one per worker; joining in spawn order
            // restores submission order. Every handle is joined before
            // any error is surfaced, so no worker outlives the batch.
            let this = &*self;
            std::thread::scope(|scope| {
                let mut start = 0usize;
                let handles: Vec<_> = sizes
                    .iter()
                    .map(|&len| {
                        let shard = &tokens[start..start + len];
                        start += len;
                        scope.spawn(move || this.eval_shard(shard))
                    })
                    .collect();
                let mut all = Vec::with_capacity(tokens.len());
                let mut failure: Option<BackendError> = None;
                for handle in handles {
                    match handle.join() {
                        Ok(Ok(mut outs)) => all.append(&mut outs),
                        Ok(Err(e)) => failure = failure.or(Some(e)),
                        // eval_shard already catches panics in the LUT
                        // math, so a join error means the thread died
                        // some other way — still a typed error, never an
                        // abort of the whole process.
                        Err(_) => {
                            failure = failure.or(Some(BackendError::Transient {
                                reason: "functional worker thread terminated abnormally".into(),
                            }));
                        }
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => Ok(all),
                }
            })?
        };
        Ok(BatchResult {
            backend: self.name(),
            tokens: outputs
                .into_iter()
                .map(|outputs| TokenObservation {
                    outputs,
                    latency: None,
                    energy: None,
                })
                .collect(),
            makespan: None,
            energy: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_core::config::K;

    #[test]
    fn sharded_and_serial_agree() {
        let program = MacroProgram::random(3, 4, 77);
        let batch = TokenBatch::random(4, 23, 5);
        let mut serial = FunctionalBackend::new(program.clone());
        let mut sharded = FunctionalBackend::with_workers(program, 4);
        let a = serial.run_batch(&batch).unwrap();
        let b = sharded.run_batch(&batch).unwrap();
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.tokens.len(), 23);
        assert!(a.tokens[0].latency.is_none() && a.tokens[0].energy.is_none());
    }

    #[test]
    fn every_kernel_matches_the_scalar_spec_through_the_backend() {
        let program = MacroProgram::random(4, 3, 31);
        let batch = TokenBatch::random(3, 130, 12);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| program.reference_output(t))
            .collect();
        for kernel in [
            FunctionalKernel::Scalar,
            FunctionalKernel::Portable,
            FunctionalKernel::BitSliced,
        ] {
            for workers in [1usize, 3] {
                let mut backend = FunctionalBackend::with_kernel(program.clone(), workers, kernel);
                let got = backend.run_batch(&batch).unwrap();
                assert_eq!(got.outputs(), golden, "{kernel:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        let program = MacroProgram::random(1, 1, 0);
        assert_eq!(FunctionalBackend::with_workers(program, 0).workers(), 1);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let program = MacroProgram::random(2, 2, 1);
        let mut backend = FunctionalBackend::new(program);
        let batch = TokenBatch::random(3, 2, 9);
        assert_eq!(
            backend.run_batch(&batch),
            Err(BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            })
        );
    }

    /// A well-formed-looking program whose 5-level tree walks every token
    /// to leaf 31 — off the end of the 16-entry LUT — so any kernel
    /// panics mid-evaluation, like a corrupted hand-built program would.
    fn panicking_program() -> MacroProgram {
        let tree = maddpipe_amm::bdt::BdtEncoder::from_parts(vec![0; 5], vec![-128.0; 31])
            .unwrap()
            .quantize(maddpipe_amm::quant::QuantScale::UNIT);
        MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[0i8; K]; 2]],
        }
    }

    #[test]
    fn worker_panic_resolves_as_typed_transient_error() {
        // Regression: this used to `.expect` on the join handle, turning
        // any worker panic into a process abort.
        for kernel in [
            FunctionalKernel::Scalar,
            FunctionalKernel::Portable,
            FunctionalKernel::BitSliced,
        ] {
            for workers in [1usize, 4] {
                let mut backend =
                    FunctionalBackend::with_kernel(panicking_program(), workers, kernel);
                let batch = TokenBatch::random(1, 8, 3);
                let err = backend.run_batch(&batch).unwrap_err();
                match &err {
                    BackendError::Transient { reason } => {
                        assert!(
                            reason.contains("functional worker panicked"),
                            "{kernel:?}/{workers}: {reason}"
                        );
                    }
                    other => panic!("{kernel:?}/{workers}: expected Transient, got {other:?}"),
                }
                assert!(err.is_transient());
            }
        }
    }

    #[test]
    fn backend_survives_a_panicking_batch() {
        // The same instance must keep serving well-formed programs after
        // a panic was caught (no poisoned state).
        let good = MacroProgram::random(2, 1, 6);
        let batch = TokenBatch::random(1, 10, 4);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| good.reference_output(t))
            .collect();
        let mut backend = FunctionalBackend::with_workers(good, 2);
        assert_eq!(backend.run_batch(&batch).unwrap().outputs(), golden);
        let mut bad = FunctionalBackend::with_workers(panicking_program(), 2);
        assert!(bad.run_batch(&batch).is_err());
        assert_eq!(backend.run_batch(&batch).unwrap().outputs(), golden);
    }

    #[test]
    fn shard_partition_is_balanced() {
        // The old `div_ceil` chunking gave 5/4 → [2, 2, 1] with a fourth
        // worker idle; the balanced partition uses all requested workers.
        assert_eq!(shard_sizes(5, 4), vec![2, 1, 1, 1]);
        assert_eq!(shard_sizes(7, 3), vec![3, 2, 2]);
        // Large batches shard whole 64-token lane blocks (5 blocks over 4
        // workers → 2/1/1/1 blocks), the final shard taking the ragged
        // tail.
        assert_eq!(shard_sizes(320, 4), vec![128, 64, 64, 64]);
        assert_eq!(shard_sizes(259, 4), vec![128, 64, 64, 3]);
        // Fewer blocks than workers falls back to token balancing.
        assert_eq!(shard_sizes(64, 4), vec![16, 16, 16, 16]);
        // Never more shards than tokens; zero tokens means zero shards.
        assert_eq!(shard_sizes(1, 4), vec![1]);
        assert_eq!(shard_sizes(0, 4), Vec::<usize>::new());
        for n in 0..200usize {
            for w in 1..6usize {
                let sizes = shard_sizes(n, w);
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} w={w}");
                assert!(sizes.iter().all(|&s| s > 0), "n={n} w={w}: {sizes:?}");
                assert_eq!(sizes.len(), w.min(n), "n={n} w={w}");
            }
        }
    }
}
