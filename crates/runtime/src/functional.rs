//! The pure-math throughput backend.

use crate::backend::MacroBackend;
use crate::batch::{BatchResult, TokenBatch, TokenObservation};
use crate::error::BackendError;
use maddpipe_core::macro_rtl::MacroProgram;

/// Executes batches with [`MacroProgram::reference_output`] — the exact
/// wrapping-i16 LUT semantics of the silicon, with no timing model —
/// sharding tokens across OS threads for throughput.
///
/// Observations carry outputs only: a functional evaluation measures
/// neither latency nor energy.
#[derive(Debug, Clone)]
pub struct FunctionalBackend {
    program: MacroProgram,
    workers: usize,
}

impl FunctionalBackend {
    /// Single-threaded backend for `program`.
    pub fn new(program: MacroProgram) -> FunctionalBackend {
        FunctionalBackend::with_workers(program, 1)
    }

    /// Backend sharding each batch across `workers` threads (clamped to at
    /// least 1).
    pub fn with_workers(program: MacroProgram, workers: usize) -> FunctionalBackend {
        FunctionalBackend {
            program,
            workers: workers.max(1),
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &MacroProgram {
        &self.program
    }

    /// Worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl MacroBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.program.ns())?;
        let tokens = batch.tokens();
        let outputs: Vec<Vec<i16>> = if self.workers == 1 || tokens.len() == 1 {
            tokens
                .iter()
                .map(|t| self.program.reference_output(t))
                .collect()
        } else {
            // Contiguous shards, one per worker; joining in spawn order
            // restores submission order.
            let chunk = tokens.len().div_ceil(self.workers);
            let program = &self.program;
            std::thread::scope(|scope| {
                let handles: Vec<_> = tokens
                    .chunks(chunk)
                    .map(|shard| {
                        scope.spawn(move || {
                            shard
                                .iter()
                                .map(|t| program.reference_output(t))
                                .collect::<Vec<Vec<i16>>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker thread must not panic"))
                    .collect()
            })
        };
        Ok(BatchResult {
            backend: self.name(),
            tokens: outputs
                .into_iter()
                .map(|outputs| TokenObservation {
                    outputs,
                    latency: None,
                    energy: None,
                })
                .collect(),
            makespan: None,
            energy: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_and_serial_agree() {
        let program = MacroProgram::random(3, 4, 77);
        let batch = TokenBatch::random(4, 23, 5);
        let mut serial = FunctionalBackend::new(program.clone());
        let mut sharded = FunctionalBackend::with_workers(program, 4);
        let a = serial.run_batch(&batch).unwrap();
        let b = sharded.run_batch(&batch).unwrap();
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.tokens.len(), 23);
        assert!(a.tokens[0].latency.is_none() && a.tokens[0].energy.is_none());
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        let program = MacroProgram::random(1, 1, 0);
        assert_eq!(FunctionalBackend::with_workers(program, 0).workers(), 1);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let program = MacroProgram::random(2, 2, 1);
        let mut backend = FunctionalBackend::new(program);
        let batch = TokenBatch::random(3, 2, 9);
        assert_eq!(
            backend.run_batch(&batch),
            Err(BackendError::ShapeMismatch {
                token: 0,
                expected: 2,
                got: 3,
            })
        );
    }
}
