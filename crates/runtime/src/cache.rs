//! Content-addressed result caching for any [`MacroBackend`].
//!
//! LUT inference is a *pure* function of `(program, token)`: the macro
//! holds no state between tokens, so two identical tokens against the
//! same program produce bit-identical outputs on every backend (the
//! contract pinned by `tests/backend_equivalence.rs`). Real im2col
//! streams exploit nothing of this — flat image regions emit the same
//! 3×3 patch over and over and every backend recomputes it. The
//! [`CachedBackend`] wrapper closes that gap:
//!
//! * results are keyed on a [`CacheKey`] — a content
//!   [`ProgramFingerprint`] plus the token's exact quantised bytes — so
//!   a hit can only ever return the output the very same program
//!   produced for the very same token;
//! * the store is a bounded CLOCK (second-chance) cache with *two*
//!   capacity dimensions, entries **and** bytes ([`CacheConfig`]), and
//!   eviction keeps both bounds at every observable point;
//! * identical tokens inside one batch are **deduplicated** before
//!   dispatch: the inner backend sees each unique uncached token once,
//!   and the result is fanned back out to every duplicate position.
//!
//! The purity contract this module depends on also dictates what a hit
//! may report: `outputs` are the cached bytes (bit-identical by
//! construction), but `latency`/`energy` are `None` — a cache hit did
//! not *measure* anything, and replaying a stale observation would
//! corrupt session percentiles. Similarly, failures are never cached:
//! a transient inner error propagates with **no** store mutation, so a
//! retry re-executes from scratch and cannot resurrect a poisoned
//! entry.
//!
//! Deploy a cached tier declaratively via
//! [`BackendKind::Cached`](crate::backend::BackendKind::Cached) (or
//! per-shard via [`ShardKind::Cached`](crate::backend::ShardKind::Cached))
//! — sessions, serve queues, replica pools and pipeline stages all
//! build from the same `(program, kind)` recipe, and
//! [`SessionStats`](crate::session::SessionStats) aggregates the
//! [`CacheStats`] counters wherever the tier is deployed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use maddpipe_core::config::SUBVECTOR_LEN;
use maddpipe_core::macro_rtl::MacroProgram;

use crate::backend::MacroBackend;
use crate::batch::{BatchResult, Token, TokenBatch, TokenObservation};
use crate::error::BackendError;

/// Approximate fixed bookkeeping cost charged per resident entry on top
/// of the key and output payloads (map entry, slot, allocation headers).
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// A content fingerprint of a [`MacroProgram`]: every byte that can
/// influence an output — tree shapes, split dimensions, thresholds and
/// all LUT words — serialised into one blob, with a 64-bit digest for
/// cheap hashing.
///
/// Equality compares the *content blob*, not the digest, so two
/// different programs can never be confused by a hash collision:
/// programs differing in a single LUT word are unequal by construction
/// and therefore occupy disjoint key spaces in the cache.
#[derive(Debug, Clone)]
pub struct ProgramFingerprint {
    blob: Arc<[u8]>,
    hash: u64,
}

fn push_usize(blob: &mut Vec<u8>, v: usize) {
    blob.extend_from_slice(&(v as u64).to_le_bytes());
}

/// FNV-1a over the blob — stable, dependency-free, and only a fast
/// path: correctness never rests on this digest (see
/// [`ProgramFingerprint`] equality).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ProgramFingerprint {
    /// Fingerprints a program by serialising its full content.
    pub fn of(program: &MacroProgram) -> ProgramFingerprint {
        let mut blob = Vec::new();
        push_usize(&mut blob, program.ns());
        push_usize(&mut blob, program.ndec());
        push_usize(&mut blob, program.trees.len());
        for tree in &program.trees {
            push_usize(&mut blob, tree.levels());
            push_usize(&mut blob, tree.split_dims().len());
            for &dim in tree.split_dims() {
                push_usize(&mut blob, dim);
            }
            push_usize(&mut blob, tree.thresholds().len());
            blob.extend(tree.thresholds().iter().map(|&t| t as u8));
        }
        push_usize(&mut blob, program.luts.len());
        for stage in &program.luts {
            push_usize(&mut blob, stage.len());
            for lut in stage {
                blob.extend(lut.iter().map(|&w| w as u8));
            }
        }
        let hash = fnv1a(&blob);
        ProgramFingerprint {
            blob: blob.into(),
            hash,
        }
    }

    /// The 64-bit content digest (diagnostic; equality uses the blob).
    pub fn digest(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for ProgramFingerprint {
    fn eq(&self, other: &ProgramFingerprint) -> bool {
        self.hash == other.hash && (Arc::ptr_eq(&self.blob, &other.blob) || self.blob == other.blob)
    }
}

impl Eq for ProgramFingerprint {}

impl Hash for ProgramFingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A cache key: the program's content fingerprint plus the token's
/// exact quantised bytes. Two keys are equal iff the program contents
/// *and* every token byte agree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    fingerprint: ProgramFingerprint,
    token: Box<[u8]>,
}

impl CacheKey {
    /// Builds the key for one token under one program fingerprint.
    pub fn new(fingerprint: ProgramFingerprint, token: &Token) -> CacheKey {
        let mut bytes = Vec::with_capacity(token.len() * SUBVECTOR_LEN);
        for sub in token {
            bytes.extend(sub.iter().map(|&b| b as u8));
        }
        CacheKey {
            fingerprint,
            token: bytes.into_boxed_slice(),
        }
    }

    /// Bytes of token payload carried by this key.
    pub fn token_bytes(&self) -> usize {
        self.token.len()
    }
}

/// Capacity bounds for a [`CacheStore`] — both dimensions are enforced
/// simultaneously; eviction runs until *neither* is exceeded.
///
/// `Copy`, so a cached tier stays expressible in the `Copy` recipe
/// enums ([`BackendKind`](crate::backend::BackendKind) /
/// [`ShardKind`](crate::backend::ShardKind)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident entries. `0` disables caching entirely (every
    /// lookup misses, nothing is ever inserted).
    pub max_entries: usize,
    /// Maximum resident bytes (key token bytes + output bytes + a
    /// fixed per-entry overhead). An entry that alone exceeds this
    /// bound is computed but never inserted.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    /// 64Ki entries / 8 MiB — generous for serving, small next to a
    /// host.
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: 64 * 1024,
            max_bytes: 8 * 1024 * 1024,
        }
    }
}

impl CacheConfig {
    /// Replaces the entry bound.
    pub fn with_max_entries(mut self, max_entries: usize) -> CacheConfig {
        self.max_entries = max_entries;
        self
    }

    /// Replaces the byte bound.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> CacheConfig {
        self.max_bytes = max_bytes;
        self
    }
}

/// A cumulative snapshot of one cache store (or a sum over several):
/// monotone event counters plus the current residency gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store (including duplicates of a
    /// token whose first occurrence hit).
    pub hits: u64,
    /// Lookups that fell through to the inner backend — one per
    /// *unique* uncached token.
    pub misses: u64,
    /// Tokens elided by intra-batch deduplication: duplicates of a
    /// missed token that were computed once and fanned back out.
    pub dedup: u64,
    /// Entries ever inserted.
    pub insertions: u64,
    /// Entries evicted to keep the [`CacheConfig`] bounds.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident_entries: usize,
    /// Bytes currently resident (as accounted by the store).
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Field-wise sum — combines snapshots of *distinct* stores (e.g.
    /// per-shard or per-replica caches).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            dedup: self.dedup + other.dedup,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            resident_entries: self.resident_entries + other.resident_entries,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }

    /// Field-wise max on the monotone counters, newest value on the
    /// residency gauges — folds *successive snapshots of the same
    /// store* without double-counting.
    pub(crate) fn absorb_snapshot(&mut self, snapshot: CacheStats) {
        self.hits = self.hits.max(snapshot.hits);
        self.misses = self.misses.max(snapshot.misses);
        self.dedup = self.dedup.max(snapshot.dedup);
        self.insertions = self.insertions.max(snapshot.insertions);
        self.evictions = self.evictions.max(snapshot.evictions);
        self.resident_entries = snapshot.resident_entries;
        self.resident_bytes = snapshot.resident_bytes;
    }
}

#[derive(Debug)]
struct Slot {
    key: CacheKey,
    outputs: Vec<i16>,
    referenced: bool,
    bytes: usize,
}

/// The bounded CLOCK (second-chance) store behind a [`CachedBackend`].
///
/// Invariants, held after **every** public operation (property-tested
/// below):
///
/// * `resident_entries() <= config.max_entries`;
/// * `resident_bytes() <= config.max_bytes`;
/// * a [`lookup`](CacheStore::lookup) hit returns exactly the bytes the
///   corresponding [`insert`](CacheStore::insert) stored.
///
/// Eviction runs *before* insertion (never exceed-then-trim), so the
/// bounds are respected at every observable point, not just between
/// batches. An entry that alone exceeds `max_bytes` is skipped rather
/// than evicting the whole store for nothing.
#[derive(Debug)]
pub struct CacheStore {
    config: CacheConfig,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    hand: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    dedup: u64,
    insertions: u64,
    evictions: u64,
}

impl CacheStore {
    /// An empty store with the given bounds.
    pub fn new(config: CacheConfig) -> CacheStore {
        CacheStore {
            config,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            dedup: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// The bounds this store enforces.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Entries currently resident.
    pub fn resident_entries(&self) -> usize {
        self.slots.len()
    }

    /// Bytes currently resident, as accounted for the byte bound.
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    fn entry_bytes(key: &CacheKey, outputs: &[i16]) -> usize {
        key.token_bytes() + outputs.len() * 2 + ENTRY_OVERHEAD_BYTES
    }

    /// Looks a key up, counting a hit (and marking the CLOCK reference
    /// bit) or a miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Vec<i16>> {
        match self.map.get(key) {
            Some(&idx) => {
                self.hits += 1;
                self.slots[idx].referenced = true;
                Some(self.slots[idx].outputs.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Counts one token elided by intra-batch deduplication.
    pub fn note_dedup(&mut self) {
        self.dedup += 1;
    }

    /// Evicts exactly one entry by the CLOCK sweep: referenced slots
    /// get a second chance, the first unreferenced slot goes.
    fn evict_one(&mut self) {
        loop {
            let len = self.slots.len();
            if len == 0 {
                return;
            }
            if self.hand >= len {
                self.hand = 0;
            }
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand += 1;
            } else {
                let victim = self.slots.swap_remove(self.hand);
                self.map.remove(&victim.key);
                self.bytes -= victim.bytes;
                if self.hand < self.slots.len() {
                    let moved = self.slots[self.hand].key.clone();
                    self.map.insert(moved, self.hand);
                }
                self.evictions += 1;
                return;
            }
        }
    }

    /// Inserts a computed result, evicting first until both bounds
    /// admit it. Re-inserting a resident key is a no-op; an entry that
    /// can never fit (zero entry bound, or alone larger than the byte
    /// bound) is skipped.
    pub fn insert(&mut self, key: CacheKey, outputs: Vec<i16>) {
        if self.map.contains_key(&key) {
            return;
        }
        let entry_bytes = Self::entry_bytes(&key, &outputs);
        if self.config.max_entries == 0 || entry_bytes > self.config.max_bytes {
            return;
        }
        while self.slots.len() + 1 > self.config.max_entries
            || self.bytes + entry_bytes > self.config.max_bytes
        {
            self.evict_one();
        }
        let idx = self.slots.len();
        self.map.insert(key.clone(), idx);
        self.bytes += entry_bytes;
        self.slots.push(Slot {
            key,
            outputs,
            referenced: false,
            bytes: entry_bytes,
        });
        self.insertions += 1;
    }

    /// A cumulative snapshot of the store's counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            dedup: self.dedup,
            insertions: self.insertions,
            evictions: self.evictions,
            resident_entries: self.slots.len(),
            resident_bytes: self.bytes,
        }
    }
}

/// A shared handle on a [`CacheStore`] — what a [`CachedBackend`] holds,
/// and what composes per-shard stores into one aggregate view.
pub type SharedCacheStore = Arc<Mutex<CacheStore>>;

/// Locks a store, tolerating poison: the store's own operations cannot
/// leave it inconsistent mid-panic (the mutex is never held across an
/// inner-backend call), so the data behind a poisoned lock is sound.
pub(crate) fn lock_store(store: &SharedCacheStore) -> std::sync::MutexGuard<'_, CacheStore> {
    store
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A [`MacroBackend`] wrapper serving repeated tokens from a bounded
/// content-addressed store, with intra-batch deduplication (see the
/// [module docs](self) for the full contract).
pub struct CachedBackend {
    inner: Box<dyn MacroBackend>,
    fingerprint: ProgramFingerprint,
    ns: usize,
    store: SharedCacheStore,
}

impl CachedBackend {
    /// Wraps `inner` with a fresh store bounded by `config`. The
    /// `program` must be the one `inner` executes — the fingerprint
    /// taken here is what keys every result.
    pub fn new(
        inner: Box<dyn MacroBackend>,
        program: &MacroProgram,
        config: CacheConfig,
    ) -> CachedBackend {
        CachedBackend::with_store(
            inner,
            program,
            Arc::new(Mutex::new(CacheStore::new(config))),
        )
    }

    /// Wraps `inner` over an *existing* store handle — lets several
    /// tiers share one store, and lets owners (the sharded backend,
    /// tests) keep a handle for aggregate inspection.
    pub fn with_store(
        inner: Box<dyn MacroBackend>,
        program: &MacroProgram,
        store: SharedCacheStore,
    ) -> CachedBackend {
        CachedBackend {
            inner,
            fingerprint: ProgramFingerprint::of(program),
            ns: program.ns(),
            store,
        }
    }

    /// A handle on the underlying store.
    pub fn store(&self) -> SharedCacheStore {
        Arc::clone(&self.store)
    }

    /// The program fingerprint keying this tier.
    pub fn fingerprint(&self) -> ProgramFingerprint {
        self.fingerprint.clone()
    }
}

impl MacroBackend for CachedBackend {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.ns)?;
        let tokens = batch.tokens();
        let keys: Vec<CacheKey> = tokens
            .iter()
            .map(|t| CacheKey::new(self.fingerprint.clone(), t))
            .collect();

        let mut resolved: Vec<Option<TokenObservation>> = vec![None; tokens.len()];
        // First occurrences that missed, in batch order, and duplicate
        // positions pointing at their first occurrence.
        let mut misses: Vec<usize> = Vec::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        {
            // One lock for the whole probe: the dedup map must see a
            // consistent store, and the store is never locked across
            // the inner dispatch below.
            let mut store = lock_store(&self.store);
            let mut seen: HashMap<&CacheKey, usize> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                if let Some(&first) = seen.get(key) {
                    if resolved[first].is_some() {
                        // Duplicate of a token that hit — it hits too.
                        let outputs = store.lookup(key).expect("first occurrence was resident");
                        resolved[i] = Some(TokenObservation {
                            outputs,
                            latency: None,
                            energy: None,
                        });
                    } else {
                        store.note_dedup();
                        dups.push((i, first));
                    }
                } else {
                    seen.insert(key, i);
                    match store.lookup(key) {
                        Some(outputs) => {
                            resolved[i] = Some(TokenObservation {
                                outputs,
                                latency: None,
                                energy: None,
                            });
                        }
                        None => misses.push(i),
                    }
                }
            }
        }

        let mut makespan = None;
        let mut energy = None;
        if !misses.is_empty() {
            let unique: Vec<Token> = misses.iter().map(|&i| tokens[i].clone()).collect();
            let sub = TokenBatch::new(unique)?;
            // A failure here propagates with no store mutation: nothing
            // was inserted, so a retry re-executes from scratch and the
            // cache cannot serve (or remember) a failed attempt.
            let inner_result = self.inner.run_batch(&sub)?;
            if inner_result.tokens.len() != misses.len() {
                return Err(BackendError::MalformedProgram {
                    reason: format!(
                        "cached tier: inner backend '{}' returned {} observations \
                         for {} unique tokens — refusing to cache misaligned outputs",
                        inner_result.backend,
                        inner_result.tokens.len(),
                        misses.len()
                    ),
                });
            }
            makespan = inner_result.makespan;
            energy = inner_result.energy;
            {
                let mut store = lock_store(&self.store);
                for (&i, obs) in misses.iter().zip(inner_result.tokens.iter()) {
                    store.insert(keys[i].clone(), obs.outputs.clone());
                }
            }
            // Freshly computed tokens keep the inner backend's measured
            // observation; only replayed results are unmeasured.
            for (&i, obs) in misses.iter().zip(inner_result.tokens) {
                resolved[i] = Some(obs);
            }
        }
        for (i, first) in dups {
            let outputs = resolved[first]
                .as_ref()
                .expect("first occurrence resolved by dispatch")
                .outputs
                .clone();
            resolved[i] = Some(TokenObservation {
                outputs,
                latency: None,
                energy: None,
            });
        }

        Ok(BatchResult {
            backend: self.name(),
            tokens: resolved
                .into_iter()
                .map(|obs| obs.expect("every token resolved"))
                .collect(),
            makespan,
            energy,
        })
    }

    fn rtl(&self) -> Option<&maddpipe_core::macro_rtl::AcceleratorRtl> {
        self.inner.rtl()
    }

    fn rtl_mut(&mut self) -> Option<&mut maddpipe_core::macro_rtl::AcceleratorRtl> {
        self.inner.rtl_mut()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(lock_store(&self.store).stats())
    }
}

impl std::fmt::Debug for CachedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedBackend")
            .field("inner", &self.inner.name())
            .field(
                "fingerprint",
                &format_args!("{:016x}", self.fingerprint.hash),
            )
            .field("ns", &self.ns)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::functional::FunctionalBackend;
    use maddpipe_core::config::MacroConfig;
    use proptest::prelude::*;

    fn program(ns: usize) -> MacroProgram {
        MacroProgram::random(2, ns, 42)
    }

    fn key_for(program: &MacroProgram, token: &Token) -> CacheKey {
        CacheKey::new(ProgramFingerprint::of(program), token)
    }

    fn token(ns: usize, fill: i8) -> Token {
        vec![[fill; SUBVECTOR_LEN]; ns]
    }

    #[test]
    fn fingerprint_is_stable_and_content_equal() {
        let p = program(2);
        let a = ProgramFingerprint::of(&p);
        let b = ProgramFingerprint::of(&p.clone());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn fingerprint_differs_on_one_lut_word() {
        let p = program(2);
        let mut q = p.clone();
        q.luts[0][0][3] = q.luts[0][0][3].wrapping_add(1);
        assert_ne!(ProgramFingerprint::of(&p), ProgramFingerprint::of(&q));
    }

    #[test]
    fn different_programs_occupy_disjoint_key_spaces() {
        // Two programs differing in one LUT word: inserting under one
        // must not make the same token hit under the other.
        let p = program(2);
        let mut q = p.clone();
        q.luts[1][0][7] = q.luts[1][0][7].wrapping_add(1);
        let t = token(2, 5);
        let mut store = CacheStore::new(CacheConfig::default());
        store.insert(key_for(&p, &t), p.reference_output(&t));
        assert!(store.lookup(&key_for(&p, &t)).is_some());
        assert!(store.lookup(&key_for(&q, &t)).is_none());
    }

    #[test]
    fn hit_returns_exactly_inserted_bytes() {
        let p = program(2);
        let t = token(2, -3);
        let out = p.reference_output(&t);
        let mut store = CacheStore::new(CacheConfig::default());
        store.insert(key_for(&p, &t), out.clone());
        assert_eq!(store.lookup(&key_for(&p, &t)), Some(out));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 0, 1));
    }

    #[test]
    fn zero_entry_bound_disables_caching() {
        let p = program(1);
        let t = token(1, 1);
        let mut store = CacheStore::new(CacheConfig::default().with_max_entries(0));
        store.insert(key_for(&p, &t), vec![1, 2]);
        assert_eq!(store.resident_entries(), 0);
        assert!(store.lookup(&key_for(&p, &t)).is_none());
    }

    #[test]
    fn oversized_entry_is_skipped_not_thrashed() {
        let p = program(1);
        let small = token(1, 1);
        let mut store = CacheStore::new(CacheConfig::default().with_max_bytes(256));
        store.insert(key_for(&p, &small), vec![0; 4]);
        assert_eq!(store.resident_entries(), 1);
        // An entry that can never fit must not evict what is resident.
        store.insert(key_for(&p, &token(1, 2)), vec![0; 4096]);
        assert_eq!(store.resident_entries(), 1);
        assert!(store.lookup(&key_for(&p, &small)).is_some());
    }

    #[test]
    fn capacity_one_store_keeps_exactly_the_last_entry() {
        let p = program(1);
        let cfg = CacheConfig::default().with_max_entries(1);
        let mut store = CacheStore::new(cfg);
        for fill in 0..8i8 {
            let t = token(1, fill);
            store.insert(key_for(&p, &t), p.reference_output(&t));
            assert_eq!(store.resident_entries(), 1);
        }
        assert_eq!(store.stats().evictions, 7);
        assert!(store.lookup(&key_for(&p, &token(1, 7))).is_some());
        assert!(store.lookup(&key_for(&p, &token(1, 0))).is_none());
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let p = program(1);
        let mut store = CacheStore::new(CacheConfig::default().with_max_entries(2));
        let hot = token(1, 1);
        store.insert(key_for(&p, &hot), vec![1]);
        store.insert(key_for(&p, &token(1, 2)), vec![2]);
        // Touch the hot entry so its reference bit is set; the next
        // insert must evict the cold one.
        assert!(store.lookup(&key_for(&p, &hot)).is_some());
        store.insert(key_for(&p, &token(1, 3)), vec![3]);
        assert!(store.lookup(&key_for(&p, &hot)).is_some());
        assert!(store.lookup(&key_for(&p, &token(1, 2))).is_none());
    }

    #[test]
    fn cached_backend_dedups_within_one_batch() {
        let cfg = MacroConfig::new(2, 2);
        let p = MacroProgram::random(cfg.ndec, cfg.ns, 7);
        let mut backend = CachedBackend::new(
            Box::new(FunctionalBackend::new(p.clone())),
            &p,
            CacheConfig::default(),
        );
        let a = token(2, 1);
        let b = token(2, 2);
        let batch = TokenBatch::new(vec![a.clone(), b.clone(), a.clone(), a.clone()]).unwrap();
        let result = backend.run_batch(&batch).unwrap();
        assert_eq!(result.tokens.len(), 4);
        for (obs, tok) in result.tokens.iter().zip([&a, &b, &a, &a]) {
            assert_eq!(obs.outputs, p.reference_output(tok));
        }
        let stats = backend.cache_stats().unwrap();
        // Two unique tokens computed, two duplicate positions elided.
        assert_eq!((stats.misses, stats.dedup, stats.hits), (2, 2, 0));

        // Second submission: everything hits, inner sees nothing.
        let result = backend.run_batch(&batch).unwrap();
        for (obs, tok) in result.tokens.iter().zip([&a, &b, &a, &a]) {
            assert_eq!(obs.outputs, p.reference_output(tok));
            assert!(obs.latency.is_none() && obs.energy.is_none());
        }
        let stats = backend.cache_stats().unwrap();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn transient_inner_failure_is_not_cached() {
        // An inner backend that fails its first call transiently: the
        // failed attempt must leave the store untouched, and the retry
        // must recompute and then succeed with correct outputs.
        struct FlakyOnce {
            inner: FunctionalBackend,
            failed: bool,
        }
        impl MacroBackend for FlakyOnce {
            fn name(&self) -> &'static str {
                "flaky-once"
            }
            fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
                if !self.failed {
                    self.failed = true;
                    return Err(BackendError::Transient {
                        reason: "injected".into(),
                    });
                }
                self.inner.run_batch(batch)
            }
        }
        let cfg = MacroConfig::new(2, 2);
        let p = MacroProgram::random(cfg.ndec, cfg.ns, 11);
        let mut backend = CachedBackend::new(
            Box::new(FlakyOnce {
                inner: FunctionalBackend::new(p.clone()),
                failed: false,
            }),
            &p,
            CacheConfig::default(),
        );
        let t = token(2, 9);
        let batch = TokenBatch::new(vec![t.clone()]).unwrap();
        let err = backend.run_batch(&batch).unwrap_err();
        assert!(err.is_transient());
        let stats = backend.cache_stats().unwrap();
        assert_eq!(
            stats.insertions, 0,
            "failed attempt must not populate the store"
        );
        // Retry recomputes and caches the real result.
        let result = backend.run_batch(&batch).unwrap();
        assert_eq!(result.tokens[0].outputs, p.reference_output(&t));
        assert_eq!(backend.cache_stats().unwrap().insertions, 1);
    }

    #[test]
    fn wrong_width_inner_result_is_rejected_uncached() {
        struct HalfWidth {
            inner: FunctionalBackend,
        }
        impl MacroBackend for HalfWidth {
            fn name(&self) -> &'static str {
                "half-width"
            }
            fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
                let mut result = self.inner.run_batch(batch)?;
                result.tokens.pop();
                Ok(result)
            }
        }
        let cfg = MacroConfig::new(2, 2);
        let p = MacroProgram::random(cfg.ndec, cfg.ns, 13);
        let mut backend = CachedBackend::new(
            Box::new(HalfWidth {
                inner: FunctionalBackend::new(p.clone()),
            }),
            &p,
            CacheConfig::default(),
        );
        let batch = TokenBatch::new(vec![token(2, 1), token(2, 2)]).unwrap();
        let err = backend.run_batch(&batch).unwrap_err();
        assert!(matches!(err, BackendError::MalformedProgram { .. }));
        assert_eq!(backend.cache_stats().unwrap().insertions, 0);
    }

    #[test]
    fn hit_reports_unmeasured_latency_even_when_miss_measured() {
        // An RTL tier measures on the miss; the hit must answer None,
        // never replay the stale measurement.
        let cfg = MacroConfig::new(2, 2);
        let p = MacroProgram::random(cfg.ndec, cfg.ns, 5);
        let inner = BackendKind::Rtl {
            fidelity: crate::backend::Fidelity::Sequential,
        }
        .build(&cfg, p.clone())
        .unwrap();
        let mut backend = CachedBackend::new(inner, &p, CacheConfig::default());
        let batch = TokenBatch::new(vec![token(2, 3)]).unwrap();
        let cold = backend.run_batch(&batch).unwrap();
        assert!(
            cold.tokens[0].latency.is_some(),
            "miss keeps the measurement"
        );
        let warm = backend.run_batch(&batch).unwrap();
        assert_eq!(warm.tokens[0].outputs, cold.tokens[0].outputs);
        assert!(warm.tokens[0].latency.is_none() && warm.tokens[0].energy.is_none());
        assert!(warm.makespan.is_none() && warm.energy.is_none());
    }

    proptest! {
        /// Both capacity bounds hold after every single operation of an
        /// arbitrary insert/lookup interleaving, and every hit returns
        /// exactly what was inserted for that key.
        #[test]
        fn store_bounds_hold_after_every_operation(
            max_entries in 1usize..6,
            extra_bytes in 0usize..512,
            ops in proptest::collection::vec((0i8..12, any::<bool>()), 1..64),
        ) {
            let p = program(1);
            let fp = ProgramFingerprint::of(&p);
            let config = CacheConfig {
                max_entries,
                // Floor high enough that at least one entry fits.
                max_bytes: ENTRY_OVERHEAD_BYTES + SUBVECTOR_LEN + 16 + extra_bytes,
            };
            let mut store = CacheStore::new(config);
            for (fill, do_insert) in ops {
                let t = token(1, fill);
                let key = CacheKey::new(fp.clone(), &t);
                let expect = p.reference_output(&t);
                if do_insert {
                    store.insert(key, expect);
                } else if let Some(got) = store.lookup(&key) {
                    prop_assert_eq!(got, expect);
                }
                prop_assert!(store.resident_entries() <= config.max_entries);
                prop_assert!(store.resident_bytes() <= config.max_bytes);
                let s = store.stats();
                prop_assert_eq!(s.insertions, s.evictions + s.resident_entries as u64);
            }
        }

        /// Cached ≡ uncached on the functional backend for arbitrary
        /// token streams with duplication, under a tiny store.
        #[test]
        fn cached_matches_uncached_under_tiny_store(
            seed in 0u64..1024,
            fills in proptest::collection::vec(-4i8..4, 1..24),
            max_entries in 1usize..4,
        ) {
            let cfg = MacroConfig::new(2, 2);
            let p = MacroProgram::random(cfg.ndec, cfg.ns, seed);
            let mut backend = CachedBackend::new(
                Box::new(FunctionalBackend::new(p.clone())),
                &p,
                CacheConfig::default().with_max_entries(max_entries),
            );
            let tokens: Vec<Token> = fills.iter().map(|&f| token(2, f)).collect();
            let batch = TokenBatch::new(tokens.clone()).unwrap();
            for _ in 0..3 {
                let result = backend.run_batch(&batch).unwrap();
                prop_assert_eq!(result.tokens.len(), tokens.len());
                for (obs, tok) in result.tokens.iter().zip(&tokens) {
                    prop_assert_eq!(&obs.outputs, &p.reference_output(tok));
                }
            }
        }
    }
}
