//! Async serving: a submission queue in front of any [`MacroBackend`].
//!
//! The paper's macro is self-synchronous and completion-driven — a token
//! is done when the DLC ripple settles, not when a clock says so — which
//! makes variable-latency, many-client serving the natural software
//! analogue. A [`ServeQueue`] is that serving front door: any number of
//! client threads call [`ServeQueue::submit`] and get back a
//! [`BatchTicket`] immediately; a single dispatcher thread coalesces
//! pending submissions into micro-batches under a [`QueuePolicy`], runs
//! them on the backend it owns, and resolves each ticket with that
//! request's own slice of the results plus its measured queue-wait and
//! service latency.
//!
//! Design points, in the order they matter:
//!
//! * **No executor.** Tickets are condvar-backed wait/poll handles on
//!   `std` threads — the workspace has no async runtime and the vendored
//!   dependency set stays closed.
//! * **FIFO fairness.** Submissions enter one queue in arrival order and
//!   are dispatched in that order; a micro-batch never reorders or splits
//!   a request, so every client's tokens stay contiguous and ordered.
//! * **Bounded depth.** The queue holds at most
//!   [`QueuePolicy::max_depth`] unresolved requests; beyond that,
//!   [`submit`](ServeQueue::submit) answers with typed
//!   [`BackendError::QueueFull`] backpressure instead of buffering
//!   without limit.
//! * **Coalescing.** The dispatcher packs whole requests, FIFO, into a
//!   micro-batch of up to [`QueuePolicy::max_batch`] tokens, lingering up
//!   to [`QueuePolicy::max_linger`] past the oldest submission to let a
//!   fuller batch form. A backend failure resolves *every* ticket that
//!   rode in the failed micro-batch with a clone of the typed error.
//! * **Clean shutdown.** [`close`](ServeQueue::close) stops intake while
//!   the dispatcher drains what was already accepted;
//!   [`shutdown`](ServeQueue::shutdown) (and `Drop`) additionally joins
//!   the dispatcher. Accepted tickets always resolve — with results when
//!   the backend serves them, with [`BackendError::QueueClosed`] if the
//!   dispatcher dies first. No ticket is ever leaked.
//!
//! Like the sharded backend's workers, the dispatcher *builds* its
//! backend on its own thread (via a [`BackendFactory`]), so non-`Send`
//! backends — the event-driven netlist — serve behind a queue exactly
//! like the pure-math ones.
//! [`Session::into_serving`](crate::session::Session::into_serving) is
//! the convenient path: it rebuilds the session's `BackendKind` recipe
//! on the dispatcher and carries the accumulated [`SessionStats`] over.
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
//! let queue = Session::builder(cfg)
//!     .program(program.clone())
//!     .build()
//!     .unwrap()
//!     .into_serving(QueuePolicy::default())
//!     .unwrap();
//! std::thread::scope(|s| {
//!     for client in 0..4u64 {
//!         let queue = &queue;
//!         let program = &program;
//!         s.spawn(move || {
//!             let batch = TokenBatch::random(2, 8, client);
//!             let ticket = queue.submit(batch.clone()).expect("accepted");
//!             let reply = ticket.wait().expect("served");
//!             assert_eq!(
//!                 reply.result.tokens[0].outputs,
//!                 program.reference_output(&batch.tokens()[0]),
//!             );
//!         });
//!     }
//! });
//! let stats = queue.shutdown();
//! assert_eq!(stats.tokens(), 32);
//! assert!(stats.p50_queue_wait().is_some());
//! ```

use crate::backend::{BackendFactory, MacroBackend};
use crate::batch::{BatchResult, Token, TokenBatch};
use crate::error::BackendError;
use crate::session::SessionStats;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`ServeQueue`]'s dispatcher coalesces submissions into
/// micro-batches and when it pushes back on clients.
///
/// ```
/// use maddpipe_runtime::queue::QueuePolicy;
/// use std::time::Duration;
///
/// let policy = QueuePolicy::default()
///     .with_max_batch(128)
///     .with_max_linger(Duration::from_micros(500))
///     .with_max_depth(256);
/// assert_eq!(policy.max_batch, 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuePolicy {
    /// Most tokens the dispatcher packs into one micro-batch. Whole
    /// requests are never split: a single request larger than this runs
    /// alone as an oversized micro-batch.
    pub max_batch: usize,
    /// How long past the *oldest* pending submission the dispatcher
    /// lingers for more requests before dispatching a partial
    /// micro-batch. `Duration::ZERO` dispatches immediately.
    pub max_linger: Duration,
    /// Most unresolved requests (queued or executing) the queue holds;
    /// submissions beyond it are rejected with
    /// [`BackendError::QueueFull`].
    pub max_depth: usize,
}

impl Default for QueuePolicy {
    /// 64-token micro-batches, a 200 µs linger, and room for 1024
    /// unresolved requests.
    fn default() -> QueuePolicy {
        QueuePolicy {
            max_batch: 64,
            max_linger: Duration::from_micros(200),
            max_depth: 1024,
        }
    }
}

impl QueuePolicy {
    /// Sets the micro-batch token bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> QueuePolicy {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the linger deadline for partial micro-batches.
    #[must_use]
    pub fn with_max_linger(mut self, max_linger: Duration) -> QueuePolicy {
        self.max_linger = max_linger;
        self
    }

    /// Sets the unresolved-request bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> QueuePolicy {
        self.max_depth = max_depth.max(1);
        self
    }
}

/// What a resolved [`BatchTicket`] carries back to its submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReply {
    /// This request's own results: one observation per submitted token,
    /// in submission order — sliced out of the micro-batch it rode in.
    /// `makespan` is the whole micro-batch's (the backend ran the tokens
    /// together); `energy` is the sum over this request's tokens when
    /// every one was measured.
    pub result: BatchResult,
    /// Host time from [`ServeQueue::submit`] to the dispatcher picking
    /// the request up — the queueing delay the client paid.
    pub queue_wait: Duration,
    /// Host time the backend spent serving the micro-batch this request
    /// rode in.
    pub service: Duration,
    /// Total tokens in that micro-batch (≥ this request's own count) —
    /// how much coalescing the policy achieved.
    pub coalesced_tokens: usize,
}

/// The state a ticket moves through: submitted → resolved → claimed.
enum TicketState {
    /// Still queued or executing.
    Pending,
    /// Resolved; the value waits to be claimed by `wait`/`poll`.
    Ready(Box<Result<QueueReply, BackendError>>),
    /// The value was handed to the submitter.
    Claimed,
}

/// The shared cell a ticket and the dispatcher communicate through.
struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    fn new() -> Arc<TicketCell> {
        Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        })
    }

    /// Resolves the ticket if it is still pending (never overwrites an
    /// earlier resolution). Robust against poisoning: a resolution must
    /// reach the submitter even while the dispatcher is unwinding.
    fn resolve(&self, value: Result<QueueReply, BackendError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Ready(Box::new(value));
            self.done.notify_all();
        }
    }

    /// Claims a ready resolution, moving the state to `Claimed`; `None`
    /// while the ticket is still pending. The single claim step shared
    /// by `poll`/`wait`/`wait_timeout`.
    fn try_claim(state: &mut TicketState) -> Option<Result<QueueReply, BackendError>> {
        if matches!(state, TicketState::Ready(_)) {
            if let TicketState::Ready(value) = std::mem::replace(state, TicketState::Claimed) {
                return Some(*value);
            }
        }
        None
    }
}

/// A future-like handle to one submitted request: poll it or block on it
/// from the submitting thread; the dispatcher resolves it exactly once.
#[must_use = "a submission resolves only through wait()/poll(); dropping the ticket discards the result"]
pub struct BatchTicket {
    cell: Arc<TicketCell>,
}

impl BatchTicket {
    /// Whether the request has been resolved (successfully or not) —
    /// `wait` will not block once this returns `true`.
    pub fn is_ready(&self) -> bool {
        !matches!(
            *self.cell.state.lock().expect("ticket lock"),
            TicketState::Pending
        )
    }

    /// Non-blocking claim: the resolution if the request is done, the
    /// ticket itself (to try again later) if it is still in flight.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while the request is unresolved.
    pub fn poll(self) -> Result<Result<QueueReply, BackendError>, BatchTicket> {
        {
            let mut state = self.cell.state.lock().expect("ticket lock");
            if let Some(value) = TicketCell::try_claim(&mut state) {
                return Ok(value);
            }
        }
        Err(self)
    }

    /// Blocks until the dispatcher resolves the request.
    ///
    /// # Errors
    ///
    /// Propagates the backend's typed error for the micro-batch this
    /// request rode in, or [`BackendError::QueueClosed`] when the queue
    /// shut down before the request could be served.
    pub fn wait(self) -> Result<QueueReply, BackendError> {
        let mut state = self.cell.state.lock().expect("ticket lock");
        loop {
            if let Some(value) = TicketCell::try_claim(&mut state) {
                return value;
            }
            state = self.cell.done.wait(state).expect("ticket lock");
        }
    }

    /// [`wait`](BatchTicket::wait) with a deadline: the resolution if it
    /// arrives within `timeout`, otherwise the ticket back. A `timeout`
    /// too large to represent as a deadline (e.g. [`Duration::MAX`])
    /// degrades to an unbounded [`wait`](BatchTicket::wait).
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the timeout elapses first.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<QueueReply, BackendError>, Self> {
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Ok(self.wait());
        };
        {
            let mut state = self.cell.state.lock().expect("ticket lock");
            loop {
                if let Some(value) = TicketCell::try_claim(&mut state) {
                    return Ok(value);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (s, _) = self
                    .cell
                    .done
                    .wait_timeout(state, left)
                    .expect("ticket lock");
                state = s;
            }
        }
        Err(self)
    }
}

impl core::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BatchTicket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// One accepted submission waiting for the dispatcher.
struct PendingRequest {
    batch: TokenBatch,
    ticket: Arc<TicketCell>,
    submitted: Instant,
}

/// The dispatcher/submitter shared state.
struct QueueState {
    pending: VecDeque<PendingRequest>,
    /// Tokens across `pending`, maintained on push/pop so the
    /// dispatcher's batch-full check is O(1) per wakeup instead of a
    /// re-sum of the whole backlog under the lock.
    pending_tokens: usize,
    /// Requests accepted but not yet resolved — queued *or* executing.
    /// This is what [`QueuePolicy::max_depth`] bounds, so backpressure
    /// covers the whole in-flight pipeline, not just the waiting room.
    outstanding: usize,
    /// Deepest `outstanding` seen at submit time since the dispatcher
    /// last folded it into the stats — tracked here so `submit` touches
    /// only the state lock it already holds, never the stats lock.
    max_depth_seen: u64,
    /// `false` once the queue stops accepting submissions.
    open: bool,
}

struct QueueShared {
    state: Mutex<QueueState>,
    /// Signalled on every submission and on close.
    work: Condvar,
    stats: Mutex<SessionStats>,
}

impl QueueShared {
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        // A poisoned lock means the dispatcher panicked mid-update; the
        // state is still structurally sound (tickets resolve idempotently)
        // and refusing to look at it would leak every outstanding ticket.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// An async submission queue serving one backend to many client threads.
///
/// Submissions are accepted from any thread through `&self`; one
/// dispatcher thread owns the backend and works through the queue in
/// FIFO order, coalescing requests into micro-batches per the
/// [`QueuePolicy`]. See the [module docs](crate::queue) for the full
/// contract and an end-to-end example.
pub struct ServeQueue {
    shared: Arc<QueueShared>,
    policy: QueuePolicy,
    ns: usize,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServeQueue {
    /// Spawns the dispatcher thread, builds the backend *on* it via
    /// `factory` (so non-`Send` backends serve like any other), and
    /// opens the queue. `ns` is the pipeline-stage count submissions are
    /// checked against at `submit` time, so one malformed request is
    /// rejected at its own call site instead of poisoning a coalesced
    /// micro-batch.
    ///
    /// # Errors
    ///
    /// Returns the factory's own [`BackendError`] when the backend fails
    /// to construct, and [`BackendError::QueueClosed`] when the
    /// dispatcher dies before reporting readiness.
    pub fn from_factory(
        policy: QueuePolicy,
        ns: usize,
        factory: BackendFactory,
    ) -> Result<ServeQueue, BackendError> {
        let policy = QueuePolicy {
            max_batch: policy.max_batch.max(1),
            max_linger: policy.max_linger,
            max_depth: policy.max_depth.max(1),
        };
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                pending_tokens: 0,
                outstanding: 0,
                max_depth_seen: 0,
                open: true,
            }),
            work: Condvar::new(),
            stats: Mutex::new(SessionStats::default()),
        });
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BackendError>>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            std::thread::Builder::new()
                .name("maddpipe-serve".into())
                .spawn(move || {
                    let backend = match factory() {
                        Ok(backend) => {
                            let _ = ready_tx.send(Ok(()));
                            backend
                        }
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    dispatch_loop(&shared, &policy, backend);
                })
                .expect("the host can spawn the queue dispatcher thread")
        };
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(ServeQueue {
                shared,
                policy,
                ns,
                dispatcher: Some(dispatcher),
            }),
            Ok(Err(e)) => {
                let _ = dispatcher.join();
                Err(e)
            }
            Err(_) => {
                let _ = dispatcher.join();
                Err(BackendError::QueueClosed)
            }
        }
    }

    /// Submits one request; returns immediately with a ticket the caller
    /// can poll or block on. Requests are served in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for tokens that do not
    /// match the backend's stage count (checked here, so a bad request
    /// cannot fail a coalesced micro-batch for everyone else),
    /// [`BackendError::QueueFull`] when [`QueuePolicy::max_depth`]
    /// requests are already unresolved, and [`BackendError::QueueClosed`]
    /// after [`close`](ServeQueue::close)/[`shutdown`](ServeQueue::shutdown).
    pub fn submit(&self, batch: TokenBatch) -> Result<BatchTicket, BackendError> {
        batch.check_shape(self.ns)?;
        let ticket = TicketCell::new();
        {
            let mut state = self.shared.lock_state();
            if !state.open {
                return Err(BackendError::QueueClosed);
            }
            if state.outstanding >= self.policy.max_depth {
                return Err(BackendError::QueueFull {
                    depth: self.policy.max_depth,
                });
            }
            state.outstanding += 1;
            state.max_depth_seen = state.max_depth_seen.max(state.outstanding as u64);
            state.pending_tokens += batch.len();
            state.pending.push_back(PendingRequest {
                batch,
                ticket: Arc::clone(&ticket),
                submitted: Instant::now(),
            });
        }
        self.shared.work.notify_all();
        Ok(BatchTicket { cell: ticket })
    }

    /// Requests accepted but not yet resolved, right now.
    pub fn depth(&self) -> usize {
        self.shared.lock_state().outstanding
    }

    /// The coalescing/backpressure policy this queue runs.
    pub fn policy(&self) -> &QueuePolicy {
        &self.policy
    }

    /// Pipeline stages every submission must provide per token.
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// A snapshot of the aggregate statistics so far: everything a
    /// direct [`Session`](crate::session::Session) measures, plus
    /// queue-wait percentiles, coalesced micro-batch sizes and the
    /// deepest backlog observed.
    pub fn stats(&self) -> SessionStats {
        // Fold in any backlog high-water mark the dispatcher has not
        // absorbed yet (state lock strictly before stats lock, the
        // crate-wide order).
        let depth_seen = self.shared.lock_state().max_depth_seen;
        let mut stats = self.shared.stats.lock().expect("stats lock").clone();
        stats.record_queue_depth(depth_seen);
        stats
    }

    /// Stops accepting submissions (they answer
    /// [`BackendError::QueueClosed`]) while the dispatcher drains every
    /// request already accepted. Does not block; pair with
    /// [`shutdown`](ServeQueue::shutdown) or ticket waits to observe the
    /// drain finishing.
    pub fn close(&self) {
        self.shared.lock_state().open = false;
        self.shared.work.notify_all();
    }

    /// Closes the queue, waits for the dispatcher to drain and resolve
    /// every accepted ticket, and returns the final statistics.
    pub fn shutdown(mut self) -> SessionStats {
        self.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Seeds the statistics (used by [`Session::into_serving`] to carry
    /// a session's already-accumulated measurements into the queue).
    pub(crate) fn seed_stats(&self, stats: SessionStats) {
        *self.shared.stats.lock().expect("stats lock") = stats;
    }
}

impl Drop for ServeQueue {
    /// Same contract as [`shutdown`](ServeQueue::shutdown): close, drain,
    /// join — accepted tickets resolve before the queue disappears.
    fn drop(&mut self) {
        self.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl core::fmt::Debug for ServeQueue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServeQueue")
            .field("policy", &self.policy)
            .field("ns", &self.ns)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

/// The dispatcher's per-micro-batch guard: settles the backpressure
/// accounting exactly once and, if dropped with tickets still armed (a
/// backend that panicked mid-run), fails them with
/// [`BackendError::QueueClosed`] — so neither `outstanding` nor any
/// accepted ticket can leak, whichever way the micro-batch ends.
struct BatchInFlight<'a> {
    shared: &'a QueueShared,
    unsettled: usize,
    tickets: Vec<Arc<TicketCell>>,
}

impl BatchInFlight<'_> {
    /// Frees the micro-batch's backpressure capacity (idempotent).
    fn settle(&mut self) {
        if self.unsettled > 0 {
            self.shared.lock_state().outstanding -= self.unsettled;
            self.unsettled = 0;
        }
    }
}

impl Drop for BatchInFlight<'_> {
    fn drop(&mut self) {
        self.settle();
        for ticket in self.tickets.drain(..) {
            ticket.resolve(Err(BackendError::QueueClosed));
        }
    }
}

/// Closes the queue and fails whatever is still pending with
/// [`BackendError::QueueClosed`] when the dispatcher exits — the safety
/// net for a dispatcher that unwinds out of the loop (a panicking custom
/// backend). On a normal drain the pending queue is already empty.
struct CloseOnDrop<'a> {
    shared: &'a QueueShared,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.lock_state();
        state.open = false;
        let abandoned: Vec<PendingRequest> = state.pending.drain(..).collect();
        state.pending_tokens = 0;
        state.outstanding = state.outstanding.saturating_sub(abandoned.len());
        drop(state);
        for request in abandoned {
            request.ticket.resolve(Err(BackendError::QueueClosed));
        }
    }
}

/// The dispatcher: collect → coalesce → run → split → resolve, until the
/// queue is closed *and* drained.
fn dispatch_loop(shared: &QueueShared, policy: &QueuePolicy, mut backend: Box<dyn MacroBackend>) {
    let _drain_guard = CloseOnDrop { shared };
    loop {
        // ── Collect: wait for work, linger for a fuller micro-batch ──
        let mut state = shared.lock_state();
        loop {
            if let Some(first) = state.pending.front() {
                if state.pending_tokens >= policy.max_batch || !state.open {
                    break;
                }
                // A linger too large to represent as a deadline (e.g.
                // Duration::MAX = "wait until the batch fills") degrades
                // to an untimed wait — more work or close() wakes us.
                let Some(deadline) = first.submitted.checked_add(policy.max_linger) else {
                    state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
                    continue;
                };
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (s, _) = shared
                    .work
                    .wait_timeout(state, left)
                    .unwrap_or_else(|p| p.into_inner());
                state = s;
            } else if !state.open {
                // Closed and drained: every accepted ticket has resolved.
                return;
            } else {
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        }

        // ── Coalesce: whole requests, FIFO, up to max_batch tokens ──
        let mut picked = Vec::new();
        let mut total = 0usize;
        while let Some(next) = state.pending.front() {
            if !picked.is_empty() && total + next.batch.len() > policy.max_batch {
                break;
            }
            let request = state.pending.pop_front().expect("front exists");
            state.pending_tokens -= request.batch.len();
            total += request.batch.len();
            picked.push(request);
        }
        let depth_seen = state.max_depth_seen;
        drop(state);

        // ── Run: one backend call for the whole micro-batch ──
        let mut guard = BatchInFlight {
            shared,
            unsettled: picked.len(),
            tickets: picked.iter().map(|p| Arc::clone(&p.ticket)).collect(),
        };
        let dispatched = Instant::now();
        let mut tokens: Vec<Token> = Vec::with_capacity(total);
        let mut parts: Vec<(usize, Arc<TicketCell>, Duration)> = Vec::with_capacity(picked.len());
        for request in picked {
            parts.push((
                request.batch.len(),
                request.ticket,
                dispatched.saturating_duration_since(request.submitted),
            ));
            tokens.extend(request.batch.into_tokens());
        }
        let micro = TokenBatch::new(tokens).expect("picked requests are non-empty");
        let outcome = backend.run_batch(&micro);
        let service = dispatched.elapsed();

        // Free backpressure capacity before resolving, so a submitter
        // woken by its ticket deterministically finds the slot open.
        guard.settle();

        // ── Split and resolve: each ticket gets its own token slice ──
        let waits: Vec<Duration> = parts.iter().map(|(_, _, w)| *w).collect();
        match outcome {
            Ok(result) if result.tokens.len() == micro.len() => {
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queued(&result, service, &waits);
                    stats.record_queue_depth(depth_seen);
                }
                let mut offset = 0usize;
                for (len, ticket, queue_wait) in parts {
                    let observations = result.tokens[offset..offset + len].to_vec();
                    offset += len;
                    let energy = observations
                        .iter()
                        .map(|o| o.energy)
                        .collect::<Option<Vec<_>>>()
                        .and_then(|es| es.into_iter().reduce(|a, b| a + b));
                    ticket.resolve(Ok(QueueReply {
                        result: BatchResult {
                            backend: result.backend,
                            tokens: observations,
                            makespan: result.makespan,
                            energy,
                        },
                        queue_wait,
                        service,
                        coalesced_tokens: total,
                    }));
                }
            }
            Ok(result) => {
                // A custom backend broke the one-observation-per-token
                // contract; a typed rejection beats mis-sliced outputs.
                let error = BackendError::MalformedProgram {
                    reason: format!(
                        "backend returned {} observations for a {}-token micro-batch",
                        result.tokens.len(),
                        micro.len()
                    ),
                };
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                }
                for (_, ticket, _) in parts {
                    ticket.resolve(Err(error.clone()));
                }
            }
            Err(error) => {
                // Whole-batch rejection: every rider gets the typed
                // error. The queue-side stats still count the batch —
                // its requests waited and resolved like any other; only
                // the served-token measurements are success-only.
                {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.absorb_queue_side(micro.len(), &waits);
                    stats.record_queue_depth(depth_seen);
                }
                for (_, ticket, _) in parts {
                    ticket.resolve(Err(error.clone()));
                }
            }
        }
        guard.tickets.clear();
    }
}
