//! Async serving: a submission queue in front of any
//! [`MacroBackend`](crate::backend::MacroBackend).
//!
//! The paper's macro is self-synchronous and completion-driven — a token
//! is done when the DLC ripple settles, not when a clock says so — which
//! makes variable-latency, many-client serving the natural software
//! analogue. A [`ServeQueue`] is that serving front door: any number of
//! client threads call [`ServeQueue::submit`] and get back a
//! [`BatchTicket`] immediately; a dispatcher thread coalesces pending
//! submissions into micro-batches under a [`QueuePolicy`], runs them on
//! the backend it owns, and resolves each ticket with that request's own
//! slice of the results plus its measured queue-wait and service latency.
//!
//! Since the replica-pool generalisation, `ServeQueue` is the
//! one-replica, FIFO specialisation of
//! [`ReplicaPool`] — same waiting room, same
//! tickets, one backend. Reach for the pool when you want data-parallel
//! replicas, per-client fairness or deadline-aware batching.
//!
//! Design points, in the order they matter:
//!
//! * **No executor.** Tickets are condvar-backed wait/poll handles on
//!   `std` threads — the workspace has no async runtime and the vendored
//!   dependency set stays closed.
//! * **FIFO fairness.** Submissions enter one queue in arrival order and
//!   are dispatched in that order; a micro-batch never reorders or splits
//!   a request, so every client's tokens stay contiguous and ordered.
//! * **Bounded on two axes.** The queue holds at most
//!   [`QueuePolicy::max_depth`] unresolved requests and at most
//!   [`QueuePolicy::max_pending_tokens`] queued tokens; beyond either,
//!   [`submit`](ServeQueue::submit) answers with typed
//!   [`BackendError::QueueFull`] backpressure (naming the bound hit via
//!   [`QueueLimit`](crate::error::QueueLimit)) instead of buffering
//!   without limit.
//! * **Coalescing.** The dispatcher packs whole requests, FIFO, into a
//!   micro-batch of up to [`QueuePolicy::max_batch`] tokens, lingering up
//!   to [`QueuePolicy::max_linger`] past the oldest submission to let a
//!   fuller batch form. A *fatal* backend failure resolves every ticket
//!   that rode in the failed micro-batch with a clone of the typed
//!   error; a *transient* one (see [`BackendError::is_transient`]) is
//!   first retried with backoff under the underlying pool's default
//!   [`RecoveryPolicy`](crate::pool::RecoveryPolicy), riders intact.
//! * **Clean shutdown.** [`close`](ServeQueue::close) stops intake while
//!   the dispatcher drains what was already accepted;
//!   [`shutdown`](ServeQueue::shutdown) (and `Drop`) additionally joins
//!   the dispatcher. Accepted tickets always resolve — with results when
//!   the backend serves them, with [`BackendError::QueueClosed`] if the
//!   dispatcher dies first. No ticket is ever leaked.
//!
//! Like the sharded backend's workers, the dispatcher *builds* its
//! backend on its own thread (via a [`BackendFactory`]), so non-`Send`
//! backends — the event-driven netlist — serve behind a queue exactly
//! like the pure-math ones.
//! [`Session::into_serving`](crate::session::Session::into_serving) is
//! the convenient path: it rebuilds the session's `BackendKind` recipe
//! on the dispatcher and carries the accumulated [`SessionStats`] over.
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
//! let queue = Session::builder(cfg)
//!     .program(program.clone())
//!     .build()
//!     .unwrap()
//!     .into_serving(QueuePolicy::default())
//!     .unwrap();
//! std::thread::scope(|s| {
//!     for client in 0..4u64 {
//!         let queue = &queue;
//!         let program = &program;
//!         s.spawn(move || {
//!             let batch = TokenBatch::random(2, 8, client);
//!             let ticket = queue.submit(batch.clone()).expect("accepted");
//!             let reply = ticket.wait().expect("served");
//!             assert_eq!(
//!                 reply.result.tokens[0].outputs,
//!                 program.reference_output(&batch.tokens()[0]),
//!             );
//!         });
//!     }
//! });
//! let stats = queue.shutdown();
//! assert_eq!(stats.tokens(), 32);
//! assert!(stats.p50_queue_wait().is_some());
//! ```

use crate::backend::BackendFactory;
use crate::batch::{BatchResult, TokenBatch};
use crate::error::BackendError;
use crate::pool::{ReplicaPool, ServePolicy};
use crate::session::SessionStats;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a serving queue or [`ReplicaPool`]
/// coalesces submissions into micro-batches and when it pushes back on
/// clients.
///
/// ```
/// use maddpipe_runtime::queue::QueuePolicy;
/// use std::time::Duration;
///
/// let policy = QueuePolicy::default()
///     .with_max_batch(128)
///     .with_max_linger(Duration::from_micros(500))
///     .with_max_depth(256)
///     .with_max_pending_tokens(4096);
/// assert_eq!(policy.max_batch, 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuePolicy {
    /// Most tokens the dispatcher packs into one micro-batch. Whole
    /// requests are never split: a single request larger than this runs
    /// alone as an oversized micro-batch.
    pub max_batch: usize,
    /// How long past the *oldest* pending submission the dispatcher
    /// lingers for more requests before dispatching a partial
    /// micro-batch. `Duration::ZERO` dispatches immediately.
    pub max_linger: Duration,
    /// Most unresolved requests (queued or executing) the queue holds;
    /// submissions beyond it are rejected with
    /// [`BackendError::QueueFull`].
    pub max_depth: usize,
    /// Most *queued* tokens (batch payload awaiting dispatch) the queue
    /// holds — the memory bound `max_depth`'s request count cannot give
    /// when clients submit huge batches. Submissions that would exceed
    /// it are rejected with [`BackendError::QueueFull`], except into an
    /// empty waiting room (mirroring the oversized `max_batch` rule, so
    /// a large request can never be starved).
    pub max_pending_tokens: usize,
}

impl Default for QueuePolicy {
    /// 64-token micro-batches, a 200 µs linger, room for 1024
    /// unresolved requests and 1 Mi queued tokens.
    fn default() -> QueuePolicy {
        QueuePolicy {
            max_batch: 64,
            max_linger: Duration::from_micros(200),
            max_depth: 1024,
            max_pending_tokens: 1 << 20,
        }
    }
}

impl QueuePolicy {
    /// Sets the micro-batch token bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> QueuePolicy {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the linger deadline for partial micro-batches.
    #[must_use]
    pub fn with_max_linger(mut self, max_linger: Duration) -> QueuePolicy {
        self.max_linger = max_linger;
        self
    }

    /// Sets the unresolved-request bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> QueuePolicy {
        self.max_depth = max_depth.max(1);
        self
    }

    /// Sets the queued-token bound (clamped to at least 1).
    #[must_use]
    pub fn with_max_pending_tokens(mut self, max_pending_tokens: usize) -> QueuePolicy {
        self.max_pending_tokens = max_pending_tokens.max(1);
        self
    }
}

/// What a resolved [`BatchTicket`] carries back to its submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReply {
    /// This request's own results: one observation per submitted token,
    /// in submission order — sliced out of the micro-batch it rode in.
    /// `makespan` is the whole micro-batch's (the backend ran the tokens
    /// together); `energy` is the sum over this request's tokens when
    /// every one was measured.
    pub result: BatchResult,
    /// Host time from submit to a dispatcher picking the request up —
    /// the queueing delay the client paid.
    pub queue_wait: Duration,
    /// Host time the backend spent serving the micro-batch this request
    /// rode in.
    pub service: Duration,
    /// Total tokens in that micro-batch (≥ this request's own count) —
    /// how much coalescing the policy achieved.
    pub coalesced_tokens: usize,
    /// Which replica served the micro-batch — always 0 behind a plain
    /// [`ServeQueue`], the replica index behind a
    /// [`ReplicaPool`].
    pub replica: usize,
}

/// The state a ticket moves through: submitted → resolved → claimed.
pub(crate) enum TicketState {
    /// Still queued or executing.
    Pending,
    /// Resolved; the value waits to be claimed by `wait`/`poll`.
    Ready(Box<Result<QueueReply, BackendError>>),
    /// The value was handed to the submitter.
    Claimed,
}

/// The shared cell a ticket and the dispatcher communicate through.
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    done: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<TicketCell> {
        Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        })
    }

    /// Resolves the ticket if it is still pending (never overwrites an
    /// earlier resolution). Robust against poisoning: a resolution must
    /// reach the submitter even while the dispatcher is unwinding.
    pub(crate) fn resolve(&self, value: Result<QueueReply, BackendError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*state, TicketState::Pending) {
            *state = TicketState::Ready(Box::new(value));
            self.done.notify_all();
        }
    }

    /// Claims a ready resolution, moving the state to `Claimed`; `None`
    /// while the ticket is still pending. The single claim step shared
    /// by `poll`/`wait`/`wait_timeout`.
    fn try_claim(state: &mut TicketState) -> Option<Result<QueueReply, BackendError>> {
        if matches!(state, TicketState::Ready(_)) {
            if let TicketState::Ready(value) = std::mem::replace(state, TicketState::Claimed) {
                return Some(*value);
            }
        }
        None
    }
}

/// A future-like handle to one submitted request: poll it or block on it
/// from the submitting thread; the dispatcher resolves it exactly once.
#[must_use = "a submission resolves only through wait()/poll(); dropping the ticket discards the result"]
pub struct BatchTicket {
    cell: Arc<TicketCell>,
}

impl BatchTicket {
    /// Wraps a freshly armed cell (the pool's submit path).
    pub(crate) fn from_cell(cell: Arc<TicketCell>) -> BatchTicket {
        BatchTicket { cell }
    }

    /// Whether the request has been resolved (successfully or not) —
    /// `wait` will not block once this returns `true`.
    pub fn is_ready(&self) -> bool {
        !matches!(
            *self.cell.state.lock().expect("ticket lock"),
            TicketState::Pending
        )
    }

    /// Non-blocking claim: the resolution if the request is done, the
    /// ticket itself (to try again later) if it is still in flight.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while the request is unresolved.
    pub fn poll(self) -> Result<Result<QueueReply, BackendError>, BatchTicket> {
        {
            let mut state = self.cell.state.lock().expect("ticket lock");
            if let Some(value) = TicketCell::try_claim(&mut state) {
                return Ok(value);
            }
        }
        Err(self)
    }

    /// Blocks until the dispatcher resolves the request.
    ///
    /// # Errors
    ///
    /// Propagates the backend's typed error for the micro-batch this
    /// request rode in, or [`BackendError::QueueClosed`] when the queue
    /// shut down before the request could be served.
    pub fn wait(self) -> Result<QueueReply, BackendError> {
        let mut state = self.cell.state.lock().expect("ticket lock");
        loop {
            if let Some(value) = TicketCell::try_claim(&mut state) {
                return value;
            }
            state = self.cell.done.wait(state).expect("ticket lock");
        }
    }

    /// [`wait`](BatchTicket::wait) with a deadline: the resolution if it
    /// arrives within `timeout`, otherwise the ticket back. A `timeout`
    /// too large to represent as a deadline (e.g. [`Duration::MAX`])
    /// degrades to an unbounded [`wait`](BatchTicket::wait).
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the timeout elapses first.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<QueueReply, BackendError>, Self> {
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Ok(self.wait());
        };
        {
            let mut state = self.cell.state.lock().expect("ticket lock");
            loop {
                if let Some(value) = TicketCell::try_claim(&mut state) {
                    return Ok(value);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                let (s, _) = self
                    .cell
                    .done
                    .wait_timeout(state, left)
                    .expect("ticket lock");
                state = s;
            }
        }
        Err(self)
    }
}

impl core::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BatchTicket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// An async submission queue serving one backend to many client threads.
///
/// Submissions are accepted from any thread through `&self`; one
/// dispatcher thread owns the backend and works through the queue in
/// FIFO order, coalescing requests into micro-batches per the
/// [`QueuePolicy`]. Internally this is a one-replica FIFO
/// [`ReplicaPool`]; see the
/// [module docs](crate::queue) for the full contract and an end-to-end
/// example.
pub struct ServeQueue {
    pool: ReplicaPool,
}

impl ServeQueue {
    /// Spawns the dispatcher thread, builds the backend *on* it via
    /// `factory` (so non-`Send` backends serve like any other), and
    /// opens the queue. `ns` is the pipeline-stage count submissions are
    /// checked against at `submit` time, so one malformed request is
    /// rejected at its own call site instead of poisoning a coalesced
    /// micro-batch.
    ///
    /// The queue runs the default
    /// [`RecoveryPolicy`](crate::pool::RecoveryPolicy): transiently
    /// failed micro-batches are retried with backoff before any ticket
    /// sees the error. Being factory-built (one-shot, possibly
    /// non-`Send`), the single replica cannot be respawned — a panic
    /// retires it and closes the queue. Use
    /// [`ReplicaPool::from_recipes`](crate::pool::ReplicaPool::from_recipes)
    /// when crash-respawn matters.
    ///
    /// # Errors
    ///
    /// Returns the factory's own [`BackendError`] when the backend fails
    /// to construct, and [`BackendError::QueueClosed`] when the
    /// dispatcher dies before reporting readiness.
    pub fn from_factory(
        policy: QueuePolicy,
        ns: usize,
        factory: BackendFactory,
    ) -> Result<ServeQueue, BackendError> {
        let pool = ReplicaPool::from_factories(
            ServePolicy::default().with_queue(policy),
            ns,
            vec![factory],
        )?;
        Ok(ServeQueue { pool })
    }

    /// Submits one request; returns immediately with a ticket the caller
    /// can poll or block on. Requests are served in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for tokens that do not
    /// match the backend's stage count (checked here, so a bad request
    /// cannot fail a coalesced micro-batch for everyone else),
    /// [`BackendError::QueueFull`] when [`QueuePolicy::max_depth`]
    /// requests are already unresolved or accepting the batch would
    /// exceed [`QueuePolicy::max_pending_tokens`] queued tokens, and
    /// [`BackendError::QueueClosed`]
    /// after [`close`](ServeQueue::close)/[`shutdown`](ServeQueue::shutdown).
    pub fn submit(&self, batch: TokenBatch) -> Result<BatchTicket, BackendError> {
        self.pool.submit(batch)
    }

    /// Requests accepted but not yet resolved, right now.
    pub fn depth(&self) -> usize {
        self.pool.depth()
    }

    /// The coalescing/backpressure policy this queue runs.
    pub fn policy(&self) -> &QueuePolicy {
        &self.pool.policy().queue
    }

    /// Pipeline stages every submission must provide per token.
    pub fn ns(&self) -> usize {
        self.pool.ns()
    }

    /// A snapshot of the aggregate statistics so far: everything a
    /// direct [`Session`](crate::session::Session) measures, plus
    /// queue-wait percentiles, coalesced micro-batch sizes and the
    /// deepest backlog observed.
    pub fn stats(&self) -> SessionStats {
        self.pool.stats()
    }

    /// Stops accepting submissions (they answer
    /// [`BackendError::QueueClosed`]) while the dispatcher drains every
    /// request already accepted. Does not block; pair with
    /// [`shutdown`](ServeQueue::shutdown) or ticket waits to observe the
    /// drain finishing.
    pub fn close(&self) {
        self.pool.close();
    }

    /// Closes the queue, waits for the dispatcher to drain and resolve
    /// every accepted ticket, and returns the final statistics.
    pub fn shutdown(self) -> SessionStats {
        self.pool.shutdown()
    }

    /// Seeds the statistics (used by [`Session::into_serving`] to carry
    /// a session's already-accumulated measurements into the queue).
    pub(crate) fn seed_stats(&self, stats: SessionStats) {
        self.pool.seed_stats(stats);
    }
}

impl core::fmt::Debug for ServeQueue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServeQueue")
            .field("policy", self.policy())
            .field("ns", &self.ns())
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}
