//! # maddpipe-runtime
//!
//! The workspace's execution API: one way to run the paper's LUT macro,
//! whatever the level of modelling detail.
//!
//! Historically every test, example and bench hand-rolled its own glue
//! around three disjoint entry points — the event-driven netlist
//! ([`maddpipe_core::macro_rtl::AcceleratorRtl`]), the pure LUT math
//! ([`maddpipe_core::macro_rtl::MacroProgram::reference_output`]) and the
//! closed-form PPA model ([`maddpipe_core::model::MacroModel`]). This
//! crate unifies them behind one [`MacroBackend`] trait consuming
//! [`TokenBatch`]es and producing [`BatchResult`]s:
//!
//! | backend | outputs | latency | energy | use it for |
//! |---|---|---|---|---|
//! | [`FunctionalBackend`] | bit-exact | — | — | throughput, golden refs |
//! | [`RtlBackend`] | bit-exact | measured | measured | fidelity, timing |
//! | [`AnalyticBackend`] | bit-exact | modelled (data-dependent) | modelled | planning, sweeps |
//! | [`ShardedBackend`] | bit-exact | max over shards (all measuring, else `None`) | sum over shards (likewise) | serving wide layers on many macros |
//!
//! The first three run one macro; the [`ShardedBackend`] composes them: a
//! [`ShardPlan`] partitions a wide program's decoder chains into
//! contiguous slices, one worker thread per shard owns an inner backend
//! of any kind, and every batch is fanned out and reassembled in order.
//!
//! On top sits the [`Session`] builder, which owns batching and aggregate
//! [`SessionStats`] (tokens/s, total energy, p50/p99 token latency) —
//! and, for many-client serving, converts into an async [`ServeQueue`]
//! ([`Session::into_serving`]): submissions from any number of threads
//! are coalesced into micro-batches under a [`QueuePolicy`] and resolved
//! through [`BatchTicket`] handles, with typed
//! [`BackendError::QueueFull`] backpressure:
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//!
//! let cfg = MacroConfig::new(2, 2);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 42);
//! let mut session = Session::builder(cfg)
//!     .program(program)
//!     .backend(BackendKind::Rtl { fidelity: Fidelity::Pipelined })
//!     .build()
//!     .expect("program fits the configuration");
//! let result = session.run(&TokenBatch::random(2, 4, 7)).expect("runs");
//! assert_eq!(result.tokens.len(), 4); // per-token outputs, even pipelined
//! println!("{}", session.stats());
//! ```
//!
//! Every failure mode is a typed [`BackendError`] — malformed tokens and
//! empty batches included, where the low-level testbench used to panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod backend;
pub mod batch;
pub mod cache;
pub mod chaos;
pub mod error;
pub mod functional;
pub mod pipeline;
pub mod plan;
pub mod pool;
pub mod queue;
pub mod rtl;
pub mod session;
pub mod sharded;

pub use analytic::AnalyticBackend;
pub use backend::{
    validate_program, BackendFactory, BackendKind, CachedKind, Fidelity, LeafKind, MacroBackend,
    ShardKind,
};
pub use batch::{BatchResult, Token, TokenBatch, TokenObservation};
pub use cache::{
    CacheConfig, CacheKey, CacheStats, CacheStore, CachedBackend, ProgramFingerprint,
    SharedCacheStore,
};
pub use chaos::{wrap_factory, wrap_recipe, ChaosBackend, ChaosConfig, ChaosState};
pub use error::{BackendError, QueueLimit};
pub use functional::{FunctionalBackend, FunctionalKernel};
pub use pipeline::{
    HostStage, MacroStage, PipelineGraph, PipelinePolicy, PipelineReply, PipelineSpec,
    PipelineTicket, StagePolicy, StageSpec, TicketState,
};
pub use plan::ShardPlan;
pub use pool::{
    Fairness, PoolHealth, RecoveryPolicy, ReplicaFactory, ReplicaPool, ServePolicy, SubmitOptions,
};
pub use queue::{BatchTicket, QueuePolicy, QueueReply, ServeQueue};
pub use rtl::RtlBackend;
pub use session::{Session, SessionBuilder, SessionStats, StageProfile};
pub use sharded::{ShardFactory, ShardedBackend};

/// Common imports.
pub mod prelude {
    pub use crate::analytic::AnalyticBackend;
    pub use crate::backend::{
        BackendFactory, BackendKind, CachedKind, Fidelity, LeafKind, MacroBackend, ShardKind,
    };
    pub use crate::batch::{BatchResult, Token, TokenBatch, TokenObservation};
    pub use crate::cache::{
        CacheConfig, CacheKey, CacheStats, CacheStore, CachedBackend, ProgramFingerprint,
        SharedCacheStore,
    };
    pub use crate::chaos::{wrap_factory, wrap_recipe, ChaosBackend, ChaosConfig, ChaosState};
    pub use crate::error::{BackendError, QueueLimit};
    pub use crate::functional::{FunctionalBackend, FunctionalKernel};
    pub use crate::pipeline::{
        HostStage, MacroStage, PipelineGraph, PipelinePolicy, PipelineReply, PipelineSpec,
        PipelineTicket, StagePolicy, StageSpec, TicketState,
    };
    pub use crate::plan::ShardPlan;
    pub use crate::pool::{
        Fairness, PoolHealth, RecoveryPolicy, ReplicaFactory, ReplicaPool, ServePolicy,
        SubmitOptions,
    };
    pub use crate::queue::{BatchTicket, QueuePolicy, QueueReply, ServeQueue};
    pub use crate::rtl::RtlBackend;
    pub use crate::session::{Session, SessionBuilder, SessionStats, StageProfile};
    pub use crate::sharded::ShardedBackend;
}
