//! Shard plans: how a wide macro program is partitioned across macros.
//!
//! A [`ShardPlan`] assigns each of a program's decoder chains (output
//! channels / CNN kernels) to exactly one shard, as a list of contiguous
//! ranges. It is the serving-side counterpart of the output-channel
//! tiling computed by [`maddpipe_core::mapping::ConvMapping`]: where the
//! mapping serialises `tiles_out` passes through **one** macro, the plan
//! gives each tile its **own** macro and the
//! [`ShardedBackend`](crate::sharded::ShardedBackend) runs them in
//! parallel.
//!
//! Plans are pure data — building one never spawns threads or netlists —
//! so they can be inspected, displayed and unit-tested on their own.

use crate::error::BackendError;
use core::fmt;
use core::ops::Range;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_core::mapping::ConvShape;

/// A partition of `out_channels` decoder chains into contiguous,
/// non-empty, order-preserving shard ranges.
///
/// ```
/// use maddpipe_runtime::plan::ShardPlan;
///
/// let plan = ShardPlan::even(10, 4).unwrap();
/// assert_eq!(plan.shards(), 4);
/// assert_eq!(plan.widths(), &[3, 3, 2, 2]); // never more than 1 apart
/// assert_eq!(plan.range(0), 0..3);
/// assert_eq!(plan.out_channels(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    widths: Vec<usize>,
}

impl ShardPlan {
    /// Splits `out_channels` chains into `shards` near-equal contiguous
    /// ranges: the first `out_channels % shards` shards take one extra
    /// chain, so widths never differ by more than one.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidShardPlan`] when `shards` is zero or
    /// exceeds `out_channels` (a shard would own no decoder chain).
    pub fn even(out_channels: usize, shards: usize) -> Result<ShardPlan, BackendError> {
        if shards == 0 {
            return Err(BackendError::InvalidShardPlan {
                reason: "a plan needs at least one shard".into(),
            });
        }
        if shards > out_channels {
            return Err(BackendError::InvalidShardPlan {
                reason: format!(
                    "{shards} shards over {out_channels} output channels would leave a shard empty"
                ),
            });
        }
        let base = out_channels / shards;
        let extra = out_channels % shards;
        Ok(ShardPlan {
            widths: (0..shards).map(|s| base + usize::from(s < extra)).collect(),
        })
    }

    /// The plan induced by tiling `shape`'s output channels onto macros of
    /// `cfg.ndec` decoder chains — one shard per `tiles_out` tile of the
    /// layer's [`ConvMapping`](maddpipe_core::mapping::ConvMapping), the
    /// last one carrying the remainder.
    pub fn for_layer(shape: &ConvShape, cfg: &MacroConfig) -> ShardPlan {
        ShardPlan {
            widths: shape
                .split_out_channels(cfg.ndec)
                .iter()
                .map(|sub| sub.out_channels)
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.widths.len()
    }

    /// Decoder chains owned by each shard, in shard order.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Total decoder chains across all shards.
    pub fn out_channels(&self) -> usize {
        self.widths.iter().sum()
    }

    /// The contiguous output-channel range of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: usize) -> Range<usize> {
        let start: usize = self.widths[..shard].iter().sum();
        start..start + self.widths[shard]
    }

    /// Slices a wide program into one sub-program per shard: identical
    /// hash trees (every shard sees the same token), each stage's LUT row
    /// restricted to the shard's decoder range. Concatenating the shards'
    /// reference outputs in plan order reproduces the wide program's
    /// output bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidShardPlan`] when the program's
    /// decoder count differs from the plan's total.
    pub fn split(&self, program: &MacroProgram) -> Result<Vec<MacroProgram>, BackendError> {
        if program.ndec() != self.out_channels() {
            return Err(BackendError::InvalidShardPlan {
                reason: format!(
                    "plan covers {} output channels but the program has {} decoder chains",
                    self.out_channels(),
                    program.ndec()
                ),
            });
        }
        Ok((0..self.shards())
            .map(|s| {
                let range = self.range(s);
                MacroProgram {
                    trees: program.trees.clone(),
                    luts: program
                        .luts
                        .iter()
                        .map(|stage| stage[range.clone()].to_vec())
                        .collect(),
                }
            })
            .collect())
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards over {} channels {:?}",
            self.shards(),
            self.out_channels(),
            self.widths
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TokenBatch;

    #[test]
    fn even_plans_balance_the_remainder() {
        let plan = ShardPlan::even(7, 3).unwrap();
        assert_eq!(plan.widths(), &[3, 2, 2]);
        assert_eq!(plan.out_channels(), 7);
        assert_eq!(plan.range(0), 0..3);
        assert_eq!(plan.range(1), 3..5);
        assert_eq!(plan.range(2), 5..7);
        assert!(plan.to_string().contains("3 shards"), "{plan}");
    }

    #[test]
    fn degenerate_and_unit_plans() {
        // Single shard: the identity partition.
        let one = ShardPlan::even(5, 1).unwrap();
        assert_eq!(one.widths(), &[5]);
        assert_eq!(one.range(0), 0..5);
        // One chain per shard: the finest partition.
        let fine = ShardPlan::even(4, 4).unwrap();
        assert_eq!(fine.widths(), &[1, 1, 1, 1]);
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        assert!(matches!(
            ShardPlan::even(4, 0),
            Err(BackendError::InvalidShardPlan { .. })
        ));
        assert!(matches!(
            ShardPlan::even(2, 3),
            Err(BackendError::InvalidShardPlan { .. })
        ));
    }

    #[test]
    fn layer_plans_mirror_the_conv_tiling() {
        let cfg = MacroConfig::new(16, 32);
        let shape = ConvShape::new(32, 37, 8, 8);
        let plan = ShardPlan::for_layer(&shape, &cfg);
        assert_eq!(plan.widths(), &[16, 16, 5]);
        assert_eq!(plan.out_channels(), 37);
    }

    #[test]
    fn split_programs_reassemble_bit_for_bit() {
        let program = MacroProgram::random(10, 3, 5);
        let plan = ShardPlan::even(10, 4).unwrap();
        let subs = plan.split(&program).unwrap();
        assert_eq!(subs.len(), 4);
        for (s, sub) in subs.iter().enumerate() {
            assert_eq!(sub.ndec(), plan.widths()[s]);
            assert_eq!(sub.ns(), 3);
        }
        for token in TokenBatch::random(3, 6, 9).tokens() {
            let wide = program.reference_output(token);
            let stitched: Vec<i16> = subs
                .iter()
                .flat_map(|sub| sub.reference_output(token))
                .collect();
            assert_eq!(stitched, wide);
        }
    }

    #[test]
    fn mismatched_programs_are_rejected() {
        let plan = ShardPlan::even(4, 2).unwrap();
        let narrow = MacroProgram::random(3, 2, 1);
        assert!(matches!(
            plan.split(&narrow),
            Err(BackendError::InvalidShardPlan { .. })
        ));
    }
}
